//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build container cannot reach crates.io, so the real `criterion`
//! cannot be fetched; the workspace path dependency points here instead.
//! It is a genuine (if simple) wall-clock measurement harness, not a
//! no-op: each benchmark is calibrated to a batch size long enough to
//! time reliably, sampled `sample_size` times, and reported as
//! mean/min/max ns per iteration on stdout.
//!
//! Command-line behavior mirrors what `cargo bench` relies on:
//!
//! * `--test` runs every benchmark exactly once without sampling (the CI
//!   smoke mode, `cargo bench -- --test`);
//! * bare arguments are substring filters on benchmark ids;
//! * unknown `--flags` are ignored so harness-level options don't break.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` sizes its input batches. The stub times inputs one
/// at a time regardless, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark id, optionally parameterized (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The id text.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean/min/max ns per iteration of the last `iter`/`iter_batched`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    fn time_batch<O>(f: &mut impl FnMut() -> O, n: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        start.elapsed()
    }

    /// Times the closure, calibrating batch size then sampling.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            black_box(f());
            self.result = None;
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 1ms.
        let mut n = 1u64;
        loop {
            let t = Self::time_batch(&mut f, n);
            if t >= Duration::from_millis(1) || n >= 1 << 24 {
                break;
            }
            n *= 4;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let t = Self::time_batch(&mut f, n);
            samples.push(t.as_secs_f64() * 1e9 / n as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        self.result = Some((mean, min, max));
    }

    /// Times `routine` over inputs produced by `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            black_box(routine(setup()));
            self.result = None;
            return;
        }
        // Calibrate the per-sample input count.
        let mut n = 1usize;
        loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for i in inputs {
                black_box(routine(i));
            }
            if start.elapsed() >= Duration::from_millis(1) || n >= 1 << 20 {
                break;
            }
            n *= 4;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for i in inputs {
                black_box(routine(i));
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / n as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        self.result = Some((mean, min, max));
    }
}

/// The top-level benchmark harness (stub of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: false,
            filters: Vec::new(),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Applies `cargo bench` command-line arguments (`--test`, filters).
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                filter => self.filters.push(filter.to_string()),
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        if !self.matches(id) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((mean, min, max)) => {
                println!(
                    "{id:<55} time: [{} {} {}]",
                    fmt_ns(min),
                    fmt_ns(mean),
                    fmt_ns(max)
                );
            }
            None => println!("{id:<55} test: ok"),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let id = id.into_id();
        self.run_one(&id, f);
    }
}

/// A named group of benchmarks (stub of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into_id());
        self.c.run_one(&id, f);
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = format!("{}/{}", self.name, id.into_id());
        self.c.run_one(&id, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!` (both the plain and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0usize;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut group = c.benchmark_group("g");
        let mut batched = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 1usize, |x| batched += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(batched, 1);
    }

    #[test]
    fn filters_select_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["warm".into()],
            ..Criterion::default()
        };
        let mut ran = Vec::new();
        c.bench_function("dispatch/warm", |b| {
            b.iter(|| ran.push("warm"));
        });
        c.bench_function("dispatch/cold", |b| {
            b.iter(|| ran.push("cold"));
        });
        assert_eq!(ran, vec!["warm"]);
    }

    #[test]
    fn measurement_produces_sane_numbers() {
        let mut c = Criterion::default().sample_size(3);
        let mut b = Bencher {
            test_mode: false,
            sample_size: c.sample_size,
            result: None,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        let (mean, min, max) = b.result.expect("measured");
        assert!(min <= mean && mean <= max);
        assert!(min > 0.0);
        // Keep `c` exercised (benchmark_group borrows).
        let g = c.benchmark_group("noop");
        g.finish();
    }
}
