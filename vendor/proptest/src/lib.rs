//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so the real `proptest`
//! cannot be fetched; the workspace path dependency points here instead.
//! This is a self-contained miniature property-testing framework with the
//! same surface the repository's tests exercise:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) wrapping `#[test]` functions whose arguments are drawn from
//!   strategies;
//! * [`Strategy`] with `prop_map`, [`any`], integer/float range strategies
//!   and tuple strategies up to arity 12;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from the real crate: no shrinking (failures report the
//! exact drawn values instead of minimized ones) and no persistence file
//! replay (`.proptest-regressions` files are ignored). Case generation is
//! deterministic per test name, so failures reproduce across runs.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

// ---------------------------------------------------------------- errors

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — draw a fresh one.
    Reject(String),
    /// An assertion failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------- config

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config with the given number of cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

// ------------------------------------------------------------------- rng

/// The deterministic generator strategies draw from (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ------------------------------------------------------------ strategies

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// An arbitrary value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + ((rng.next_u64() as u128 * span) >> 64) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ------------------------------------------------------------ the runner

/// Drives a property: draws cases, skips rejections, reports failures.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs the property `f` against `config.cases` values drawn from
    /// `strategy`, panicking (like `#[test]` expects) on the first failing
    /// case with the drawn values in the message.
    pub fn run<S>(
        &mut self,
        name: &str,
        strategy: &S,
        mut f: impl FnMut(S::Value) -> TestCaseResult,
    ) where
        S: Strategy,
        S::Value: Debug,
    {
        // Deterministic per-test seed: failures reproduce run to run.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = TestRng::new(seed);

        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            if rejected > self.config.max_global_rejects {
                panic!(
                    "proptest `{name}`: too many rejected cases \
                     ({rejected} rejections for {passed} passes)"
                );
            }
            let value = strategy.new_value(&mut rng);
            let shown = format!("{value:?}");
            match f(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed after {passed} passing case(s): \
                         {msg}\n  input: {shown}"
                    );
                }
            }
        }
    }
}

// ------------------------------------------------------------ the macros

/// Mirrors `proptest::proptest!`: wraps `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner = $crate::TestRunner::new(config);
                let strategy = ($($strat,)+);
                runner.run(stringify!($name), &strategy, |($($pat,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}\n  left: {l:?}\n right: {r:?}", format!($($fmt)+));
    }};
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Mirrors `proptest::prop_assume!`: rejects the current case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in 0.25f64..0.75, s in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = s;
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn prop_map_composes() {
        let strat = (1usize..5, 1usize..5).prop_map(|(a, b)| a + b);
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
        runner.run("prop_map_composes", &(strat,), |(sum,)| {
            prop_assert!((2..=8).contains(&sum));
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run("failures_panic_with_input", &(0usize..4,), |(x,)| {
            prop_assert!(x < 2, "x too big: {x}");
            Ok(())
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut out = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
            runner.run("deterministic", &(any::<u64>(),), |(v,)| {
                out.push(v);
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
