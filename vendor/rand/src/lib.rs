//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The container this repository builds in has no access to crates.io, so
//! the real `rand` cannot be fetched; the workspace `[patch]`-free path
//! dependency points here instead. The implementation is a xoshiro256++
//! generator seeded through SplitMix64 — the same construction the real
//! `SmallRng` documents on 64-bit targets — so it is a high-quality,
//! deterministic PRNG, which is all the seeded workload generators and
//! property tests require. It makes no attempt to be bit-compatible with
//! upstream `rand` streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator trait (stub of `rand::RngCore`, folded into [`Rng`]).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from a `Range`/`RangeInclusive`.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(
        rng: &mut R,
        range: RangeInclusive<Self>,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` is irrelevant here, but widening keeps the
                // arithmetic overflow-free for every integer width we use.
                let r = rng.next_u64() as u128;
                range.start + ((r * span) >> 64) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                range: RangeInclusive<Self>,
            ) -> Self {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let r = rng.next_u64() as u128;
                lo + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(
        rng: &mut R,
        range: RangeInclusive<Self>,
    ) -> Self {
        let (lo, hi) = (*range.start(), *range.end());
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// A value producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing convenience methods (stub of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, A>(&mut self, range: A) -> T
    where
        T: SampleUniform,
        A: IntoSample<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Either range form accepted by [`Rng::gen_range`].
pub trait IntoSample<T: SampleUniform> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> IntoSample<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self)
    }
}

impl<T: SampleUniform> IntoSample<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, self)
    }
}

/// Named generators (stub of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real SmallRng documents.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        let seq_a: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let seq_c: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        // p=0.5 should produce both outcomes over a hundred draws.
        let draws: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
        assert!(draws.iter().any(|&b| b) && draws.iter().any(|&b| !b));
    }
}
