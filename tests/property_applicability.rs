//! Property: the paper's stack-based `IsApplicable` and the independent
//! greatest-fixpoint oracle agree on every randomly generated schema.
//!
//! This is the strongest automated check on the §4.1 cycle/dependency
//! bookkeeping: the two implementations share only the call-site
//! analysis, so any divergence in optimistic-assumption handling,
//! retraction or re-checking shows up as a counterexample.

use proptest::prelude::*;
use std::collections::BTreeSet;
use typederive::derive::{applicability_fixpoint, compute_applicability};
use typederive::model::MethodId;
use typederive::workload::{deepest_type, random_projection, random_schema, GenParams};

fn params_strategy() -> impl Strategy<Value = GenParams> {
    (
        2usize..28,   // n_types
        1usize..4,    // max_supers
        0.0f64..0.8,  // mi_fraction
        0usize..3,    // attrs_per_type
        0.3f64..1.0,  // reader_fraction
        1usize..10,   // n_gfs
        1usize..4,    // methods_per_gf
        1usize..3,    // max_arity
        0usize..5,    // calls_per_body
        0.0f64..0.6,  // assign_fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            )| GenParams {
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn stack_algorithm_agrees_with_fixpoint_oracle(
        params in params_strategy(),
        keep in 0.0f64..1.0,
        proj_seed in any::<u64>(),
    ) {
        let schema = random_schema(&params);
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, proj_seed);

        let stack = compute_applicability(&schema, source, &projection, false).unwrap();
        let oracle = applicability_fixpoint(&schema, source, &projection).unwrap();

        let stack_set: BTreeSet<MethodId> = stack.applicable.iter().copied().collect();
        prop_assert_eq!(&stack_set, &oracle,
            "stack={:?} oracle={:?} seed={}", stack_set, oracle, params.seed);

        // The two output lists partition the universe.
        let not_set: BTreeSet<MethodId> = stack.not_applicable.iter().copied().collect();
        prop_assert!(stack_set.is_disjoint(&not_set));
        let universe: BTreeSet<MethodId> = stack.universe.iter().copied().collect();
        let union: BTreeSet<MethodId> = stack_set.union(&not_set).copied().collect();
        prop_assert_eq!(union, universe);
    }

    #[test]
    fn applicability_is_monotone_in_the_projection(
        params in params_strategy(),
        proj_seed in any::<u64>(),
    ) {
        // Adding attributes to the projection list can only keep or grow
        // the applicable set (the constraint system only relaxes).
        let schema = random_schema(&params);
        let source = deepest_type(&schema);
        let small = random_projection(&schema, source, 0.3, proj_seed);
        let all: BTreeSet<_> = schema.cumulative_attrs(source);
        prop_assume!(small.len() < all.len());

        let r_small = compute_applicability(&schema, source, &small, false).unwrap();
        let r_all = compute_applicability(&schema, source, &all, false).unwrap();
        let small_set: BTreeSet<MethodId> = r_small.applicable.iter().copied().collect();
        let all_set: BTreeSet<MethodId> = r_all.applicable.iter().copied().collect();
        prop_assert!(small_set.is_subset(&all_set),
            "projecting more attributes lost methods: {:?} ⊄ {:?}", small_set, all_set);
    }

    #[test]
    fn full_projection_keeps_accessors_and_their_closures(
        params in params_strategy(),
    ) {
        // With every attribute projected, every accessor applicable to
        // the source stays applicable.
        let schema = random_schema(&params);
        let source = deepest_type(&schema);
        let all = schema.cumulative_attrs(source);
        let r = compute_applicability(&schema, source, &all, false).unwrap();
        for &m in &r.universe {
            if schema.method(m).is_accessor() {
                prop_assert!(r.applicable.contains(&m),
                    "accessor {} lost under full projection", schema.method(m).label);
            }
        }
    }
}
