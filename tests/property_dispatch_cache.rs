//! Property: the dispatch acceleration layer is invisible.
//!
//! Every cached entry point of `td_model` (`cpl`, `applicable_methods`,
//! `rank_applicable`, `most_specific`) must agree with its `_uncached`
//! ground-truth twin on randomized schemas — when the cache is cold, when
//! it is warm, and after mutations (a full projection derivation) that
//! invalidate it via the generation counter.

use proptest::prelude::*;
use typederive::derive::{project, ProjectionOptions};
use typederive::driver::{BatchDeriver, BatchRequest};
use typederive::model::{CallArg, Schema, TypeId};
use typederive::workload::{
    batch_requests, deepest_type, random_projection, random_schema, GenParams,
};

fn params_strategy() -> impl Strategy<Value = GenParams> {
    (
        2usize..16,
        1usize..4,
        0.0f64..0.7,
        1usize..3,
        0.4f64..1.0,
        1usize..6,
        1usize..3,
        1usize..3,
        0usize..4,
        0.0f64..0.6,
        any::<u64>(),
    )
        .prop_map(
            |(
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            )| GenParams {
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            },
        )
}

/// Sweeps every live type's CPL and a deterministic sample of call tuples
/// for every generic function, asserting the cached and uncached answers
/// coincide. Each sweep also warms the cache for the next one.
fn assert_cache_transparent(schema: &Schema) -> Result<(), TestCaseError> {
    let types: Vec<TypeId> = schema.live_type_ids().collect();
    for &t in &types {
        prop_assert_eq!(schema.cpl(t).ok(), schema.cpl_uncached(t).ok());
    }
    for gf in schema.gf_ids() {
        let arity = schema.gf(gf).arity;
        if arity == 0 || types.is_empty() {
            continue;
        }
        let total = types.len().checked_pow(arity as u32).unwrap_or(usize::MAX);
        let stride = total.div_ceil(64).max(1);
        let mut idx = 0usize;
        while idx < total {
            let mut rem = idx;
            let mut args = Vec::with_capacity(arity);
            for _ in 0..arity {
                args.push(CallArg::Object(types[rem % types.len()]));
                rem /= types.len();
            }
            prop_assert_eq!(
                schema.applicable_methods(gf, &args),
                schema.applicable_methods_uncached(gf, &args),
                "applicable diverged for {} {:?}",
                schema.gf(gf).name,
                args
            );
            prop_assert_eq!(
                schema.rank_applicable(gf, &args).ok(),
                schema.rank_applicable_uncached(gf, &args).ok(),
                "ranking diverged for {} {:?}",
                schema.gf(gf).name,
                args
            );
            prop_assert_eq!(
                schema.most_specific(gf, &args).ok(),
                schema.most_specific_uncached(gf, &args).ok(),
                "winner diverged for {} {:?}",
                schema.gf(gf).name,
                args
            );
            idx += stride;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cached_dispatch_equals_uncached_cold_and_warm(params in params_strategy()) {
        let schema = random_schema(&params);
        // First sweep runs cold and populates the cache; the second is
        // served warm and must still match the ground truth.
        assert_cache_transparent(&schema)?;
        let after_first = schema.dispatch_cache_stats();
        prop_assert!(after_first.dispatch_entries > 0);
        assert_cache_transparent(&schema)?;
        let after_second = schema.dispatch_cache_stats();
        prop_assert!(after_second.dispatch_hits > after_first.dispatch_hits,
            "second sweep should hit the warm cache: {} vs {}",
            after_second.dispatch_hits, after_first.dispatch_hits);
    }

    #[test]
    fn mutation_keeps_cache_transparent(
        params in params_strategy(),
        keep in 0.1f64..1.0,
        proj_seed in any::<u64>(),
    ) {
        let mut schema = random_schema(&params);
        // Warm the cache on the pre-derivation schema.
        assert_cache_transparent(&schema)?;
        let warm_gen = schema.generation();

        // A projection derivation is the heaviest mutation we have: it adds
        // surrogates, rewires supertype edges and rewrites methods.
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, proj_seed);
        prop_assume!(!projection.is_empty());
        project(&mut schema, source, &projection, &ProjectionOptions::fast()).unwrap();

        prop_assert!(schema.generation() > warm_gen,
            "derivation must bump the cache generation");
        // Stale entries must not leak into post-mutation answers.
        assert_cache_transparent(&schema)?;
    }

    #[test]
    fn shared_snapshot_never_serves_stale_entries_across_a_batch(
        params in params_strategy(),
        keep in 0.1f64..1.0,
        batch_seed in any::<u64>(),
    ) {
        // The batch engine's sharing model concentrates the staleness
        // hazard: N workers read one Mutex-backed cache through a shared
        // snapshot, every fork inherits those warm entries, and every
        // derivation then mutates its fork. Neither direction may leak —
        // forks must not serve pre-mutation answers, and the snapshot must
        // not absorb any fork's post-mutation state.
        let schema = random_schema(&params);
        let requests: Vec<BatchRequest> = batch_requests(&schema, 8, keep, batch_seed)
            .into_iter()
            .map(BatchRequest::from)
            .collect();
        prop_assume!(!requests.is_empty());

        let deriver = BatchDeriver::new(&schema)
            .options(ProjectionOptions::fast())
            .threads(4);
        deriver.warm();
        let warm_stats = deriver.snapshot().dispatch_cache_stats();
        prop_assert!(warm_stats.cpl_entries > 0, "warm() must populate the snapshot");
        let outcome = deriver.run(&requests);

        // Every successful fork mutated its own copy; its cached answers
        // must match ground truth despite the inherited warm entries.
        for r in &outcome.results {
            if let Some(fork) = &r.schema {
                prop_assert!(fork.generation() > deriver.snapshot().generation(),
                    "request #{} derived without bumping its fork's generation", r.index);
                assert_cache_transparent(fork)?;
            }
        }
        // The shared snapshot saw only reads: same generation, still
        // transparent, and a rerun reproduces the outcome exactly.
        prop_assert_eq!(deriver.snapshot().generation(),
            BatchDeriver::new(&schema).snapshot().generation());
        assert_cache_transparent(deriver.snapshot())?;
        prop_assert_eq!(outcome.render(&schema),
            deriver.run(&requests).render(&schema));
    }
}
