//! End-to-end integration: schema → objects → derivation → dispatch,
//! exercising every crate together.

use std::collections::BTreeSet;
use typederive::algebra::{select, CmpOp, Pipeline, Predicate};
use typederive::baselines::{
    audit_all, DerivationStrategy, LocalEdgeStrategy, PaperStrategy, RootPlacementStrategy,
    StandaloneStrategy,
};
use typederive::derive::{minimize_surrogates, project_named, ProjectionOptions};
use typederive::model::TypeId;
use typederive::store::{Database, MaterializedView, StoreError, Value, VirtualView};
use typederive::workload::{deepest_type, figures, random_projection, random_schema, GenParams};

/// The full §3.1 story, observed through the interpreter: behavior before
/// and after the derivation is byte-identical for source objects, and the
/// view exposes exactly the surviving behavior.
#[test]
fn behavior_preservation_is_observable() {
    let mut db = Database::new(figures::fig1());
    let mut employees = Vec::new();
    for i in 0..5i64 {
        let o = db
            .create_named(
                "Employee",
                &[
                    ("SSN", Value::Int(1000 + i)),
                    ("name", Value::Str(format!("emp{i}"))),
                    ("date_of_birth", Value::Int(1960 + 10 * i)),
                    ("pay_rate", Value::Float(20.0 + i as f64)),
                    ("hrs_worked", Value::Float(35.0)),
                ],
            )
            .unwrap();
        employees.push(o);
    }

    // Record behavior before the derivation.
    let mut before = Vec::new();
    for &o in &employees {
        before.push((
            db.call_named("age", &[Value::Ref(o)]).unwrap(),
            db.call_named("income", &[Value::Ref(o)]).unwrap(),
            db.call_named("promote", &[Value::Ref(o)]).unwrap(),
        ));
    }

    let d = project_named(
        db.schema_mut(),
        "Employee",
        &["SSN", "date_of_birth", "pay_rate"],
        &ProjectionOptions::default(),
    )
    .unwrap();
    assert!(d.invariants_ok());

    // Identical behavior for the original objects.
    for (i, &o) in employees.iter().enumerate() {
        assert_eq!(before[i].0, db.call_named("age", &[Value::Ref(o)]).unwrap());
        assert_eq!(
            before[i].1,
            db.call_named("income", &[Value::Ref(o)]).unwrap()
        );
        assert_eq!(
            before[i].2,
            db.call_named("promote", &[Value::Ref(o)]).unwrap()
        );
    }

    // The materialized view answers exactly the surviving methods.
    let view = MaterializedView::materialize(&mut db, &d).unwrap();
    assert_eq!(view.pairs.len(), 5);
    for (i, &(src, v)) in view.pairs.iter().enumerate() {
        assert_eq!(src, employees[i]);
        assert_eq!(before[i].0, db.call_named("age", &[Value::Ref(v)]).unwrap());
        assert_eq!(
            before[i].2,
            db.call_named("promote", &[Value::Ref(v)]).unwrap()
        );
        assert!(matches!(
            db.call_named("income", &[Value::Ref(v)]),
            Err(StoreError::NoApplicableMethod { .. })
        ));
        // name was projected away entirely.
        assert!(db.call_named("get_name", &[Value::Ref(v)]).is_err());
        assert_eq!(
            db.call_named("get_SSN", &[Value::Ref(v)]).unwrap(),
            Value::Int(1000 + i as i64)
        );
    }
}

/// Virtual views track live updates; materialized ones refresh on demand.
#[test]
fn virtual_and_materialized_views_agree() {
    let mut db = Database::new(figures::fig1());
    db.create_named("Employee", &[("SSN", Value::Int(1))])
        .unwrap();
    let d = project_named(
        db.schema_mut(),
        "Employee",
        &["SSN"],
        &ProjectionOptions::default(),
    )
    .unwrap();
    let virt = VirtualView::new(&d);
    let mut mat = MaterializedView::materialize(&mut db, &d).unwrap();
    assert_eq!(virt.tuples(&db).unwrap().len(), 1);

    db.create_named("Employee", &[("SSN", Value::Int(2))])
        .unwrap();
    assert_eq!(virt.tuples(&db).unwrap().len(), 2); // live
    assert_eq!(mat.pairs.len(), 1); // stale
    assert_eq!(mat.refresh(&mut db).unwrap(), 1);
    assert_eq!(mat.pairs.len(), 2);

    // Tuples and materialized fields agree per source object.
    let ssn = db.schema().attr_id("SSN").unwrap();
    for (src, tuple) in virt.tuples(&db).unwrap() {
        let v = mat.view_of(src).unwrap();
        let mat_val = db.get_field(v, ssn).unwrap();
        let virt_val = tuple.iter().find(|(a, _)| *a == ssn).unwrap().1.clone();
        assert_eq!(mat_val, virt_val);
    }
}

/// A realistic multi-step pipeline over the Figure 3 hierarchy, followed
/// by surrogate minimization, with dispatch still correct end to end.
#[test]
fn pipeline_then_minimize_preserves_dispatch() {
    let mut db = Database::new(figures::fig3());
    // Populate a few A objects with every attribute set.
    let attr_names = [
        "a1", "a2", "b1", "c1", "d1", "e1", "e2", "f1", "g1", "h1", "h2",
    ];
    for i in 0..3i64 {
        let fields: Vec<(&str, Value)> = attr_names
            .iter()
            .map(|&n| (n, Value::Int(i * 100)))
            .collect();
        db.create_named("A", &fields).unwrap();
    }
    let a_objs = db.deep_extent(db.schema().type_id("A").unwrap());
    let before_h2: Vec<Value> = a_objs
        .iter()
        .map(|&o| db.call_named("get_h2", &[Value::Ref(o)]).unwrap())
        .collect();

    let a = db.schema().type_id("A").unwrap();
    let pipeline = Pipeline::new()
        .project(&["a2", "e2", "h2"])
        .project(&["h2"]);
    let outcomes = pipeline
        .apply(db.schema_mut(), a, &ProjectionOptions::default())
        .unwrap();
    let view_ty = outcomes.last().unwrap().result_type();

    let protected: BTreeSet<TypeId> = outcomes.iter().map(|o| o.result_type()).collect();
    minimize_surrogates(db.schema_mut(), &protected).unwrap();
    db.schema().validate().unwrap();

    // get_h2 still answers identically on the original objects.
    for (i, &o) in a_objs.iter().enumerate() {
        assert_eq!(
            before_h2[i],
            db.call_named("get_h2", &[Value::Ref(o)]).unwrap()
        );
    }
    // The stacked view type exposes exactly {h2} and inherits get_h2.
    let h2 = db.schema().attr_id("h2").unwrap();
    assert_eq!(
        db.schema().cumulative_attrs(view_ty),
        [h2].into_iter().collect()
    );
    let get_h2_m = db.schema().method_by_label("get_h2").unwrap();
    assert!(db.schema().method_applicable_to_type(get_h2_m, view_ty));
}

/// Selection composed over a projection, evaluated on real objects.
#[test]
fn selection_over_projection_extent() {
    let mut db = Database::new(figures::fig1());
    for (ssn, pay) in [(1, 10.0), (2, 90.0)] {
        db.create_named(
            "Employee",
            &[("SSN", Value::Int(ssn)), ("pay_rate", Value::Float(pay))],
        )
        .unwrap();
    }
    let d = project_named(
        db.schema_mut(),
        "Employee",
        &["SSN", "pay_rate"],
        &ProjectionOptions::default(),
    )
    .unwrap();
    let view = MaterializedView::materialize(&mut db, &d).unwrap();
    assert_eq!(view.pairs.len(), 2);

    // Select the highly paid badge records from the *derived* type.
    let pay = db.schema().attr_id("pay_rate").unwrap();
    let sel = select(
        db.schema_mut(),
        d.derived,
        "RichBadge",
        Predicate::cmp(pay, CmpOp::Gt, Value::Float(50.0)),
    )
    .unwrap();
    // The deep extent of the view type includes both the materialized
    // view objects AND the original employees — inclusion polymorphism:
    // every Employee is an instance of ^Employee. Exactly one of each
    // earns more than 50.
    let rich = sel.filter(&db).unwrap();
    assert_eq!(rich.len(), 2);
    let ssn = db.schema().attr_id("SSN").unwrap();
    for o in rich {
        assert_eq!(db.get_field(o, ssn).unwrap(), Value::Int(2));
    }
}

/// The baseline audit on a randomized workload: the paper's strategy is
/// the only clean one.
#[test]
fn baseline_audit_on_random_workloads() {
    for seed in [3u64, 17, 99] {
        let schema = random_schema(&GenParams {
            seed,
            n_types: 18,
            ..GenParams::default()
        });
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, 0.5, seed ^ 0xFF);
        let strategies: Vec<&dyn DerivationStrategy> = vec![
            &PaperStrategy,
            &StandaloneStrategy,
            &RootPlacementStrategy,
            &LocalEdgeStrategy,
        ];
        let results = audit_all(&strategies, &schema, source, &projection);
        assert_eq!(results[0].strategy, "paper");
        assert_eq!(
            results[0].total_violations(),
            0,
            "paper strategy must be clean on seed {seed}: {}",
            results[0].row()
        );
        for r in &results[1..] {
            assert!(
                r.total_violations() > 0,
                "baseline {} unexpectedly clean on seed {seed}",
                r.strategy
            );
        }
    }
}

/// Derivations on a schema already containing derivations (the `#2`
/// naming path) and projections from two different sources coexist.
#[test]
fn repeated_and_parallel_derivations() {
    let mut s = figures::fig1();
    let d1 = project_named(&mut s, "Employee", &["SSN"], &ProjectionOptions::default()).unwrap();
    let d2 = project_named(&mut s, "Employee", &["SSN"], &ProjectionOptions::default()).unwrap();
    let d3 = project_named(&mut s, "Person", &["name"], &ProjectionOptions::default()).unwrap();
    assert!(d1.invariants_ok() && d2.invariants_ok() && d3.invariants_ok());
    assert_ne!(d1.derived, d2.derived);
    let ssn = s.attr_id("SSN").unwrap();
    let name = s.attr_id("name").unwrap();
    assert_eq!(s.cumulative_attrs(d1.derived), [ssn].into_iter().collect());
    assert_eq!(s.cumulative_attrs(d2.derived), [ssn].into_iter().collect());
    assert_eq!(s.cumulative_attrs(d3.derived), [name].into_iter().collect());
    s.validate().unwrap();
}
