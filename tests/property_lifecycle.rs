//! Properties of the lifecycle extensions: explanations agree with the
//! classifier, and dropping a view is the exact inverse of deriving it.

use proptest::prelude::*;
use typederive::derive::{compute_applicability, explain, project, unproject, ProjectionOptions};
use typederive::workload::{deepest_type, random_projection, random_schema, GenParams};

fn params(n_types: usize, seed: u64) -> GenParams {
    GenParams {
        n_types,
        seed,
        ..GenParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn explanations_agree_with_the_classifier(
        n_types in 2usize..18,
        seed in any::<u64>(),
        keep in 0.0f64..1.0,
    ) {
        let schema = random_schema(&params(n_types, seed));
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, seed ^ 7);
        let r = compute_applicability(&schema, source, &projection, false).unwrap();
        for &m in &r.universe {
            let e = explain(&schema, source, &projection, m).unwrap();
            prop_assert_eq!(
                e.is_applicable(),
                r.is_applicable(m),
                "verdict mismatch for {}:\n{}",
                schema.method_label(m),
                e.render(&schema)
            );
            // Rendering never panics and always names the method.
            let text = e.render(&schema);
            prop_assert!(text.contains(schema.method_label(m)));
        }
    }

    #[test]
    fn unproject_inverts_project(
        n_types in 2usize..18,
        seed in any::<u64>(),
        keep in 0.1f64..1.0,
    ) {
        let mut schema = random_schema(&params(n_types, seed));
        let before_h = schema.render_hierarchy();
        let before_m = schema.render_methods();
        let before_bodies: Vec<_> = schema
            .method_ids()
            .map(|m| schema.method(m).body().cloned())
            .collect();

        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, seed ^ 13);
        prop_assume!(!projection.is_empty());
        let d = project(&mut schema, source, &projection, &ProjectionOptions::fast()).unwrap();
        unproject(&mut schema, &d).unwrap();

        prop_assert_eq!(schema.render_hierarchy(), before_h);
        prop_assert_eq!(schema.render_methods(), before_m);
        for (i, m) in schema.method_ids().enumerate() {
            prop_assert_eq!(schema.method(m).body().cloned(), before_bodies[i].clone());
        }
        schema.validate().unwrap();
    }

    #[test]
    fn double_projection_drops_in_reverse_order(
        n_types in 3usize..14,
        seed in any::<u64>(),
    ) {
        // Two views over the same source implicitly stack: the second
        // derivation may factor the first's surrogates (they now own
        // projected attributes). Reverse creation order must always
        // unwind; the wrong order must either succeed (truly disjoint) or
        // fail cleanly without corrupting anything.
        let mut schema = random_schema(&params(n_types, seed));
        let before = schema.render_hierarchy();
        let source = deepest_type(&schema);
        let p1 = random_projection(&schema, source, 0.5, seed ^ 21);
        let p2 = random_projection(&schema, source, 0.5, seed ^ 22);
        prop_assume!(!p1.is_empty() && !p2.is_empty());
        let d1 = project(&mut schema, source, &p1, &ProjectionOptions::fast()).unwrap();
        let d2 = project(&mut schema, source, &p2, &ProjectionOptions::fast()).unwrap();

        let mid = schema.render_hierarchy();
        match unproject(&mut schema, &d1) {
            Ok(()) => {
                // Truly disjoint: either remaining order finishes the job.
                unproject(&mut schema, &d2).unwrap();
            }
            Err(e) => {
                // Clean refusal, schema untouched, then reverse order.
                prop_assert!(e.to_string().contains("cannot drop view"), "{e}");
                prop_assert_eq!(schema.render_hierarchy(), mid);
                unproject(&mut schema, &d2).unwrap();
                unproject(&mut schema, &d1).unwrap();
            }
        }
        prop_assert_eq!(schema.render_hierarchy(), before);
        schema.validate().unwrap();
    }
}
