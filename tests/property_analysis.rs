//! Properties of the `td-analyze` precision ladder.
//!
//! Two guarantees keep [`AnalysisPrecision::Semantic`] an honest
//! performance knob:
//!
//! 1. **Footprint nesting** — the semantic refinement only ever
//!    *removes* disjunctive over-approximation, so every method's
//!    semantic attribute footprint is a subset of its syntactic one and
//!    the fallback-method count never grows.
//! 2. **Report invisibility** — precision must never change an
//!    observable answer. The suite runs the same request on two
//!    identically generated schemas, one kept fully syntactic and one
//!    warmed at semantic precision, and compares the *bytes* of all
//!    three derivation reports: the canonical `project` record, the
//!    `lint` report and the `explain` proofs.
//!
//! A deterministic pair of tests covers the delta seam: the analysis
//! corpus fails `analyze --deny warnings` while passing the ordinary
//! lints, and request-scoped analysis reports survive a single-method
//! delta that cannot reach their universe.

use proptest::prelude::*;
use std::collections::BTreeSet;
use typederive::analyze::analyze;
use typederive::derive::{
    compute_applicability_indexed_at, explain, lint, project, ProjectionOptions,
};
use typederive::model::{AnalysisPrecision, BodyBuilder, MethodId, MethodKind, Specializer};
use typederive::server::derivation_json;
use typederive::workload::{
    analysis_corpus, deepest_type, disjunctive_schema, random_projection, random_schema, GenParams,
};

fn params_strategy() -> impl Strategy<Value = GenParams> {
    (
        2usize..24,   // n_types
        1usize..4,    // max_supers
        0.0f64..0.8,  // mi_fraction
        0usize..3,    // attrs_per_type
        0.3f64..1.0,  // reader_fraction
        1usize..9,    // n_gfs
        1usize..4,    // methods_per_gf
        1usize..3,    // max_arity
        0usize..5,    // calls_per_body
        0.0f64..0.6,  // assign_fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            )| GenParams {
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    #[test]
    fn semantic_precision_nests_footprints_and_never_changes_reports(
        params in params_strategy(),
        keep in 0.0f64..1.0,
        proj_seed in any::<u64>(),
    ) {
        // Two independent, identical schemas: one stays syntactic, the
        // other takes every semantic-precision code path first.
        let syn_schema = random_schema(&params);
        let sem_schema = random_schema(&params);
        let source = deepest_type(&syn_schema);
        let projection = random_projection(&syn_schema, source, keep, proj_seed);

        // --- 1. footprint nesting -----------------------------------
        let syn_idx = syn_schema
            .cached_applicability_index_at(source, AnalysisPrecision::Syntactic)
            .unwrap();
        let sem_idx = sem_schema
            .cached_applicability_index_at(source, AnalysisPrecision::Semantic)
            .unwrap();
        prop_assert!(
            sem_idx.fallback_methods() <= syn_idx.fallback_methods(),
            "refinement must not create fallbacks ({} > {})",
            sem_idx.fallback_methods(),
            syn_idx.fallback_methods()
        );
        prop_assert_eq!(syn_idx.universe(), sem_idx.universe());
        for &m in syn_idx.universe() {
            let syn_fp = syn_idx.footprint(m).unwrap();
            let sem_fp = sem_idx.footprint(m).unwrap();
            prop_assert!(
                sem_fp.is_subset(syn_fp),
                "semantic footprint of method {m:?} escapes the syntactic one"
            );
        }

        // --- 2. verdict preservation --------------------------------
        let set = |v: &[MethodId]| v.iter().copied().collect::<BTreeSet<_>>();
        let syn_app =
            compute_applicability_indexed_at(
                &syn_schema, source, &projection, AnalysisPrecision::Syntactic, false,
            )
            .unwrap();
        let sem_app =
            compute_applicability_indexed_at(
                &sem_schema, source, &projection, AnalysisPrecision::Semantic, false,
            )
            .unwrap();
        prop_assert_eq!(set(&syn_app.applicable), set(&sem_app.applicable));
        prop_assert_eq!(set(&syn_app.not_applicable), set(&sem_app.not_applicable));

        // --- 3. report invisibility ---------------------------------
        // Warm every semantic artifact (analysis reports included)
        // before producing the reports on the semantic schema.
        let _ = analyze(&sem_schema, Some((source, &projection)), AnalysisPrecision::Semantic);

        let syn_lint = lint(&syn_schema, Some((source, &projection))).render_json();
        let sem_lint = lint(&sem_schema, Some((source, &projection))).render_json();
        prop_assert_eq!(syn_lint, sem_lint, "lint bytes changed under semantic precision");

        for &m in syn_app.universe.iter().take(3) {
            let syn_e = explain(&syn_schema, source, &projection, m).unwrap();
            let sem_e = explain(&sem_schema, source, &projection, m).unwrap();
            prop_assert_eq!(
                syn_e.render(&syn_schema),
                sem_e.render(&sem_schema),
                "explain bytes changed under semantic precision"
            );
        }

        if !projection.is_empty() {
            let mut syn_mut = syn_schema.clone();
            let mut sem_mut = sem_schema.clone();
            let syn_d = project(
                &mut syn_mut,
                source,
                &projection,
                &ProjectionOptions::default(),
            )
            .unwrap();
            let sem_d = project(
                &mut sem_mut,
                source,
                &projection,
                &ProjectionOptions {
                    precision: AnalysisPrecision::Semantic,
                    ..ProjectionOptions::default()
                },
            )
            .unwrap();
            prop_assert_eq!(
                derivation_json(&syn_mut, &syn_d),
                derivation_json(&sem_mut, &sem_d),
                "project bytes changed under semantic precision"
            );
        }
    }
}

/// Every analysis-corpus case carries a finding only the interprocedural
/// analyses see: `analyze --deny warnings` fails, the ordinary TDL lints
/// stay clean. This is the separation that justifies two corpora (and
/// two CI gates).
#[test]
fn every_analysis_corpus_case_fails_deny_warnings_but_passes_lint() {
    for case in analysis_corpus(9, 0xA11) {
        let request = case.request.as_ref().map(|(t, a)| (*t, a));
        let out = analyze(&case.schema, request, AnalysisPrecision::Syntactic);
        assert!(
            out.report.fails(true),
            "{} case must fail `analyze --deny warnings`: {:?}",
            case.name,
            out.report.diagnostics
        );
        let ordinary = lint(&case.schema, request);
        assert!(
            !ordinary.fails(true),
            "{} case must pass the ordinary lints: {:?}",
            case.name,
            ordinary.diagnostics
        );
    }
}

/// Request-scoped analysis reports ride the PR-8 delta machinery: a
/// single added method that is not applicable to the request's source
/// evicts the schema-wide report (its universe is every method) but
/// leaves the per-source report — and its condensation index — warm.
#[test]
fn analysis_reports_survive_an_unrelated_method_delta() {
    let mut s = disjunctive_schema(2, 1, 2);
    // An island: a type hierarchy disjoint from the A/B units.
    let z = s.add_type("Z", &[]).unwrap();
    let z2 = s.add_type("Z2", &[z]).unwrap();
    let zg = s.add_gf("zg", 1, None).unwrap();
    s.add_method(
        zg,
        "zg_z",
        vec![Specializer::Type(z)],
        MethodKind::General(BodyBuilder::new().finish()),
        None,
    )
    .unwrap();

    let b = s.type_id("B").unwrap();
    let projection: BTreeSet<_> = [s.attr_id("d0_x").unwrap()].into_iter().collect();
    let cold = analyze(&s, Some((b, &projection)), AnalysisPrecision::Syntactic);
    assert!(!cold.stats.schema_cached && !cold.stats.request_cached);
    let warm = analyze(&s, Some((b, &projection)), AnalysisPrecision::Syntactic);
    assert!(warm.stats.schema_cached && warm.stats.request_cached);

    // The delta: one more method on the island gf, unreachable from `B`.
    s.add_method(
        zg,
        "zg_z2",
        vec![Specializer::Type(z2)],
        MethodKind::General(BodyBuilder::new().finish()),
        None,
    )
    .unwrap();
    let after = analyze(&s, Some((b, &projection)), AnalysisPrecision::Syntactic);
    assert!(
        !after.stats.schema_cached,
        "the schema-wide report depends on every method and must flush"
    );
    assert!(
        after.stats.request_cached,
        "the per-source report cannot reach the island and must survive"
    );
    assert!(
        s.dispatch_cache_stats().delta_survivals > 0,
        "the survival must be delta-accounted, not a rebuild"
    );
}
