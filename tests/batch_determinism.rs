//! The batch engine's determinism contract: for any thread count, a
//! `BatchDeriver` run is observationally identical to the sequential one —
//! same per-request results in request order, same error messages, same
//! invariant reports, same derived hierarchies. Worker scheduling may
//! reorder *execution*, never *output*.

use std::collections::BTreeSet;
use typederive::derive::ProjectionOptions;
use typederive::driver::{BatchDeriver, BatchRequest};
use typederive::model::{AttrId, Schema, TypeId};
use typederive::workload::{batch_requests, random_schema, GenParams};

const THREAD_COUNTS: [usize; 4] = [2, 3, 4, 8];

fn workload_schema(seed: u64) -> Schema {
    random_schema(&GenParams {
        n_types: 24,
        n_gfs: 12,
        seed,
        ..GenParams::default()
    })
}

fn workload_batch(s: &Schema, n: usize, seed: u64) -> Vec<BatchRequest> {
    batch_requests(s, n, 0.5, seed)
        .into_iter()
        .map(BatchRequest::from)
        .collect()
}

/// The full observable surface of an outcome, beyond `render()`: the
/// derived hierarchy of every successful fork and the exact error text of
/// every failure, in request order.
fn deep_fingerprint(base: &Schema, deriver: &BatchDeriver, reqs: &[BatchRequest]) -> String {
    let outcome = deriver.run(reqs);
    let mut out = outcome.render(base);
    for r in &outcome.results {
        match (&r.result, &r.schema) {
            (Ok(d), Some(fork)) => {
                out.push_str(&format!(
                    "\n--- #{} {} ---\n{}\ninvariants: {:?}\n",
                    r.index,
                    fork.type_name(d.derived),
                    fork.render_hierarchy(),
                    d.invariants.as_ref().map(|rep| rep.ok()),
                ));
            }
            (Err(e), _) => out.push_str(&format!("\n--- #{} error: {e} ---\n", r.index)),
            (Ok(_), None) => unreachable!("successful request without a fork schema"),
        }
    }
    out
}

#[test]
fn parallel_batches_are_byte_identical_to_sequential() {
    for seed in [1u64, 0xBA7C, 0xFEED] {
        let s = workload_schema(seed);
        let reqs = workload_batch(&s, 64, seed);
        assert!(reqs.len() == 64, "workload generator came up short");
        let base = BatchDeriver::new(&s).options(ProjectionOptions::fast());
        let sequential = deep_fingerprint(&s, &base.clone().threads(1), &reqs);
        for threads in THREAD_COUNTS {
            let parallel = deep_fingerprint(&s, &base.clone().threads(threads), &reqs);
            assert_eq!(
                sequential, parallel,
                "seed {seed:#x}: {threads}-thread batch diverged from sequential"
            );
        }
    }
}

#[test]
fn error_outcomes_are_deterministic_across_thread_counts() {
    let s = workload_schema(0xE44);
    let mut reqs = workload_batch(&s, 16, 0xE44);
    // Interleave every failure mode the validator and the pipeline can
    // produce: dead ids, out-of-range ids, an empty projection, and an
    // attribute that exists but is not available at the source.
    reqs.insert(
        3,
        BatchRequest::new(TypeId::from_index(4096), BTreeSet::new()),
    );
    reqs.insert(
        7,
        BatchRequest::new(
            reqs[0].source,
            [AttrId::from_index(4096)].into_iter().collect(),
        ),
    );
    reqs.insert(11, BatchRequest::new(reqs[0].source, BTreeSet::new()));
    let unavailable = s.live_type_ids().find_map(|t| {
        (0..s.n_attrs())
            .map(AttrId::from_index)
            .find(|&a| !s.attr_available_at(a, t))
            .map(|a| (t, a))
    });
    if let Some((t, a)) = unavailable {
        reqs.insert(13, BatchRequest::new(t, [a].into_iter().collect()));
    }

    let base = BatchDeriver::new(&s).options(ProjectionOptions::fast());
    let sequential = base.clone().threads(1).run(&reqs);
    assert!(
        !sequential.all_ok() && sequential.stats.failed >= 3,
        "the poisoned batch should produce per-request errors"
    );
    assert_eq!(
        sequential.stats.succeeded + sequential.stats.failed,
        reqs.len()
    );
    let fingerprint = deep_fingerprint(&s, &base.clone().threads(1), &reqs);
    for threads in THREAD_COUNTS {
        let parallel = deep_fingerprint(&s, &base.clone().threads(threads), &reqs);
        assert_eq!(
            fingerprint, parallel,
            "{threads}-thread error batch diverged"
        );
    }
}

#[test]
fn invariant_reports_are_deterministic_across_thread_counts() {
    // Full invariant checking (I1–I3) is the most expensive and most
    // stateful stage; its reports must survive parallel execution intact.
    let s = workload_schema(0x11);
    let reqs = workload_batch(&s, 24, 0x11);
    let base = BatchDeriver::new(&s).options(ProjectionOptions::default());
    let sequential = base.clone().threads(1).run(&reqs);
    assert!(sequential
        .results
        .iter()
        .filter_map(|r| r.result.as_ref().ok())
        .all(|d| d.invariants.is_some()));
    let fingerprint = deep_fingerprint(&s, &base.clone().threads(1), &reqs);
    for threads in THREAD_COUNTS {
        let parallel = deep_fingerprint(&s, &base.clone().threads(threads), &reqs);
        assert_eq!(
            fingerprint, parallel,
            "{threads}-thread invariant reports diverged"
        );
    }
}

#[test]
fn stats_roll_up_consistently_at_any_thread_count() {
    let s = workload_schema(0x57A7);
    let reqs = workload_batch(&s, 16, 0x57A7);
    for threads in [1, 2, 4, 8] {
        // Full options: the I2 invariant replay is what exercises dispatch,
        // so it is what makes the per-request cache deltas observable.
        let deriver = BatchDeriver::new(&s)
            .options(ProjectionOptions::default())
            .threads(threads);
        deriver.warm();
        let outcome = deriver.run(&reqs);
        let st = &outcome.stats;
        assert_eq!(st.requests, reqs.len());
        assert_eq!(st.succeeded + st.failed, st.requests);
        // `stats.threads` reports the workers actually used: the request
        // is clamped to the batch size and to `available_parallelism()`,
        // so oversubscription never shows up as phantom workers.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(st.threads, threads.min(reqs.len()).min(cores));
        assert!(st.threads >= 1);
        assert_eq!(
            st.succeeded,
            outcome.results.iter().filter(|r| r.ok()).count()
        );
        // Wall-clock covers the span; summed per-request CPU time can only
        // exceed it through parallelism, never undercut the longest request.
        let longest = outcome.results.iter().map(|r| r.duration).max().unwrap();
        assert!(st.wall_clock >= longest);
        assert!(st.cpu_time >= longest);
        // The per-request cache deltas add up to real activity against the
        // shared warmed snapshot: every request that derives anything reads
        // CPLs, and warmed entries surface as hits somewhere in the batch.
        assert!(st.cache.cpl_hits + st.cache.cpl_misses > 0);
    }
}
