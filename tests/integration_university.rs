//! The university scenario end to end: a diamond-inheritance TA view with
//! multi-method behavior, exercised through the interpreter.

use typederive::derive::{explain, project_named, ProjectionOptions};
use typederive::store::{Database, MaterializedView, Value};
use typederive::workload::university;

fn populated() -> (Database, typederive::store::ObjId, typederive::store::ObjId) {
    let mut db = Database::new(university());
    let ta = db
        .create_named(
            "TA",
            &[
                ("pid", Value::Int(7)),
                ("name", Value::Str("Niklaus".into())),
                ("birth_year", Value::Int(1998)),
                ("program", Value::Str("CS".into())),
                ("credits", Value::Int(18)),
                ("salary", Value::Float(30_000.0)),
                ("dept_id", Value::Int(1)),
                ("stipend_pct", Value::Float(0.5)),
            ],
        )
        .unwrap();
    let section = db
        .create_named(
            "Section",
            &[
                ("sec_id", Value::Int(101)),
                ("enrollment", Value::Int(30)),
                ("weekly_hours", Value::Int(10)),
            ],
        )
        .unwrap();
    (db, ta, section)
}

#[test]
fn diamond_ta_behaves_before_and_after_projection() {
    let (mut db, ta, section) = populated();

    // Baseline behavior.
    assert_eq!(
        db.call_named("age", &[Value::Ref(ta)]).unwrap(),
        Value::Int(28)
    );
    assert_eq!(
        db.call_named("comp", &[Value::Ref(ta)]).unwrap(),
        Value::Float(15_000.0) // TA override: salary * stipend_pct
    );
    assert_eq!(
        db.call_named("assign", &[Value::Ref(ta), Value::Ref(section)])
            .unwrap(),
        Value::Bool(true) // 10 < 0.5 * 40
    );

    // A "payroll card" view of TA: salary + stipend, no academics.
    let d = project_named(
        db.schema_mut(),
        "TA",
        &["pid", "salary", "stipend_pct"],
        &ProjectionOptions::default(),
    )
    .unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);

    let labels: Vec<&str> = d
        .applicable()
        .iter()
        .map(|&m| db.schema().method_label(m))
        .collect();
    // Compensation logic survives (both the Employee method and the TA
    // override); the multi-method assign survives too — weekly_hours
    // lives on Section, which was not projected away.
    assert!(labels.contains(&"comp_employee"));
    assert!(labels.contains(&"comp_ta"));
    assert!(labels.contains(&"assign_ta_section"));
    // Academic/state methods die with their attributes.
    assert!(!labels.contains(&"age"));
    assert!(!labels.contains(&"load"));

    // Materialize and run behavior on the view object.
    let view = MaterializedView::materialize(&mut db, &d).unwrap();
    let v = view.view_of(ta).unwrap();
    assert_eq!(
        db.call_named("comp", &[Value::Ref(v)]).unwrap(),
        Value::Float(15_000.0)
    );
    assert_eq!(
        db.call_named("assign", &[Value::Ref(v), Value::Ref(section)])
            .unwrap(),
        Value::Bool(true)
    );
    assert!(db.call_named("age", &[Value::Ref(v)]).is_err());

    // The original TA still answers everything.
    assert_eq!(
        db.call_named("age", &[Value::Ref(ta)]).unwrap(),
        Value::Int(28)
    );
    assert_eq!(
        db.call_named("load", &[Value::Ref(ta)]).unwrap(),
        Value::Int(18)
    );
}

#[test]
fn explanation_for_the_dead_multi_method_names_the_chain() {
    let (db, _, _) = populated();
    let mut schema = db.schema().clone();
    let d = project_named(
        &mut schema,
        "TA",
        &["pid", "program"],
        &ProjectionOptions::default(),
    )
    .unwrap();
    // assign needs stipend_pct, which was projected away.
    let assign = schema.method_by_label("assign_ta_section").unwrap();
    assert!(!d.applicable().contains(&assign));
    let why = explain(&schema, d.source, &d.projection, assign).unwrap();
    let text = why.render(&schema);
    assert!(text.contains("stipend_pct"), "{text}");
}

#[test]
fn diamond_projection_factors_person_once() {
    let (mut db, _, _) = populated();
    // Project pid (at Person) through the TA diamond: exactly one ^Person
    // must exist, reachable from ^TA via both branch surrogates.
    let d = project_named(
        db.schema_mut(),
        "TA",
        &["pid"],
        &ProjectionOptions::default(),
    )
    .unwrap();
    assert!(d.invariants_ok());
    let s = db.schema();
    let p_hat = s.type_id("^Person").unwrap();
    let student_hat = s.type_id("^Student").unwrap();
    let employee_hat = s.type_id("^Employee").unwrap();
    assert!(s.is_subtype(student_hat, p_hat));
    assert!(s.is_subtype(employee_hat, p_hat));
    assert!(s.is_subtype(d.derived, p_hat));
    // Only one surrogate per source type exists.
    assert!(s.type_id("^Person#2").is_err());
}
