//! Property: any generated schema survives a print → parse round-trip
//! with identical structure, and projections behave identically on both
//! copies.

use proptest::prelude::*;
use typederive::derive::{compute_applicability, project, ProjectionOptions};
use typederive::model::{parse_schema, schema_to_text};
use typederive::workload::{deepest_type, random_projection, random_schema, GenParams};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_roundtrip_is_identity(
        n_types in 2usize..20,
        seed in any::<u64>(),
    ) {
        let s1 = random_schema(&GenParams {
            n_types,
            seed,
            ..GenParams::default()
        });
        let text = schema_to_text(&s1);
        let s2 = parse_schema(&text).map_err(|e| {
            TestCaseError::fail(format!("re-parse failed: {e}\n--- text ---\n{text}"))
        })?;

        prop_assert_eq!(s1.render_hierarchy(), s2.render_hierarchy());
        prop_assert_eq!(s1.render_methods(), s2.render_methods());
        prop_assert_eq!(s1.n_attrs(), s2.n_attrs());
        prop_assert_eq!(s1.n_gfs(), s2.n_gfs());
        prop_assert_eq!(s1.n_methods(), s2.n_methods());
        // Bodies are structurally identical.
        for m in s1.method_ids() {
            prop_assert_eq!(s1.method(m).body(), s2.method(m).body());
        }
    }

    #[test]
    fn roundtripped_schema_projects_identically(
        n_types in 2usize..16,
        seed in any::<u64>(),
        keep in 0.2f64..1.0,
    ) {
        let s1 = random_schema(&GenParams {
            n_types,
            seed,
            ..GenParams::default()
        });
        let s2 = parse_schema(&schema_to_text(&s1)).unwrap();
        let source = deepest_type(&s1);
        let projection = random_projection(&s1, source, keep, seed ^ 1);
        prop_assume!(!projection.is_empty());

        // Same applicability verdicts (ids align across the round-trip).
        let a1 = compute_applicability(&s1, source, &projection, false).unwrap();
        let a2 = compute_applicability(&s2, source, &projection, false).unwrap();
        prop_assert_eq!(&a1.applicable, &a2.applicable);
        prop_assert_eq!(&a1.not_applicable, &a2.not_applicable);

        // Same refactored hierarchy after projection.
        let mut m1 = s1.clone();
        let mut m2 = s2.clone();
        project(&mut m1, source, &projection, &ProjectionOptions::fast()).unwrap();
        project(&mut m2, source, &projection, &ProjectionOptions::fast()).unwrap();
        prop_assert_eq!(m1.render_hierarchy(), m2.render_hierarchy());
        prop_assert_eq!(m1.render_methods(), m2.render_methods());
    }
}

/// The factored schema itself (with `^` names) round-trips too.
#[test]
fn factored_schema_roundtrips() {
    let mut s = typederive::workload::fig3();
    let source = s.type_id("A").unwrap();
    let projection = ["a2", "e2", "h2"]
        .iter()
        .map(|n| s.attr_id(n).unwrap())
        .collect();
    project(&mut s, source, &projection, &ProjectionOptions::fast()).unwrap();
    let text = schema_to_text(&s);
    let s2 = parse_schema(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(s.render_hierarchy(), s2.render_hierarchy());
    assert_eq!(s.render_methods(), s2.render_methods());
}
