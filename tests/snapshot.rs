//! Binary snapshot robustness and compatibility.
//!
//! Two contracts are enforced here:
//!
//! 1. **Corruption safety** — a truncated, bit-flipped, wrongly-typed or
//!    future-versioned snapshot file produces a structured
//!    [`SnapshotError`], never a panic and never a silently-wrong schema.
//!    The flip/truncate sweeps are deliberately exhaustive over a small
//!    snapshot: every single-byte mutation and every prefix length.
//!
//! 2. **Cross-version compatibility** — the committed golden fixture
//!    `tests/fixtures/fig3_v1.tds` (written by the first format-v1
//!    build) must stay loadable by every later build, and the schema it
//!    reconstructs must derive byte-identically to the text-parsed
//!    `examples/schemas/fig3.td`. CI fails the build if this test breaks
//!    or if `SNAPSHOT_VERSION` bumps without a CHANGES.md note.

use std::path::PathBuf;
use typederive::model::{
    load_snapshot, parse_schema, read_snapshot_file, save_snapshot, snapshot_info, SnapshotError,
    SNAPSHOT_VERSION,
};

fn manifest_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// A small schema with warm caches, snapshot-encoded.
fn sample_bytes() -> Vec<u8> {
    let schema = typederive::workload::fig3();
    schema.warm_caches();
    save_snapshot(&schema, &[("origin".into(), "tests/snapshot.rs".into())])
}

/// FNV-1a 64, re-implemented here so tests can forge valid trailers for
/// targeted section corruption.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Rewrites the trailing whole-file checksum so tampered bytes pass the
/// outer integrity gate and exercise the inner per-section checks.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let body_end = bytes.len() - 8;
    let trailer = fnv1a(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&trailer.to_le_bytes());
    bytes
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = sample_bytes();
    bytes[0] ^= 0xFF;
    assert_eq!(load_snapshot(&bytes).unwrap_err(), SnapshotError::BadMagic);

    // A different file format entirely (text) is also just BadMagic.
    let text = b"type Person { SSN: int }\n".to_vec();
    assert_eq!(load_snapshot(&text).unwrap_err(), SnapshotError::BadMagic);
}

#[test]
fn future_version_is_rejected_with_both_versions_named() {
    let mut bytes = sample_bytes();
    let future = (SNAPSHOT_VERSION + 7).to_le_bytes();
    bytes[8..12].copy_from_slice(&future);
    let bytes = reseal(bytes);
    match load_snapshot(&bytes).unwrap_err() {
        SnapshotError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, SNAPSHOT_VERSION + 7);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn every_truncation_is_a_structured_error() {
    let bytes = sample_bytes();
    for len in 0..bytes.len() {
        let err = load_snapshot(&bytes[..len])
            .expect_err("a strict prefix must never load as a valid snapshot");
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::Corrupt(_)
            ),
            "prefix of {len} bytes gave unexpected error {err:?}"
        );
    }
}

#[test]
fn every_single_byte_flip_is_detected() {
    let bytes = sample_bytes();
    for i in 0..bytes.len() {
        let mut tampered = bytes.clone();
        tampered[i] ^= 0x01;
        assert!(
            load_snapshot(&tampered).is_err(),
            "flipping byte {i} went undetected"
        );
    }
}

#[test]
fn resealed_section_corruption_hits_the_section_checksum() {
    let bytes = sample_bytes();
    // Flip a byte deep in the payload area (past the header + section
    // table), then forge a valid trailer: the per-section checksum is
    // now the only line of defense, and it must name the section.
    let mut tampered = bytes.clone();
    let target = bytes.len() - 100;
    tampered[target] ^= 0xFF;
    let tampered = reseal(tampered);
    match load_snapshot(&tampered).unwrap_err() {
        SnapshotError::ChecksumMismatch { section } => {
            assert_ne!(section, "trailer", "the forged trailer passed");
        }
        other => panic!("expected a section ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn corruption_errors_render_readable_messages() {
    let mut bytes = sample_bytes();
    bytes[0] ^= 0xFF;
    let msg = load_snapshot(&bytes).unwrap_err().to_string();
    assert!(msg.contains("bad magic"), "{msg}");
    let msg = load_snapshot(&sample_bytes()[..40])
        .unwrap_err()
        .to_string();
    assert!(!msg.is_empty());
}

#[test]
fn golden_v1_fixture_still_loads() {
    let (schema, meta) = read_snapshot_file(manifest_path("tests/fixtures/fig3_v1.tds"))
        .expect("the committed v1 fixture must stay loadable by every future reader");
    assert!(
        meta.iter().any(|(k, _)| k == "source"),
        "fixture metadata lost: {meta:?}"
    );
    // The caches must arrive warm — that is the point of the format.
    let stats = schema.dispatch_cache_stats();
    assert!(stats.cpl_entries > 0, "fixture loaded with cold CPL cache");
    assert!(stats.index_entries > 0, "fixture loaded with cold indexes");
    assert_eq!(schema.type_id("A").unwrap(), schema.type_id("A").unwrap());

    // Byte-identical derivation vs the text-parsed path, across engines.
    let text = std::fs::read_to_string(manifest_path("examples/schemas/fig3.td")).unwrap();
    let from_text = parse_schema(&text).unwrap();
    assert_eq!(schema.render_hierarchy(), from_text.render_hierarchy());
    assert_eq!(schema.render_methods(), from_text.render_methods());
    for engine in [
        typederive::derive::Engine::Indexed,
        typederive::derive::Engine::Stack,
        typederive::derive::Engine::Fixpoint,
    ] {
        let opts = typederive::derive::ProjectionOptions {
            engine,
            ..Default::default()
        };
        let mut s1 = schema.clone();
        let mut s2 = from_text.clone();
        let d1 = typederive::derive::project_named(
            &mut s1,
            "A",
            typederive::workload::figures::FIG4_PROJECTION,
            &opts,
        )
        .unwrap();
        let d2 = typederive::derive::project_named(
            &mut s2,
            "A",
            typederive::workload::figures::FIG4_PROJECTION,
            &opts,
        )
        .unwrap();
        assert_eq!(
            typederive::server::derivation_json(&s1, &d1),
            typederive::server::derivation_json(&s2, &d2),
            "snapshot-loaded and text-parsed derivations diverged ({engine:?})"
        );
    }
}

#[test]
fn fixture_inspect_reports_current_version() {
    let bytes = std::fs::read(manifest_path("tests/fixtures/fig3_v1.tds")).unwrap();
    let info = snapshot_info(&bytes).unwrap();
    // When SNAPSHOT_VERSION bumps, regenerate the fixture AND keep this
    // one loadable (add a v2 fixture alongside, don't replace) — see the
    // CI cross-version guard.
    assert_eq!(info.version, 1);
    assert!(info.sections.len() >= 10, "{:?}", info.sections);
}

#[test]
fn roundtrip_through_disk_is_lossless() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("td_snapshot_test_{}.tds", std::process::id()));
    let schema = typederive::workload::fig3();
    schema.warm_caches();
    typederive::model::write_snapshot_file(&schema, &[], &path).unwrap();
    let (loaded, meta) = read_snapshot_file(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert!(meta.is_empty());
    assert_eq!(loaded.render_hierarchy(), schema.render_hierarchy());
    assert_eq!(
        loaded.dispatch_cache_stats().index_entries,
        schema.dispatch_cache_stats().index_entries
    );
}
