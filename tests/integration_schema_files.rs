//! The shipped `.td` schema files stay in sync with the programmatic
//! figure constructors, and the CLI drives the full paper pipeline from
//! them.

use typederive::derive::{project_named, ProjectionOptions};
use typederive::model::parse_schema;
use typederive::workload::figures;

fn load(name: &str) -> typederive::model::Schema {
    let path = format!("{}/examples/schemas/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_schema(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn fig1_file_matches_constructor() {
    let from_file = load("fig1.td");
    let programmatic = figures::fig1();
    assert_eq!(
        from_file.render_hierarchy(),
        programmatic.render_hierarchy()
    );
    assert_eq!(from_file.render_methods(), programmatic.render_methods());
}

#[test]
fn fig3_file_matches_constructor() {
    let from_file = load("fig3.td");
    let programmatic = figures::fig3_with_z1();
    assert_eq!(
        from_file.render_hierarchy(),
        programmatic.render_hierarchy()
    );
    assert_eq!(from_file.render_methods(), programmatic.render_methods());
}

#[test]
fn paper_pipeline_runs_from_the_file() {
    let mut s = load("fig3.td");
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions::default(),
    )
    .unwrap();
    assert!(d.invariants_ok());
    let labels: Vec<&str> = d.applicable().iter().map(|&m| s.method_label(m)).collect();
    for expected in figures::EX1_APPLICABLE {
        assert!(labels.contains(expected), "missing {expected}");
    }
    // z1 is also applicable in the fig3_with_z1 variant.
    assert!(labels.contains(&"z1"));
}
