//! Property: on every randomly generated schema, the full projection
//! pipeline preserves the paper's invariants I1–I5 — and surrogate
//! minimization afterwards preserves them again.

use proptest::prelude::*;
use std::collections::BTreeSet;
use typederive::derive::{minimize_surrogates, project, ProjectionOptions};
use typederive::model::TypeId;
use typederive::workload::{deepest_type, random_projection, random_schema, GenParams};

fn params_strategy() -> impl Strategy<Value = GenParams> {
    (
        2usize..20,
        1usize..4,
        0.0f64..0.7,
        1usize..3,
        0.4f64..1.0,
        1usize..8,
        1usize..3,
        1usize..3,
        0usize..4,
        0.0f64..0.6,
        any::<u64>(),
    )
        .prop_map(
            |(
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            )| GenParams {
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn projection_preserves_all_invariants(
        params in params_strategy(),
        keep in 0.1f64..1.0,
        proj_seed in any::<u64>(),
    ) {
        let mut schema = random_schema(&params);
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, proj_seed);
        prop_assume!(!projection.is_empty());

        let d = project(&mut schema, source, &projection, &ProjectionOptions {
            check_invariants: true,
            ..Default::default()
        }).unwrap();

        let report = d.invariants.as_ref().expect("requested");
        prop_assert!(report.ok(),
            "violations on seed {}: {:#?}", params.seed, report.violations);

        // Redundant spot checks straight off the mutated schema.
        schema.validate().unwrap();
        prop_assert_eq!(schema.cumulative_attrs(d.derived), projection);
        prop_assert!(schema.is_subtype(source, d.derived));
    }

    #[test]
    fn minimization_preserves_views_and_originals(
        params in params_strategy(),
        keep in 0.1f64..0.9,
        proj_seed in any::<u64>(),
    ) {
        let mut schema = random_schema(&params);
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, proj_seed);
        prop_assume!(!projection.is_empty());
        let d = project(&mut schema, source, &projection, &ProjectionOptions::fast()).unwrap();

        // Snapshot observable facts, then minimize.
        let before = schema.clone();
        let protected: BTreeSet<TypeId> = [d.derived].into_iter().collect();
        minimize_surrogates(&mut schema, &protected).unwrap();

        schema.validate().unwrap();
        // Derived view state unchanged.
        prop_assert_eq!(schema.cumulative_attrs(d.derived), projection);
        // Every surviving type keeps its cumulative state.
        for t in schema.live_type_ids() {
            prop_assert_eq!(schema.cumulative_attrs(t), before.cumulative_attrs(t));
        }
        // Subtype relation on surviving types unchanged.
        let live: Vec<TypeId> = schema.live_type_ids().collect();
        for &x in &live {
            for &y in &live {
                prop_assert_eq!(schema.is_subtype(x, y), before.is_subtype(x, y),
                    "subtype({},{}) changed", x, y);
            }
        }
        // Dispatch for the methods' own generic functions unchanged over
        // surviving unary calls.
        for gf in schema.gf_ids() {
            if schema.gf(gf).arity != 1 { continue; }
            for &t in &live {
                let args = [typederive::model::CallArg::Object(t)];
                prop_assert_eq!(
                    schema.most_specific(gf, &args).unwrap(),
                    before.most_specific(gf, &args).unwrap(),
                    "dispatch changed for {} on {}", schema.gf(gf).name, schema.type_name(t)
                );
            }
        }
    }

    #[test]
    fn stacked_projections_compose(
        params in params_strategy(),
        seed2 in any::<u64>(),
    ) {
        // Π over Π: deriving a view of a view still preserves everything,
        // and the final view exposes exactly the nested projection.
        let mut schema = random_schema(&params);
        let source = deepest_type(&schema);
        let first = random_projection(&schema, source, 0.7, params.seed);
        prop_assume!(first.len() >= 2);
        let d1 = project(&mut schema, source, &first, &ProjectionOptions::fast()).unwrap();
        let second = random_projection(&schema, d1.derived, 0.5, seed2);
        prop_assume!(!second.is_empty());
        let d2 = project(&mut schema, d1.derived, &second, &ProjectionOptions {
            check_invariants: true,
            ..Default::default()
        }).unwrap();
        prop_assert!(d2.invariants.as_ref().unwrap().ok(),
            "stacked projection violations: {:#?}", d2.invariants);
        prop_assert_eq!(schema.cumulative_attrs(d2.derived), second);
        prop_assert!(schema.is_subtype(d1.derived, d2.derived));
        prop_assert!(schema.is_subtype(source, d2.derived));
    }
}
