//! Soak test: long randomized sequences of schema-evolution operations
//! (derive / drop / minimize / round-trip) with the full invariant sweep
//! after every step. This is what a view server would do over its
//! lifetime; nothing may leak, drift or corrupt.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use typederive::derive::{minimize_surrogates, project, unproject, Derivation, ProjectionOptions};
use typederive::model::{parse_schema, schema_to_text, TypeId};
use typederive::workload::{deepest_type, random_projection, random_schema, GenParams};

#[test]
fn evolution_soak() {
    for seed in [11u64, 23, 47] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut schema = random_schema(&GenParams {
            n_types: 14,
            n_gfs: 8,
            seed,
            ..GenParams::default()
        });
        let pristine_h = schema.render_hierarchy();
        let pristine_m = schema.render_methods();

        // A stack of live derivations (drops must be inner-most-first).
        let mut stack: Vec<Derivation> = Vec::new();

        for step in 0..40 {
            let action = rng.gen_range(0..10);
            match action {
                // Derive a new view (over the newest view half the time).
                0..=4 => {
                    if stack.len() >= 5 {
                        continue;
                    }
                    let source = if let (true, Some(top)) = (rng.gen_bool(0.5), stack.last()) {
                        top.derived
                    } else {
                        deepest_type(&schema)
                    };
                    let projection =
                        random_projection(&schema, source, rng.gen_range(0.2..0.9), rng.gen());
                    if projection.is_empty() {
                        continue;
                    }
                    let d = project(
                        &mut schema,
                        source,
                        &projection,
                        &ProjectionOptions {
                            check_invariants: true,
                            ..Default::default()
                        },
                    )
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: project failed: {e}"));
                    assert!(
                        d.invariants.as_ref().unwrap().ok(),
                        "seed {seed} step {step}: {:#?}",
                        d.invariants
                    );
                    stack.push(d);
                }
                // Drop the newest view.
                5..=6 => {
                    if let Some(d) = stack.pop() {
                        unproject(&mut schema, &d).unwrap_or_else(|e| {
                            panic!("seed {seed} step {step}: unproject failed: {e}")
                        });
                        schema.validate().unwrap();
                    }
                }
                // Minimize surrogates (protect all live views).
                7 => {
                    let protected: BTreeSet<TypeId> = stack.iter().map(|d| d.derived).collect();
                    // Minimization may remove surrogates that later drops
                    // would try to retire, so only run it when no live
                    // derivation remains to be unwound.
                    if stack.is_empty() {
                        minimize_surrogates(&mut schema, &protected).unwrap();
                        schema.validate().unwrap();
                    }
                }
                // DSL round-trip sanity (read-only).
                _ => {
                    let text = schema_to_text(&schema);
                    let reparsed = parse_schema(&text).unwrap_or_else(|e| {
                        panic!("seed {seed} step {step}: round-trip failed: {e}")
                    });
                    assert_eq!(schema.render_hierarchy(), reparsed.render_hierarchy());
                }
            }
        }

        // Unwind everything; the original schema must come back exactly.
        while let Some(d) = stack.pop() {
            unproject(&mut schema, &d).unwrap();
        }
        // If minimization never ran (it only runs with an empty stack and
        // may have removed intermediate surrogates), the render matches
        // the pristine one whenever no surrogates remain.
        let leftovers = schema
            .live_type_ids()
            .filter(|&t| schema.type_(t).is_surrogate())
            .count();
        if leftovers == 0 {
            assert_eq!(schema.render_hierarchy(), pristine_h, "seed {seed}");
            assert_eq!(schema.render_methods(), pristine_m, "seed {seed}");
        }
        schema.validate().unwrap();
    }
}
