//! Property: the TDL lints predict the pipeline.
//!
//! Soundness — a lint-clean schema + request (no error-severity
//! diagnostics) never fails `project`: the lints' ambiguity, precedence
//! and request checks cover every upfront failure mode. Completeness —
//! whenever `project` does return an error, at least one error-severity
//! diagnostic predicted it. Plus determinism (same input ⇒ byte-identical
//! report) and caching (repeat lints answer from the dispatch cache).

use proptest::prelude::*;
use std::collections::BTreeSet;
use typederive::derive::{lint, project, ProjectionOptions};
use typederive::model::Schema;
use typederive::workload::{
    ambiguous_multimethod_schema, deepest_type, diamond_conflict_schema, fig3_with_z1,
    random_projection, random_schema, GenParams,
};

fn params_strategy() -> impl Strategy<Value = GenParams> {
    (
        2usize..28,   // n_types
        1usize..4,    // max_supers
        0.0f64..0.8,  // mi_fraction
        0usize..3,    // attrs_per_type
        0.3f64..1.0,  // reader_fraction
        1usize..10,   // n_gfs
        1usize..4,    // methods_per_gf
        1usize..3,    // max_arity
        0usize..5,    // calls_per_body
        0.0f64..0.6,  // assign_fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            )| GenParams {
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 220, ..ProptestConfig::default() })]

    #[test]
    fn lint_predicts_the_pipeline(
        params in params_strategy(),
        keep in 0.0f64..1.0,
        proj_seed in any::<u64>(),
    ) {
        let schema = random_schema(&params);
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, proj_seed);

        let report = lint(&schema, Some((source, &projection)));

        // Determinism: the same input renders byte-identically.
        let again = lint(&schema, Some((source, &projection)));
        prop_assert_eq!(report.render_text(), again.render_text());
        prop_assert_eq!(report.render_json(), again.render_json());

        let mut fork = schema.clone();
        match project(&mut fork, source, &projection, &ProjectionOptions::default()) {
            Ok(d) => {
                // Soundness: a derivation that went through means the lints
                // had nothing error-worthy to say about this request.
                prop_assert_eq!(
                    report.errors(),
                    0,
                    "pipeline succeeded but lint reported errors:\n{}",
                    report.render_text()
                );
                prop_assert!(d.invariants_ok());
            }
            Err(e) => {
                // Completeness: every pipeline error was predicted by at
                // least one error-severity diagnostic.
                prop_assert!(
                    report.errors() > 0,
                    "pipeline error `{e}` not predicted by any lint:\n{}",
                    report.render_text()
                );
            }
        }
    }
}

#[test]
fn precedence_conflicts_fail_lint_and_linearization() {
    let s = diamond_conflict_schema(1);
    let report = lint(&s, None);
    assert!(report.fails(false), "{}", report.render_text());
    assert!(
        report.render_text().contains("TDL002"),
        "{}",
        report.render_text()
    );
    // The lint error mirrors a real CPL failure at the join type.
    assert!(s.cpl(s.type_id("Z").unwrap()).is_err());
}

#[test]
fn malformed_requests_are_predicted_and_fail() {
    let s = fig3_with_z1();
    let a = s.type_id("A").unwrap();
    let c = s.type_id("C").unwrap();
    let a1 = s.attr_id("a1").unwrap();

    // Empty projection: TDL006 error, and the pipeline refuses it.
    let empty = BTreeSet::new();
    let report = lint(&s, Some((a, &empty)));
    assert!(
        report.render_text().contains("TDL006"),
        "{}",
        report.render_text()
    );
    let mut fork = s.clone();
    assert!(project(&mut fork, a, &empty, &ProjectionOptions::default()).is_err());

    // Unavailable attribute (a1 lives at A; C is not a subtype of A).
    let unavailable: BTreeSet<_> = [a1].into_iter().collect();
    let report = lint(&s, Some((c, &unavailable)));
    assert!(report.errors() > 0, "{}", report.render_text());
    let mut fork = s.clone();
    assert!(project(&mut fork, c, &unavailable, &ProjectionOptions::default()).is_err());
}

#[test]
fn ambiguity_warns_but_the_pipeline_still_derives() {
    let mut s = ambiguous_multimethod_schema(1);
    let p = s.type_id("P").unwrap();
    let x = s
        .add_attr("x", typederive::model::ValueType::INT, p)
        .unwrap();
    s.add_reader(x, p).unwrap();

    let c0 = s.type_id("C0").unwrap();
    let projection: BTreeSet<_> = [x].into_iter().collect();
    let report = lint(&s, Some((c0, &projection)));
    assert!(report.warnings() > 0, "{}", report.render_text());
    assert_eq!(report.errors(), 0, "{}", report.render_text());

    // The ambiguity is a dispatch-time hazard, not a derivation blocker.
    let mut fork = s.clone();
    let d = project(&mut fork, c0, &projection, &ProjectionOptions::default()).unwrap();
    assert!(d.invariants_ok());
}

#[test]
fn repeat_lints_answer_from_the_dispatch_cache() {
    let s: Schema = fig3_with_z1();
    let a = s.type_id("A").unwrap();
    let projection: BTreeSet<_> = ["a2", "e2", "h2"]
        .iter()
        .map(|n| s.attr_id(n).unwrap())
        .collect();

    let base = s.dispatch_cache_stats();
    lint(&s, Some((a, &projection)));
    let cold = s.dispatch_cache_stats();
    assert_eq!(
        cold.lint_misses - base.lint_misses,
        2,
        "schema part + request part"
    );

    lint(&s, Some((a, &projection)));
    let warm = s.dispatch_cache_stats();
    assert_eq!(
        warm.lint_misses, cold.lint_misses,
        "warm lint must not recompute"
    );
    assert_eq!(warm.lint_hits, cold.lint_hits + 2);
}
