//! Cross-crate telemetry integration: the span taxonomy the pipeline
//! promises, the Chrome-trace export/parse round trip, and the
//! determinism contract for batch traces.
//!
//! Telemetry state is process-global (one enabled flag, one metrics
//! registry, per-thread ring buffers), so every test here serializes on
//! [`TELEMETRY_LOCK`] and leaves telemetry disabled and drained behind
//! it.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use typederive::derive::{project_named, ProjectionOptions};
use typederive::driver::{BatchDeriver, BatchRequest};
use typederive::telemetry::{self, MetricsSnapshot, SpanEvent};
use typederive::workload::{batch_requests, figures, random_schema, GenParams};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn telemetry_lock() -> MutexGuard<'static, ()> {
    TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with telemetry on and returns its result plus the drained
/// spans and the metrics snapshot, restoring the disabled-and-empty
/// global state afterwards.
fn traced<T>(f: impl FnOnce() -> T) -> (T, Vec<SpanEvent>, MetricsSnapshot) {
    telemetry::set_enabled(true);
    let _ = telemetry::drain();
    telemetry::metrics::reset();
    let out = f();
    telemetry::set_enabled(false);
    let events = telemetry::drain();
    let metrics = telemetry::metrics::snapshot();
    telemetry::metrics::reset();
    (out, events, metrics)
}

/// The stage spans `project()` emits, in pipeline order.
const STAGES: [&str; 7] = [
    "applicability",
    "factor_state",
    "flow_analysis",
    "augment",
    "factor_methods",
    "retype",
    "invariants",
];

#[test]
fn fig3_example1_trace_covers_every_projection_stage() {
    let _guard = telemetry_lock();
    let mut schema = figures::fig3();
    let (derivation, events, _) = traced(|| {
        project_named(
            &mut schema,
            "A",
            figures::FIG4_PROJECTION,
            &ProjectionOptions::default(),
        )
        .unwrap()
    });
    assert!(derivation.invariants_ok());

    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.cat == "project")
        .map(|e| e.name.as_ref())
        .collect();
    for stage in STAGES {
        assert!(
            names.contains(&stage),
            "stage `{stage}` missing from trace: {names:?}"
        );
    }
    let umbrella = events
        .iter()
        .find(|e| e.name.as_ref() == "project/A")
        .expect("umbrella span project/A missing");
    // The umbrella wraps every stage span it reports on.
    for e in events.iter().filter(|e| STAGES.contains(&e.name.as_ref())) {
        assert!(umbrella.start_ns <= e.start_ns);
        assert!(e.start_ns + e.dur_ns <= umbrella.start_ns + umbrella.dur_ns);
    }
}

#[test]
fn chrome_trace_round_trips_through_the_parser() {
    let _guard = telemetry_lock();
    let mut schema = figures::fig3();
    let (_, events, _) = traced(|| {
        project_named(
            &mut schema,
            "A",
            figures::FIG4_PROJECTION,
            &ProjectionOptions::default(),
        )
        .unwrap()
    });
    assert!(!events.is_empty());

    let json = telemetry::chrome_trace(&events);
    let parsed = telemetry::parse_chrome_trace(&json).expect("trace must parse back");
    assert_eq!(parsed.len(), events.len());
    for (orig, back) in events.iter().zip(&parsed) {
        assert_eq!(back.cat, orig.cat);
        assert_eq!(back.name, orig.name.as_ref());
        // Microsecond timestamps carry three decimals, so nanosecond
        // precision survives the round trip exactly.
        assert_eq!(back.start_ns, orig.start_ns, "ts drifted for {}", orig.name);
        assert_eq!(back.dur_ns, orig.dur_ns, "dur drifted for {}", orig.name);
        assert_eq!(back.args.len(), orig.args.len());
    }
}

/// The span fingerprint that must not depend on scheduling: everything
/// except timestamps, thread ids, and per-thread sequence numbers.
fn span_multiset(events: &[SpanEvent]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for e in events {
        let key = format!("{}/{} {:?} depth={}", e.cat, e.name, e.args, e.depth);
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

#[test]
fn batch_trace_multiset_is_identical_across_thread_counts() {
    let _guard = telemetry_lock();
    let schema = random_schema(&GenParams {
        n_types: 24,
        n_gfs: 12,
        seed: 0xBA7C,
        ..GenParams::default()
    });
    let requests: Vec<BatchRequest> = batch_requests(&schema, 32, 0.5, 0xBA7C)
        .into_iter()
        .map(BatchRequest::from)
        .collect();
    assert_eq!(requests.len(), 32, "workload generator came up short");

    let mut fingerprints = Vec::new();
    for threads in [1usize, 2, 4] {
        let (outcome, events, _) = traced(|| {
            BatchDeriver::new(&schema)
                .threads(threads)
                .options(ProjectionOptions::fast())
                .run(&requests)
        });
        assert_eq!(outcome.results.len(), requests.len());
        // The `threads` arg on the batch/run span legitimately differs;
        // everything else must not.
        let events: Vec<SpanEvent> = events
            .into_iter()
            .filter(|e| !(e.cat == "batch" && e.name.as_ref() == "run"))
            .collect();
        let per_request = events
            .iter()
            .filter(|e| e.cat == "batch" && e.name.as_ref() == "request")
            .count();
        assert_eq!(per_request, requests.len(), "one request span per request");
        fingerprints.push((threads, span_multiset(&events)));
    }
    let (_, baseline) = &fingerprints[0];
    for (threads, fp) in &fingerprints[1..] {
        assert_eq!(
            fp, baseline,
            "{threads}-thread trace multiset diverged from sequential"
        );
    }
}

#[test]
fn batch_run_publishes_cache_metrics_into_the_registry() {
    let _guard = telemetry_lock();
    let schema = random_schema(&GenParams {
        n_types: 16,
        n_gfs: 8,
        seed: 7,
        ..GenParams::default()
    });
    let requests: Vec<BatchRequest> = batch_requests(&schema, 8, 0.5, 7)
        .into_iter()
        .map(BatchRequest::from)
        .collect();
    let (_, _, metrics) = traced(|| BatchDeriver::new(&schema).threads(2).run(&requests));
    assert!(
        metrics.gauges.contains_key("cache/generation"),
        "cache gauges missing: {:?}",
        metrics.gauges.keys().collect::<Vec<_>>()
    );
    assert!(!metrics.is_empty());
}

#[test]
fn schema_derived_span_names_survive_json_escaping() {
    let _guard = telemetry_lock();
    // Span names come from schema type names in the umbrella span; the
    // exporter must escape anything JSON-hostile an embedder might use.
    let hostile = "view \"Π\"\\\n\tend";
    let (_, events, _) = traced(|| {
        telemetry::emit_span(
            "project",
            format!("project/{hostile}"),
            10,
            20,
            vec![("derived", hostile.into()), ("applicable", 3i64.into())],
        );
    });
    let json = telemetry::chrome_trace(&events);
    let parsed = telemetry::parse_chrome_trace(&json).expect("escaped trace must parse");
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].name, format!("project/{hostile}"));
    assert_eq!(parsed[0].args["derived"], hostile);
}

#[test]
fn histogram_buckets_land_on_power_of_two_boundaries() {
    let _guard = telemetry_lock();
    telemetry::set_enabled(true);
    telemetry::metrics::reset();
    let h = telemetry::metrics::histogram("test/latency");
    for v in [0u64, 1, 2, 3, 4, 1023, 1024, 1025] {
        h.record(v);
    }
    let snap = telemetry::metrics::snapshot();
    telemetry::set_enabled(false);
    telemetry::metrics::reset();

    let hist = &snap.histograms["test/latency"];
    assert_eq!(hist.count, 8);
    assert_eq!(hist.sum, 1 + 2 + 3 + 4 + 1023 + 1024 + 1025);
    let buckets: BTreeMap<u64, u64> = hist.buckets.iter().copied().collect();
    // Bucket lower bounds are powers of two: 0, 1, 2, 4, ..., so 2 and 3
    // share [2,4), 1023 lands in [512,1024), 1024 and 1025 in [1024,2048).
    assert_eq!(buckets[&0], 1);
    assert_eq!(buckets[&1], 1);
    assert_eq!(buckets[&2], 2);
    assert_eq!(buckets[&4], 1);
    assert_eq!(buckets[&512], 1);
    assert_eq!(buckets[&1024], 2);
}
