//! End-to-end observability: one loopback request with a client-supplied
//! trace id is followed through every surface the id must appear on —
//! the `Traceparent` response header, the flight recorder
//! (`/v1/debug/requests`), the JSONL access log, and every span of the
//! slow-trace Chrome capture (queue-wait span included). Plus the
//! windowed-histogram boundary determinism the SLO metrics rely on.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use typederive::server::{http_request, Server, ServerConfig};
use typederive::telemetry::{self, parse_chrome_trace, WindowedHistogram, WINDOW_SECONDS};

const SCHEMA: &str = "
type Person { SSN: int  name: str  date_of_birth: int }
type Employee : Person { pay_rate: float  hrs_worked: float }
accessors SSN
accessors date_of_birth
accessors pay_rate
accessors hrs_worked
method age(Person) -> int { return 2026 - get_date_of_birth($0); }
method pay(Employee) -> float { return get_pay_rate($0) * get_hrs_worked($0); }
";

fn start(config: ServerConfig) -> (Arc<Server>, String, Arc<AtomicBool>, thread::JoinHandle<()>) {
    let server = Arc::new(Server::bind(config).expect("bind a loopback port"));
    let addr = server.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let runner = {
        let (server, shutdown) = (Arc::clone(&server), Arc::clone(&shutdown));
        thread::spawn(move || server.run(&shutdown).expect("server run"))
    };
    (server, addr, shutdown, runner)
}

fn stop(shutdown: &AtomicBool, runner: thread::JoinHandle<()>) {
    shutdown.store(true, Ordering::SeqCst);
    runner.join().expect("runner joins cleanly");
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("td_obs_test_{}_{name}", std::process::id()));
    p
}

/// The tentpole acceptance path: a client-supplied trace id appears on
/// the response header, in the flight recorder, in the access log, and
/// on every span of the slow-trace capture — including `queue_wait` and
/// the pipeline stages under it.
#[test]
fn client_trace_id_is_visible_on_every_observability_surface() {
    const TRACE: &str = "4bf92f3577b34da6a3ce929d0e0e4736";
    let access_log = temp_path("access.log");
    let slow_dir = temp_path("slow");
    let _ = std::fs::remove_file(&access_log);
    let _ = std::fs::remove_dir_all(&slow_dir);

    let config = ServerConfig {
        access_log: Some(access_log.to_str().unwrap().to_string()),
        slow_trace_dir: Some(slow_dir.to_str().unwrap().to_string()),
        // Threshold zero: every request is "slow", so the capture is
        // deterministic.
        slow_threshold_us: Some(0),
        ..ServerConfig::default()
    };
    let (_server, addr, shutdown, runner) = start(config);

    let put = http_request(
        &addr,
        "PUT",
        "/v1/tenants/acme/schemas/hr",
        &[],
        Some(SCHEMA.as_bytes()),
    )
    .unwrap();
    assert_eq!(put.status, 201, "{}", put.body);

    let traceparent = format!("00-{TRACE}-00f067aa0ba902b7-01");
    let body = "{\"tenant\": \"acme\", \"schema\": \"hr\", \"type\": \"Employee\", \
                \"attrs\": [\"SSN\", \"pay_rate\", \"hrs_worked\"]}";
    let reply = http_request(
        &addr,
        "POST",
        "/v1/project",
        &[("traceparent", &traceparent)],
        Some(body.as_bytes()),
    )
    .unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);

    // 1. The response echoes the trace id in its Traceparent header.
    let echoed = reply
        .header("traceparent")
        .expect("traced response carries a Traceparent header");
    assert!(
        echoed.contains(TRACE),
        "response Traceparent `{echoed}` does not carry {TRACE}"
    );

    // 2. The flight recorder holds the request under the same id.
    let debug = http_request(&addr, "GET", "/v1/debug/requests", &[], None).unwrap();
    assert_eq!(debug.status, 200, "{}", debug.body);
    assert!(
        debug.body.contains(TRACE),
        "flight recorder misses trace {TRACE}: {}",
        debug.body
    );
    assert!(
        debug.body.contains("\"endpoint\": \"project\""),
        "{}",
        debug.body
    );

    // Stop the server: the access log flushes on drain (each line was
    // also flushed as written) and no more requests can race the reads.
    stop(&shutdown, runner);

    // 3. The access log has the request's line, with the same id and
    //    the endpoint bucket.
    let log = std::fs::read_to_string(&access_log).expect("access log exists");
    let line = log
        .lines()
        .find(|l| l.contains(TRACE))
        .unwrap_or_else(|| panic!("access log misses trace {TRACE}:\n{log}"));
    assert!(line.contains("\"endpoint\": \"project\""), "{line}");
    assert!(line.contains("\"tenant\": \"acme\""), "{line}");
    assert!(line.contains("\"status\": 200"), "{line}");

    // 4. The slow-trace capture exists, parses as a Chrome trace, and
    //    every span is stamped with the request's trace family —
    //    including the queue-wait span and the pipeline stages.
    let capture = slow_dir.join(format!("slow-{TRACE}.json"));
    let text = std::fs::read_to_string(&capture)
        .unwrap_or_else(|e| panic!("slow capture {capture:?} missing: {e}"));
    let spans = parse_chrome_trace(&text).expect("capture parses as a Chrome trace");
    assert!(!spans.is_empty());
    let family = &TRACE[..16];
    for span in &spans {
        let stamp = span
            .args
            .get("trace")
            .unwrap_or_else(|| panic!("span {}/{} is unstamped", span.cat, span.name));
        assert!(
            stamp.starts_with(family),
            "span {}/{} carries foreign trace {stamp}",
            span.cat,
            span.name
        );
    }
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(
        names.contains(&"queue_wait"),
        "no queue-wait span: {names:?}"
    );
    assert!(
        names.contains(&"project"),
        "no project umbrella span: {names:?}"
    );
    // The pipeline under project() was traced too, not just the server
    // envelope.
    assert!(
        spans.iter().any(|s| s.cat != "server"),
        "only server-level spans were captured: {names:?}"
    );

    let _ = std::fs::remove_file(&access_log);
    let _ = std::fs::remove_dir_all(&slow_dir);
    telemetry::set_enabled(false);
}

/// The SLO window math is deterministic at its boundaries: quantiles
/// report bucket upper bounds, samples expire exactly at 60s, and slot
/// reuse discards the stale second.
#[test]
fn windowed_histogram_boundaries_are_deterministic() {
    let h = WindowedHistogram::default();
    let second = |s: u64| s * 1_000_000_000;

    // 90 fast samples and 10 slow ones at t=10s: the quantile ranks are
    // exact, and values report as bucket inclusive upper bounds.
    for _ in 0..90 {
        h.record_at(100, second(10));
    }
    for _ in 0..10 {
        h.record_at(5_000, second(10));
    }
    let s = h.summary_at(second(10));
    assert_eq!(s.count, 100);
    assert_eq!(s.p50, 127);
    assert_eq!(s.p95, 8_191);
    assert_eq!(s.p99, 8_191);

    // Visible through second 10+59; gone at second 10+60 exactly.
    let s = h.summary_at(second(10 + WINDOW_SECONDS - 1));
    assert_eq!(s.count, 100, "samples expired a second early");
    let s = h.summary_at(second(10 + WINDOW_SECONDS));
    assert_eq!(s.count, 0, "samples outlived the 60s window");

    // Slot reuse: a sample 60s after another lands in the same slot and
    // must discard the stale second, not merge with it.
    h.record_at(100, second(70));
    let s = h.summary_at(second(70));
    assert_eq!(s.count, 1);

    // Sub-second boundaries share the slot.
    h.record_at(100, second(70) + 999_999_999);
    let s = h.summary_at(second(70));
    assert_eq!(s.count, 2);
}
