//! Property: the three `IsApplicable` engines — the condensation-index
//! engine, the paper's stack algorithm and the greatest-fixpoint oracle —
//! classify identically on every randomly generated schema.
//!
//! The indexed engine answers single-candidate regions by bitset
//! footprint test and falls back to the stack algorithm for disjunctive
//! (§4.1 case-2 / multi-candidate) regions, so this suite is the direct
//! check on the fallback seam: any method the index wrongly claims, or
//! wrongly routes, shows up as a set difference. Each case exercises the
//! index cold (first build), warm (cached), and after a
//! cache-invalidating schema mutation (rebuild against the new
//! generation).

use proptest::prelude::*;
use std::collections::BTreeSet;
use typederive::derive::{
    compute_applicability, compute_applicability_fixpoint, compute_applicability_indexed,
};
use typederive::model::{MethodId, Schema, TypeId, ValueType};
use typederive::workload::{deepest_type, random_projection, random_schema, GenParams};

fn params_strategy() -> impl Strategy<Value = GenParams> {
    (
        2usize..28,   // n_types
        1usize..4,    // max_supers
        0.0f64..0.8,  // mi_fraction
        0usize..3,    // attrs_per_type
        0.3f64..1.0,  // reader_fraction
        1usize..10,   // n_gfs
        1usize..4,    // methods_per_gf
        1usize..3,    // max_arity
        0usize..5,    // calls_per_body
        0.0f64..0.6,  // assign_fraction
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            )| GenParams {
                n_types,
                max_supers,
                mi_fraction,
                attrs_per_type,
                reader_fraction,
                n_gfs,
                methods_per_gf,
                max_arity,
                calls_per_body,
                assign_fraction,
                seed,
            },
        )
}

/// Runs all three engines and asserts their applicable / not-applicable
/// classifications are identical as sets (the indexed engine may order
/// its output differently; the paper's semantics is a set).
fn assert_engines_agree(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<typederive::model::AttrId>,
    label: &str,
) -> Result<(), TestCaseError> {
    let stack = compute_applicability(schema, source, projection, false).unwrap();
    let indexed = compute_applicability_indexed(schema, source, projection, false).unwrap();
    let fixpoint = compute_applicability_fixpoint(schema, source, projection).unwrap();
    let set = |v: &[MethodId]| v.iter().copied().collect::<BTreeSet<_>>();

    let stack_app = set(&stack.applicable);
    prop_assert_eq!(
        &stack_app,
        &set(&indexed.applicable),
        "{}: indexed applicable set diverges",
        label
    );
    prop_assert_eq!(
        &stack_app,
        &set(&fixpoint.applicable),
        "{}: fixpoint applicable set diverges",
        label
    );
    let stack_not = set(&stack.not_applicable);
    prop_assert_eq!(
        &stack_not,
        &set(&indexed.not_applicable),
        "{}: indexed not-applicable set diverges",
        label
    );
    prop_assert_eq!(
        &stack_not,
        &set(&fixpoint.not_applicable),
        "{}: fixpoint not-applicable set diverges",
        label
    );
    // is_applicable agrees with the lists on every engine.
    for &m in &stack.universe {
        prop_assert_eq!(stack.is_applicable(m), indexed.is_applicable(m));
        prop_assert_eq!(stack.is_applicable(m), fixpoint.is_applicable(m));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 220, ..ProptestConfig::default() })]

    #[test]
    fn engines_agree_cold_warm_and_after_mutation(
        params in params_strategy(),
        keep in 0.0f64..1.0,
        proj_seed in any::<u64>(),
    ) {
        let mut schema = random_schema(&params);
        let source = deepest_type(&schema);
        let projection = random_projection(&schema, source, keep, proj_seed);

        // Cold: the first indexed call builds the condensation index.
        let before = schema.dispatch_cache_stats();
        assert_engines_agree(&schema, source, &projection, "cold")?;
        let after_cold = schema.dispatch_cache_stats();
        prop_assert!(
            after_cold.index_misses > before.index_misses,
            "cold run must build the index"
        );

        // Warm: the index is resident; answers must not change.
        assert_engines_agree(&schema, source, &projection, "warm")?;
        let after_warm = schema.dispatch_cache_stats();
        prop_assert!(
            after_warm.index_hits > after_cold.index_hits,
            "warm run must reuse the resident index"
        );
        prop_assert_eq!(after_warm.index_misses, after_cold.index_misses);

        // Mutate: a new attribute + reader at the source changes the
        // universe, bumps the schema generation, and must force a
        // rebuild — against which all engines still agree.
        let fresh = schema
            .add_attr(format!("fresh_{}", params.seed), ValueType::INT, source)
            .unwrap();
        schema.add_reader(fresh, source).unwrap();
        let grown: BTreeSet<_> = projection.iter().copied().chain([fresh]).collect();
        assert_engines_agree(&schema, source, &grown, "mutated")?;
        let after_mut = schema.dispatch_cache_stats();
        prop_assert!(
            after_mut.index_misses > after_warm.index_misses,
            "mutation must invalidate the index"
        );
    }
}
