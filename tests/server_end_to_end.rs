//! End-to-end loopback tests for the derivation server: real sockets,
//! real HTTP parsing, the full accept → io pool → admission queue →
//! exec worker pipeline. What the CI smoke job checks shallowly against
//! a running process, these tests check precisely in-process: tenant
//! isolation, version-bump invalidation, concurrency determinism,
//! admission control, and protocol-level rejection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use typederive::server::{http_call, Api, Server, ServerConfig};
use typederive::workload::{fig3_with_z1, server_replay, ReplaySpec};

/// Binds a server on a free loopback port and serves it from a
/// background thread. Returns the server, its `host:port`, the shutdown
/// flag, and the runner handle (join it after tripping the flag).
fn start(config: ServerConfig) -> (Arc<Server>, String, Arc<AtomicBool>, thread::JoinHandle<()>) {
    let server = Arc::new(Server::bind(config).expect("bind a loopback port"));
    let addr = server.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let runner = {
        let (server, shutdown) = (Arc::clone(&server), Arc::clone(&shutdown));
        thread::spawn(move || server.run(&shutdown).expect("server run"))
    };
    (server, addr, shutdown, runner)
}

fn stop(shutdown: &AtomicBool, runner: thread::JoinHandle<()>) {
    shutdown.store(true, Ordering::SeqCst);
    runner.join().expect("runner joins cleanly");
}

const SCHEMA_A: &str = "
type Person { SSN: int  name: str  date_of_birth: int }
type Employee : Person { pay_rate: float  hrs_worked: float }
accessors SSN
accessors date_of_birth
accessors pay_rate
accessors hrs_worked
method age(Person) -> int { return 2026 - get_date_of_birth($0); }
method pay(Employee) -> float { return get_pay_rate($0) * get_hrs_worked($0); }
";

/// Same type names as SCHEMA_A, different shape — what tenant isolation
/// must keep apart.
const SCHEMA_B: &str = "
type Person { SSN: int  badge: int }
type Employee : Person { office: int }
accessors SSN
accessors badge
accessors office
";

fn put_schema(addr: &str, tenant: &str, name: &str, text: &str) -> (u16, String) {
    http_call(
        addr,
        "PUT",
        &format!("/v1/tenants/{tenant}/schemas/{name}"),
        Some(text.as_bytes()),
    )
    .expect("PUT schema")
}

fn project_body(tenant: &str, schema: &str, ty: &str, attrs: &[&str]) -> String {
    let attrs = attrs
        .iter()
        .map(|a| format!("\"{a}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"tenant\": \"{tenant}\", \"schema\": \"{schema}\", \"type\": \"{ty}\", \"attrs\": [{attrs}]}}"
    )
}

#[test]
fn tenants_with_the_same_schema_name_stay_isolated() {
    let (_server, addr, shutdown, runner) = start(ServerConfig::default());

    let (status, _) = put_schema(&addr, "acme", "hr", SCHEMA_A);
    assert_eq!(status, 201);
    let (status, _) = put_schema(&addr, "globex", "hr", SCHEMA_B);
    assert_eq!(status, 201);

    // The same request body (modulo tenant) hits the same schema *name*
    // but must answer from each tenant's own registration.
    let (sa, ba) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("acme", "hr", "Employee", &["SSN"]).as_bytes()),
    )
    .unwrap();
    let (sb, bb) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("globex", "hr", "Employee", &["SSN"]).as_bytes()),
    )
    .unwrap();
    assert_eq!((sa, sb), (200, 200), "{ba}\n{bb}");
    assert_ne!(ba, bb, "tenant registrations leaked into each other");
    // acme's schema knows pay_rate; globex's does not.
    let (s, _) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("acme", "hr", "Employee", &["pay_rate"]).as_bytes()),
    )
    .unwrap();
    assert_eq!(s, 200);
    let (s, body) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("globex", "hr", "Employee", &["pay_rate"]).as_bytes()),
    )
    .unwrap();
    assert_eq!(s, 400, "{body}");

    stop(&shutdown, runner);
}

#[test]
fn version_bump_replaces_the_registered_schema() {
    let (_server, addr, shutdown, runner) = start(ServerConfig::default());

    let (status, body) = put_schema(&addr, "t", "s", SCHEMA_A);
    assert_eq!(status, 201, "{body}");
    assert!(body.contains("\"version\": 1"), "{body}");

    // Warm the snapshot, then swap the registration.
    let (s, first) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("t", "s", "Employee", &["SSN"]).as_bytes()),
    )
    .unwrap();
    assert_eq!(s, 200, "{first}");

    let (status, body) = put_schema(&addr, "t", "s", SCHEMA_B);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"version\": 2"), "{body}");
    let (_, got) = http_call(&addr, "GET", "/v1/tenants/t/schemas/s", None).unwrap();
    assert!(got.contains("\"version\": 2"), "{got}");
    assert!(got.contains("badge"), "{got}");

    // The old schema's shape is gone: pay_rate now fails, badge works,
    // and the same SSN request answers from the new hierarchy.
    let (s, body) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("t", "s", "Employee", &["pay_rate"]).as_bytes()),
    )
    .unwrap();
    assert_eq!(s, 400, "{body}");
    let (s, body) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("t", "s", "Employee", &["badge"]).as_bytes()),
    )
    .unwrap();
    assert_eq!(s, 200, "{body}");
    let (s, second) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("t", "s", "Employee", &["SSN"]).as_bytes()),
    )
    .unwrap();
    assert_eq!(s, 200);
    assert_ne!(first, second, "v2 must not answer from v1's snapshot");

    stop(&shutdown, runner);
}

#[test]
fn concurrent_mixed_tenant_load_matches_sequential_dispatch() {
    // Sequential ground truth: the same replay, request by request,
    // against a socket-free Api.
    let schema = fig3_with_z1();
    let spec = ReplaySpec {
        tenants: 2,
        requests: 20,
        ..ReplaySpec::default()
    };
    let replay = server_replay(&schema, &spec);
    let api = Api::new();
    for tenant in &replay.tenants {
        let r = api.handle(
            "PUT",
            &format!("/v1/tenants/{tenant}/schemas/{}", replay.schema_name),
            "",
            replay.schema_text.as_bytes(),
        );
        assert_eq!(r.status, 201, "{}", r.body);
    }
    let expected: Vec<(u16, String)> = replay
        .requests
        .iter()
        .map(|r| {
            let resp = api.handle("POST", &r.path, "", r.body.as_bytes());
            (resp.status, resp.body)
        })
        .collect();

    // Live server, every request on its own thread.
    let (_server, addr, shutdown, runner) = start(ServerConfig {
        exec_threads: 4,
        queue_slots: 64,
        ..ServerConfig::default()
    });
    for tenant in &replay.tenants {
        let (status, body) = put_schema(&addr, tenant, &replay.schema_name, &replay.schema_text);
        assert_eq!(status, 201, "{body}");
    }
    let got: Vec<(u16, String)> = thread::scope(|scope| {
        let handles: Vec<_> = replay
            .requests
            .iter()
            .map(|r| {
                let addr = addr.clone();
                scope.spawn(move || {
                    http_call(&addr, "POST", &r.path, Some(r.body.as_bytes()))
                        .expect("replay request")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(got.len(), expected.len());
    for (i, (got, expected)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            got, expected,
            "request #{i} ({}) diverged under concurrency",
            replay.requests[i].path
        );
    }

    stop(&shutdown, runner);
}

#[test]
fn full_tenant_queue_answers_429_with_retry_after() {
    // One exec worker, one queue slot: a slow request occupies the
    // worker, the next occupies the slot, the third must bounce.
    let (_server, addr, shutdown, runner) = start(ServerConfig {
        exec_threads: 1,
        queue_slots: 1,
        ..ServerConfig::default()
    });
    put_schema(&addr, "t", "s", SCHEMA_A);
    let slow = concat!(
        "{\"tenant\": \"t\", \"schema\": \"s\", \"type\": \"Employee\", ",
        "\"attrs\": [\"SSN\"], \"delay_ms\": 600}"
    );

    let first = {
        let (addr, slow) = (addr.clone(), slow);
        thread::spawn(move || http_call(&addr, "POST", "/v1/project", Some(slow.as_bytes())))
    };
    // Let the slow request reach the exec worker before filling the slot.
    thread::sleep(Duration::from_millis(200));
    let second = {
        let (addr, slow) = (addr.clone(), slow);
        thread::spawn(move || http_call(&addr, "POST", "/v1/project", Some(slow.as_bytes())))
    };
    thread::sleep(Duration::from_millis(200));

    // Raw call so the Retry-After header is visible.
    let mut stream = TcpStream::connect(&addr).unwrap();
    let head = format!(
        "POST /v1/project HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        slow.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(slow.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 429 "), "{raw}");
    assert!(raw.contains("Retry-After: 1"), "{raw}");
    assert!(raw.contains("no free queue slots"), "{raw}");

    // A different tenant is not starved by t's overflow.
    put_schema(&addr, "other", "s", SCHEMA_A);
    let (status, body) = http_call(
        &addr,
        "POST",
        "/v1/project",
        Some(project_body("other", "s", "Employee", &["SSN"]).as_bytes()),
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");

    // The occupied worker and the queued request both finish with 200.
    let (s1, b1) = first.join().unwrap().unwrap();
    let (s2, b2) = second.join().unwrap().unwrap();
    assert_eq!((s1, s2), (200, 200), "{b1}\n{b2}");

    stop(&shutdown, runner);
}

#[test]
fn malformed_http_and_oversized_bodies_are_rejected() {
    let (_server, addr, shutdown, runner) = start(ServerConfig {
        max_body: 2048,
        ..ServerConfig::default()
    });

    // Not HTTP at all.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.write_all(b"EHLO example.org\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400 "), "{raw}");

    // A declared body over the limit answers 413 before reading it.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .write_all(
            format!("POST /v1/project HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 999999\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 413 "), "{raw}");

    // An actual oversized body through the client helper.
    let big = "x".repeat(4096);
    let (status, _) = http_call(&addr, "POST", "/v1/project", Some(big.as_bytes())).unwrap();
    assert_eq!(status, 413);

    // Sanity: a well-formed request still answers on the same server.
    let (status, body) = http_call(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    stop(&shutdown, runner);
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let (_server, addr, shutdown, runner) = start(ServerConfig::default());
    put_schema(&addr, "t", "s", SCHEMA_A);

    let slow = {
        let addr = addr.clone();
        thread::spawn(move || {
            let body = "{\"tenant\": \"t\", \"schema\": \"s\", \"type\": \"Employee\", \
                        \"attrs\": [\"SSN\"], \"delay_ms\": 400}";
            http_call(&addr, "POST", "/v1/project", Some(body.as_bytes()))
        })
    };
    // Trip shutdown while the slow request is in flight; the drain must
    // finish it rather than cut the socket.
    thread::sleep(Duration::from_millis(100));
    shutdown.store(true, Ordering::SeqCst);
    runner.join().expect("drain completes");
    let (status, body) = slow.join().unwrap().expect("in-flight request answered");
    assert_eq!(status, 200, "{body}");

    // After the drain the listener is gone.
    thread::sleep(Duration::from_millis(50));
    assert!(http_call(&addr, "GET", "/healthz", None).is_err());
}
