//! # typederive
//!
//! A production-quality Rust implementation of
//!
//! > Rakesh Agrawal and Linda G. DeMichiel,
//! > **"Type Derivation Using the Projection Operation"**,
//! > *Information Systems* 19(1):55–68, 1994.
//!
//! Given an object-oriented type living in a multiple-inheritance
//! hierarchy with multi-method dispatch, the relational projection
//! operator derives a new *view type* carrying a subset of the
//! attributes. This library
//!
//! 1. **infers the view's behavior** — which existing methods remain
//!    applicable, by call-graph analysis with optimistic cycle handling
//!    (`IsApplicable`, §4);
//! 2. **refactors the hierarchy** — splitting each affected type into a
//!    surrogate + residual pair so the view inherits exactly the
//!    projected state (`FactorState`, §5);
//! 3. **relocates behavior** — rewriting applicable method signatures
//!    onto the surrogates and re-typing method bodies, creating extra
//!    surrogates where assignments demand them (`FactorMethods` /
//!    `Augment`, §6);
//!
//! while guaranteeing — and machine-checking — that every pre-existing
//! type keeps exactly its original cumulative state and dispatch
//! behavior.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `td-model` | the §2 object model: schema, hierarchy, CPLs, multi-methods, body IR, dataflow |
//! | [`derive`][mod@derive] | `td-core` | the paper's algorithms + invariant checking + surrogate minimization |
//! | [`analyze`] | `td-analyze` | interprocedural abstract interpretation: monotone framework, semantic footprints, TDL2xx deep lints |
//! | [`driver`] | `td-driver` | parallel batch derivation engine over copy-on-write schema snapshots |
//! | [`server`] | `td-server` | multi-tenant derivation service: hand-rolled HTTP/1.1, tenant schema registry, admission control |
//! | [`store`] | `td-store` | executable OODB substrate: objects, extents, interpreter, view extents |
//! | [`telemetry`] | `td-telemetry` | span tracing, metrics registry, Chrome-trace/JSON/text exporters |
//! | [`algebra`] | `td-algebra` | selection, join, view pipelines (§7 future work) |
//! | [`baselines`] | `td-baselines` | related-work placement strategies + auditor |
//! | [`workload`] | `td-workload` | the paper's figures + seeded generators |
//!
//! ## Quickstart
//!
//! ```
//! use typederive::prelude::*;
//!
//! // Build the paper's Figure 1 schema and populate it.
//! let mut db = Database::new(typederive::workload::fig1());
//! let alice = db.create_named("Employee", &[
//!     ("SSN", Value::Int(12345)),
//!     ("date_of_birth", Value::Int(1990)),
//!     ("pay_rate", Value::Float(55.0)),
//!     ("hrs_worked", Value::Float(38.0)),
//! ]).unwrap();
//!
//! // Derive the paper's §3.1 view: Π_{SSN, date_of_birth, pay_rate}(Employee).
//! let badge = project_named(
//!     db.schema_mut(), "Employee",
//!     &["SSN", "date_of_birth", "pay_rate"],
//!     &ProjectionOptions::default(),
//! ).unwrap();
//! assert!(badge.invariants_ok());
//!
//! // `age` and `promote` survive; `income` (needs hrs_worked) does not.
//! let view = MaterializedView::materialize(&mut db, &badge).unwrap();
//! let v = view.view_of(alice).unwrap();
//! assert_eq!(db.call_named("age", &[Value::Ref(v)]).unwrap(), Value::Int(36));
//! assert!(db.call_named("income", &[Value::Ref(v)]).is_err());
//! // ...and the original employee behaves exactly as before.
//! assert_eq!(db.call_named("income", &[Value::Ref(alice)]).unwrap(),
//!            Value::Float(2090.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use td_algebra as algebra;
pub use td_analyze as analyze;
pub use td_baselines as baselines;
pub use td_core as derive;
pub use td_driver as driver;
pub use td_model as model;
pub use td_server as server;
pub use td_store as store;
pub use td_telemetry as telemetry;
pub use td_workload as workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use td_algebra::{join, select, CmpOp, Pipeline, Predicate};
    pub use td_core::{minimize_surrogates, project, project_named, Derivation, ProjectionOptions};
    pub use td_driver::{BatchDeriver, BatchOutcome, BatchRequest, BatchStats};
    pub use td_model::{CallArg, Schema, SchemaSnapshot, TypeId, ValueType};
    pub use td_store::{Database, MaterializedView, Value, VirtualView};
}
