//! The global metrics registry: named counters, gauges and log₂-bucketed
//! histograms.
//!
//! Metric handles are `Arc`s into a process-wide registry, so hot call
//! sites can resolve a name once and update lock-free afterwards; casual
//! sites just call [`counter`]/[`gauge`]/[`histogram`] per update (one
//! short map lock). Updates are plain relaxed atomics — cross-metric
//! consistency is not promised, totals are.
//!
//! [`snapshot`] freezes everything into a [`MetricsSnapshot`] with stable
//! (sorted) ordering for the text and JSON exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX` (`2^0 ..= 2^63`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` samples (durations, sizes).
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. Coarse, allocation-free, and enough to answer "is
/// this microseconds or milliseconds" — the question the pipeline asks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a sample lands in: 0 for 0, else `floor(log₂ v) + 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, …).
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn freeze(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_lower_bound(i), n))
                })
                .collect(),
        }
    }
}

/// A frozen histogram: `(bucket lower bound, sample count)` pairs for the
/// non-empty buckets, in ascending bound order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    windowed_histograms: Mutex<BTreeMap<String, Arc<crate::window::WindowedHistogram>>>,
    windowed_counters: Mutex<BTreeMap<String, Arc<crate::window::WindowedCounter>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn get_or_insert<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(v) = map.get(name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    map.insert(name.to_string(), Arc::clone(&v));
    v
}

/// The counter named `name`, created on first use.
pub fn counter(name: &str) -> Arc<Counter> {
    get_or_insert(&registry().counters, name)
}

/// The gauge named `name`, created on first use.
pub fn gauge(name: &str) -> Arc<Gauge> {
    get_or_insert(&registry().gauges, name)
}

/// The histogram named `name`, created on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    get_or_insert(&registry().histograms, name)
}

/// The sliding-window histogram named `name`, created on first use.
/// Windowed metrics materialize into [`snapshot_at`] as derived gauges
/// (`{name}/p50`, `/p95`, `/p99`, `/window_count`) so every exporter
/// renders them without knowing windows exist.
pub fn windowed_histogram(name: &str) -> Arc<crate::window::WindowedHistogram> {
    get_or_insert(&registry().windowed_histograms, name)
}

/// The sliding-window counter named `name`, created on first use.
/// Materializes into [`snapshot_at`] as the derived gauge `{name}/60s`.
pub fn windowed_counter(name: &str) -> Arc<crate::window::WindowedCounter> {
    get_or_insert(&registry().windowed_counters, name)
}

/// Marker trait re-exported at the crate root so callers can say
/// "anything in the registry"; today all three metric kinds implement it.
pub trait Reset {
    /// Returns the metric to its zero state.
    fn reset(&self);
}

impl Reset for Counter {
    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Reset for Gauge {
    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Reset for Histogram {
    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Removes every registered metric. Handles held by callers keep working
/// but are no longer visible to [`snapshot`]; a session boundary (a CLI
/// run, a test) starts from a clean registry.
pub fn reset() {
    let r = registry();
    r.counters.lock().unwrap_or_else(|e| e.into_inner()).clear();
    r.gauges.lock().unwrap_or_else(|e| e.into_inner()).clear();
    r.histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    r.windowed_histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
    r.windowed_counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// A point-in-time copy of the whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Freezes the registry.
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect(),
        gauges: r
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect(),
        histograms: r
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(n, h)| (n.clone(), h.freeze()))
            .collect(),
    }
}

/// Freezes the registry *including* the sliding-window metrics,
/// evaluated at the given clock reading ([`crate::now_ns()`] for live
/// use, a synthetic clock under test). Each windowed histogram becomes
/// four derived gauges — `{name}/p50`, `{name}/p95`, `{name}/p99`,
/// `{name}/window_count` — and each windowed counter becomes
/// `{name}/60s`, so the text/JSON/Prometheus exporters render windowed
/// metrics with no special cases.
pub fn snapshot_at(now_ns: u64) -> MetricsSnapshot {
    let mut snap = snapshot();
    let r = registry();
    for (name, w) in r
        .windowed_histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        let s = w.summary_at(now_ns);
        snap.gauges.insert(format!("{name}/p50"), s.p50 as i64);
        snap.gauges.insert(format!("{name}/p95"), s.p95 as i64);
        snap.gauges.insert(format!("{name}/p99"), s.p99 as i64);
        snap.gauges
            .insert(format!("{name}/window_count"), s.count as i64);
    }
    for (name, c) in r
        .windowed_counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
    {
        snap.gauges
            .insert(format!("{name}/60s"), c.total_at(now_ns) as i64);
    }
    snap
}

impl MetricsSnapshot {
    /// True when nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the snapshot as aligned text, one metric per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter   {name} = {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge     {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name}: count {}, sum {}, mean {:.1}",
                h.count,
                h.sum,
                h.mean()
            );
            for &(bound, n) in &h.buckets {
                let _ = writeln!(out, "          ≥{bound}: {n}");
            }
        }
        out
    }

    /// Renders the snapshot as JSON (stable key order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(out, "{sep}\n    {}: {v}", crate::export::json_quote(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (name, v) in &self.gauges {
            let sep = if first { "" } else { "," };
            first = false;
            let _ = write!(out, "{sep}\n    {}: {v}", crate::export::json_quote(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            let sep = if first { "" } else { "," };
            first = false;
            let buckets = h
                .buckets
                .iter()
                .map(|&(bound, n)| format!("[{bound}, {n}]"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [{buckets}]}}",
                crate::export::json_quote(name),
                h.count,
                h.sum
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        crate::tests::GLOBAL_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_gauges_histograms_register_and_snapshot() {
        let _guard = serial();
        reset();
        counter("t/c").add(5);
        counter("t/c").inc();
        gauge("t/g").set(-3);
        gauge("t/g").add(1);
        let h = histogram("t/h");
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let snap = snapshot();
        assert_eq!(snap.counters["t/c"], 6);
        assert_eq!(snap.gauges["t/g"], -2);
        let hs = &snap.histograms["t/h"];
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1011);
        assert_eq!(
            hs.buckets,
            vec![(0, 1), (1, 1), (4, 2), (512, 1)],
            "zeros, exact powers and in-betweens land in the right buckets"
        );
        let text = snap.render_text();
        assert!(text.contains("counter   t/c = 6"), "{text}");
        assert!(text.contains("histogram t/h: count 5"), "{text}");
        let json = snap.render_json();
        assert!(json.contains("\"t/c\": 6"), "{json}");
        assert!(
            json.contains("\"buckets\": [[0, 1], [1, 1], [4, 2], [512, 1]]"),
            "{json}"
        );
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(64), 1 << 63);
        // Every sample lands in the bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v);
            if i < HISTOGRAM_BUCKETS - 1 {
                assert!(v < bucket_lower_bound(i + 1).max(1));
            }
        }
    }

    #[test]
    fn windowed_metrics_materialize_into_snapshot_gauges() {
        let _guard = serial();
        reset();
        let now = 5_000_000_000u64; // second 5
        let w = windowed_histogram("t/win_us");
        for v in [100u64, 100, 100, 5000] {
            w.record_at(v, now);
        }
        windowed_counter("t/win_reqs").add_at(4, now);
        let snap = snapshot_at(now);
        assert_eq!(snap.gauges["t/win_us/p50"], 127);
        assert_eq!(snap.gauges["t/win_us/p99"], 8191);
        assert_eq!(snap.gauges["t/win_us/window_count"], 4);
        assert_eq!(snap.gauges["t/win_reqs/60s"], 4);
        // The plain (instant-free) snapshot stays window-free.
        assert!(snapshot().gauges.is_empty());
        // The whole window ages out together.
        let later = snapshot_at(now + 61 * 1_000_000_000);
        assert_eq!(later.gauges["t/win_us/window_count"], 0);
        assert_eq!(later.gauges["t/win_reqs/60s"], 0);
        reset();
        assert!(snapshot_at(now).is_empty(), "reset clears windowed maps");
    }

    #[test]
    fn per_metric_reset_zeroes_in_place() {
        let _guard = serial();
        reset();
        let c = counter("t/reset");
        c.add(9);
        Reset::reset(c.as_ref());
        assert_eq!(c.get(), 0);
        let h = histogram("t/reset_h");
        h.record(42);
        Reset::reset(h.as_ref());
        assert_eq!(h.count(), 0);
        assert!(h.freeze().buckets.is_empty());
        reset();
    }
}
