//! Exporters: Chrome trace-event JSON (Perfetto-loadable), a round-trip
//! parser for it, and a flat text summary.
//!
//! The trace writer emits the "JSON Array Format" variant of the Chrome
//! trace-event spec — an object with a `traceEvents` array of complete
//! (`"ph": "X"`) events. Timestamps are microseconds with three decimal
//! places, which is nanosecond-exact, so [`parse_chrome_trace`] recovers
//! the original `u64` nanosecond values and round-trip tests can compare
//! spans field-for-field. The parser is a small hand-rolled JSON reader
//! (same policy as `crates/bench/src/report.rs`): the container resolves
//! no crates registry, so no serde.

use crate::metrics::MetricsSnapshot;
use crate::span::{ArgValue, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quotes `s` as a JSON string literal, escaping quotes, backslashes and
/// control characters (schema-derived span names are attacker^W
/// user-controlled: type names, request descriptions, file paths).
pub(crate) fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Maps a registry metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): path separators and anything else
/// illegal collapse to `_`, and a leading digit gets a `_` prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => out.push(c),
            _ => out.push('_'),
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` header per metric, counters and gauges
/// as plain samples, histograms as cumulative `le`-bucketed series with
/// `_sum` and `_count`.
///
/// The registry's log₂ buckets translate exactly: samples are integral,
/// so the bucket covering `[2^(i-1), 2^i)` is the cumulative series point
/// `le="2^i - 1"`, the zero bucket is `le="0"`, and `le="+Inf"` closes
/// the series with the total count. Registry names like
/// `server/latency_us/project` become `server_latency_us_project`.
pub fn render_prometheus(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &metrics.counters {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, v) in &metrics.gauges {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (name, h) in &metrics.histograms {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for &(lower, n) in &h.buckets {
            cumulative += n;
            let le = if lower == 0 {
                0
            } else {
                lower.saturating_mul(2).saturating_sub(1)
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

fn write_args(out: &mut String, event: &SpanEvent) {
    out.push_str("\"args\":{");
    let mut first = true;
    for (key, value) in &event.args {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:", json_quote(key));
        match value {
            ArgValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            ArgValue::Str(s) => out.push_str(&json_quote(s)),
        }
    }
    out.push('}');
}

/// Renders drained span events as Chrome trace-event JSON. Load the
/// result in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},",
            json_quote(&event.name),
            json_quote(event.cat),
            event.start_ns / 1_000,
            event.start_ns % 1_000,
            event.dur_ns / 1_000,
            event.dur_ns % 1_000,
            event.tid,
        );
        write_args(&mut out, event);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// One span read back from a Chrome trace file. Owned mirror of
/// [`SpanEvent`] minus the merge bookkeeping (`depth`, `seq`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceSpan {
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Start in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Thread id.
    pub tid: u64,
    /// Arguments as sorted key → rendered-value pairs.
    pub args: BTreeMap<String, String>,
}

// --- minimal JSON reader -------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through intact: take
                    // the whole next char from the source slice.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn micros_to_ns(us: f64) -> u64 {
    (us * 1_000.0).round() as u64
}

/// Parses a Chrome trace-event JSON document (the object-with-
/// `traceEvents` form [`chrome_trace`] writes, or a bare event array)
/// back into spans. Non-complete events (`ph` ≠ `"X"`) are skipped.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceSpan>, String> {
    let doc = Reader::new(text).value()?;
    let events = match &doc {
        Json::Arr(items) => items,
        Json::Obj(_) => match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            _ => return Err("missing traceEvents array".to_string()),
        },
        _ => return Err("trace is neither an object nor an array".to_string()),
    };
    let mut spans = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let field = |name: &str| -> Result<&Json, String> {
            event
                .get(name)
                .ok_or_else(|| format!("event {i}: missing field '{name}'"))
        };
        let num = |name: &str| -> Result<f64, String> {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("event {i}: field '{name}' is not a number"))
        };
        let mut args = BTreeMap::new();
        if let Some(Json::Obj(fields)) = event.get("args") {
            for (key, value) in fields {
                let rendered = match value {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => {
                        if n.fract() == 0.0 {
                            format!("{}", *n as i64)
                        } else {
                            format!("{n}")
                        }
                    }
                    Json::Bool(b) => b.to_string(),
                    Json::Null => "null".to_string(),
                    _ => return Err(format!("event {i}: nested arg '{key}' unsupported")),
                };
                args.insert(key.clone(), rendered);
            }
        }
        spans.push(TraceSpan {
            cat: field("cat")?
                .as_str()
                .ok_or_else(|| format!("event {i}: 'cat' is not a string"))?
                .to_string(),
            name: field("name")?
                .as_str()
                .ok_or_else(|| format!("event {i}: 'name' is not a string"))?
                .to_string(),
            start_ns: micros_to_ns(num("ts")?),
            dur_ns: micros_to_ns(num("dur")?),
            tid: num("tid")? as u64,
            args,
        });
    }
    Ok(spans)
}

// --- text summary --------------------------------------------------------

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a flat text summary: spans aggregated by `(category, name)`
/// with count / total / mean / min / max, followed by the metrics
/// snapshot (when non-empty). This is what `tdv stats` and `--metrics`
/// print.
pub fn render_summary(events: &[SpanEvent], metrics: &MetricsSnapshot) -> String {
    #[derive(Default)]
    struct Agg {
        count: u64,
        total: u64,
        min: u64,
        max: u64,
    }
    let mut groups: BTreeMap<(&str, &str), Agg> = BTreeMap::new();
    for event in events {
        let agg = groups.entry((event.cat, &event.name)).or_default();
        if agg.count == 0 {
            agg.min = event.dur_ns;
        }
        agg.count += 1;
        agg.total += event.dur_ns;
        agg.min = agg.min.min(event.dur_ns);
        agg.max = agg.max.max(event.dur_ns);
    }
    let mut out = String::new();
    if groups.is_empty() {
        out.push_str("no spans recorded\n");
    } else {
        let name_width = groups
            .keys()
            .map(|(cat, name)| cat.len() + 1 + name.len())
            .max()
            .unwrap_or(0)
            .max("span".len());
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}",
            "span", "count", "total", "mean", "min", "max"
        );
        for ((cat, name), agg) in &groups {
            let _ = writeln!(
                out,
                "{:<name_width$}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}",
                format!("{cat}/{name}"),
                agg.count,
                format_ns(agg.total),
                format_ns(agg.total / agg.count),
                format_ns(agg.min),
                format_ns(agg.max),
            );
        }
    }
    if !metrics.is_empty() {
        out.push('\n');
        out.push_str(&metrics.render_text());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn event(name: &str, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            cat: "test",
            name: Cow::Owned(name.to_string()),
            start_ns,
            dur_ns,
            depth: 0,
            tid: 1,
            seq: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn chrome_trace_round_trips_ns_exact() {
        let mut e = event("stage", 1_234_567, 89_012);
        e.args = vec![
            ("idx", ArgValue::Int(4)),
            ("desc", ArgValue::Str("T attrs a,b".to_string())),
        ];
        let trace = chrome_trace(&[e]);
        let spans = parse_chrome_trace(&trace).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "stage");
        assert_eq!(spans[0].cat, "test");
        assert_eq!(spans[0].start_ns, 1_234_567);
        assert_eq!(spans[0].dur_ns, 89_012);
        assert_eq!(spans[0].tid, 1);
        assert_eq!(spans[0].args["idx"], "4");
        assert_eq!(spans[0].args["desc"], "T attrs a,b");
    }

    #[test]
    fn json_quote_escapes_hostile_names() {
        assert_eq!(json_quote(r#"a"b"#), r#""a\"b""#);
        assert_eq!(json_quote(r"a\b"), r#""a\\b""#);
        assert_eq!(json_quote("a\nb\tc"), r#""a\nb\tc""#);
        assert_eq!(json_quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_quote("éπ"), "\"éπ\"");
    }

    #[test]
    fn hostile_span_names_survive_the_round_trip() {
        for name in [
            "quote\"backslash\\newline\n",
            "tab\tret\r",
            "ctrl\u{1}\u{1f}",
            "unicode éπ→",
        ] {
            let trace = chrome_trace(&[event(name, 0, 1)]);
            let spans = parse_chrome_trace(&trace).unwrap();
            assert_eq!(spans[0].name, name, "trace: {trace}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"other\": 1}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
    }

    #[test]
    fn parser_accepts_bare_arrays_and_skips_non_complete_events() {
        let text = r#"[
            {"name":"m","cat":"c","ph":"M","ts":0,"dur":0,"pid":1,"tid":1},
            {"name":"x","cat":"c","ph":"X","ts":1.5,"dur":2.25,"pid":1,"tid":7,"args":{}}
        ]"#;
        let spans = parse_chrome_trace(text).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start_ns, 1_500);
        assert_eq!(spans[0].dur_ns, 2_250);
        assert_eq!(spans[0].tid, 7);
    }

    #[test]
    fn summary_aggregates_and_formats_units() {
        let events = vec![
            event("fast", 0, 500),
            event("fast", 10, 1_500),
            event("slow", 20, 2_000_000_000),
        ];
        let summary = render_summary(&events, &MetricsSnapshot::default());
        assert!(summary.contains("test/fast"), "{summary}");
        assert!(summary.contains("2.00s"), "{summary}");
        assert!(summary.contains("500ns"), "{summary}");
        assert!(
            summary.contains("1.5µs") || summary.contains("1.0µs"),
            "{summary}"
        );
        let empty = render_summary(&[], &MetricsSnapshot::default());
        assert_eq!(empty, "no spans recorded\n");
    }

    #[test]
    fn prometheus_exposition_renders_all_metric_kinds() {
        use crate::metrics::HistogramSnapshot;
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("server/requests/project".into(), 7);
        snap.gauges.insert("server/queue_depth".into(), -2);
        snap.histograms.insert(
            "server/latency_us/project".into(),
            HistogramSnapshot {
                count: 4,
                sum: 1041,
                buckets: vec![(0, 1), (4, 2), (1024, 1)],
            },
        );
        let text = render_prometheus(&snap);
        assert!(
            text.contains("# TYPE server_requests_project counter\nserver_requests_project 7\n"),
            "{text}"
        );
        assert!(text.contains("server_queue_depth -2"), "{text}");
        // Buckets are cumulative with exact integral upper bounds.
        assert!(
            text.contains("server_latency_us_project_bucket{le=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("server_latency_us_project_bucket{le=\"7\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("server_latency_us_project_bucket{le=\"2047\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("server_latency_us_project_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("server_latency_us_project_sum 1041"),
            "{text}"
        );
        assert!(text.contains("server_latency_us_project_count 4"), "{text}");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("a/b-c.d"), "a_b_c_d");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name(""), "_");
        assert_eq!(prometheus_name("ok_name:unit"), "ok_name:unit");
    }
}
