//! Request-scoped trace correlation.
//!
//! A [`TraceId`] is a 128-bit identifier shaped like a W3C trace-context
//! trace id: 32 lowercase hex digits, never all-zero. The server assigns
//! one per request (or adopts the caller's via a `traceparent` header),
//! and [`trace_scope`] installs it as the thread's *current trace* for
//! the duration of a scope. While a current trace is set, every span
//! pushed on that thread is stamped with a `trace` argument, so a
//! drained Chrome trace — or a targeted [`crate::span::events_for_trace`]
//! scan — groups one request's spans end-to-end without any of the
//! instrumentation sites in `td-core`/`td-lint`/`td-analyze` knowing
//! traces exist.
//!
//! Batch items derive per-item ids with [`TraceId::child`], which keeps
//! the parent's high 64 bits (the first 16 hex digits), so a prefix
//! match recovers a whole fan-out from its root id.

use std::cell::Cell;
use std::collections::hash_map::RandomState;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A 128-bit, non-zero request trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

/// The 64-bit finalizer from splitmix64 — a cheap, well-distributed
/// mixer, the standard seed-expansion choice for non-cryptographic ids.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceId {
    /// Generates a fresh process-unique id. Entropy comes from std's
    /// per-process randomized hasher keys (the only randomness source
    /// available without dependencies), mixed with the monotonic clock
    /// and a process-wide counter so two calls can never collide.
    pub fn generate() -> TraceId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            let mut h = RandomState::new().build_hasher();
            h.write_u64(u64::from(std::process::id()));
            h.finish()
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(seed ^ splitmix64(n));
        let lo = splitmix64(hi ^ crate::now_ns());
        TraceId::non_zero((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Derives the deterministic id for child `index` of this trace
    /// (batch fan-out items). The high 64 bits — the first 16 hex digits
    /// — are inherited, so children share a greppable prefix with their
    /// parent; the low 64 bits are remixed per index.
    pub fn child(self, index: usize) -> TraceId {
        let hi = (self.0 >> 64) as u64;
        let lo = splitmix64(self.0 as u64 ^ splitmix64(index as u64 + 1));
        TraceId::non_zero((u128::from(hi) << 64) | u128::from(lo))
    }

    fn non_zero(v: u128) -> TraceId {
        TraceId(if v == 0 { 1 } else { v })
    }

    /// Parses a bare 32-hex-digit trace id (the all-zero id is invalid).
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16)
            .ok()
            .filter(|&v| v != 0)
            .map(TraceId)
    }

    /// Parses either a bare 32-hex id or a full `traceparent` header
    /// value (`00-<32 hex>-<16 hex>-<2 hex>`). Returns `None` for
    /// malformed input — callers fall back to generating a fresh id.
    pub fn parse(s: &str) -> Option<TraceId> {
        let s = s.trim();
        TraceId::parse_hex(s).or_else(|| TraceId::from_traceparent(s))
    }

    /// Parses a `traceparent` header value.
    pub fn from_traceparent(header: &str) -> Option<TraceId> {
        let mut parts = header.trim().split('-');
        let version = parts.next()?;
        let trace = parts.next()?;
        let parent = parts.next()?;
        let _flags = parts.next()?;
        let hex = |s: &str, len: usize| s.len() == len && s.bytes().all(|b| b.is_ascii_hexdigit());
        // Version 0xff is reserved-invalid in the trace-context spec.
        if !hex(version, 2) || version.eq_ignore_ascii_case("ff") || !hex(parent, 16) {
            return None;
        }
        TraceId::parse_hex(trace)
    }

    /// Renders the id as a `traceparent` header value. The parent-id
    /// field is derived from the trace id (this service keeps one span
    /// id per request); the `01` flags byte marks the trace sampled.
    pub fn traceparent(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-01",
            self.0,
            splitmix64(self.0 as u64) | 1
        )
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceId>> = const { Cell::new(None) };
}

/// The thread's current trace id, if a [`trace_scope`] is active.
pub fn current_trace() -> Option<TraceId> {
    CURRENT.with(|c| c.get())
}

/// An active trace scope. Dropping it restores the previously current
/// trace (scopes nest).
#[must_use = "a trace scope correlates spans for as long as it lives; dropping it immediately correlates nothing"]
pub struct TraceScope {
    previous: Option<TraceId>,
}

/// Installs `id` as the thread's current trace until the returned guard
/// drops. Every span completed on this thread while the scope is active
/// carries a `trace` argument with the id's 32-hex form.
pub fn trace_scope(id: TraceId) -> TraceScope {
    TraceScope {
        previous: CURRENT.with(|c| c.replace(Some(id))),
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_unique_and_roundtrip_as_hex() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let id = TraceId::generate();
            assert_ne!(id.0, 0);
            assert!(seen.insert(id), "duplicate generated id {id}");
            let hex = id.to_string();
            assert_eq!(hex.len(), 32);
            assert_eq!(TraceId::parse_hex(&hex), Some(id));
        }
    }

    #[test]
    fn traceparent_roundtrips_and_rejects_malformed() {
        let id = TraceId(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        let header = id.traceparent();
        assert_eq!(TraceId::from_traceparent(&header), Some(id));
        assert_eq!(TraceId::parse(&header), Some(id));
        assert_eq!(TraceId::parse(&id.to_string()), Some(id));
        for bad in [
            "",
            "00",
            "zz-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
            "ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
            "00-00000000000000000000000000000000-0123456789abcdef-01",
            "00-0123456789abcdef-0123456789abcdef-01",
            "00-0123456789abcdef0123456789abcdef-01",
            "not a trace id at all",
        ] {
            assert_eq!(TraceId::parse(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn children_share_the_parent_prefix_and_differ_per_index() {
        let parent = TraceId::generate();
        let prefix = &parent.to_string()[..16];
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            let child = parent.child(i);
            assert_eq!(parent.child(i), child, "child derivation is deterministic");
            assert!(child.to_string().starts_with(prefix));
            assert!(seen.insert(child), "children collide at index {i}");
        }
    }

    #[test]
    fn trace_scopes_nest_and_restore() {
        assert_eq!(current_trace(), None);
        let a = TraceId::generate();
        let b = TraceId::generate();
        {
            let _outer = trace_scope(a);
            assert_eq!(current_trace(), Some(a));
            {
                let _inner = trace_scope(b);
                assert_eq!(current_trace(), Some(b));
            }
            assert_eq!(current_trace(), Some(a));
        }
        assert_eq!(current_trace(), None);
    }
}
