//! Sliding-window metrics: a 60-second ring of one-second buckets.
//!
//! The registry's plain [`crate::metrics::Histogram`] is cumulative since
//! boot — good for totals, useless for "p99 over the last minute" on a
//! long-running server. A [`WindowedHistogram`] keeps
//! [`WINDOW_SECONDS`] one-second slots, each a log₂ bucket array tagged
//! with the epoch-second it covers; recording overwrites the slot whose
//! tag has fallen out of the window, and summarising merges only the
//! still-fresh slots. A [`WindowedCounter`] is the same ring holding one
//! sum per second (windowed request / error rates).
//!
//! Every entry point takes the clock as an explicit `now_ns` argument
//! (the caller passes [`crate::now_ns()`]), which makes window-boundary
//! behaviour deterministic under test: the boundary tests in
//! `tests/observability.rs` drive synthetic clocks through slot reuse
//! and expiry without sleeping.

use crate::metrics::{bucket_index, HISTOGRAM_BUCKETS};
use std::sync::Mutex;

/// Width of the sliding window, in one-second slots.
pub const WINDOW_SECONDS: u64 = 60;

const NS_PER_SECOND: u64 = 1_000_000_000;

/// The tag value of a slot that has never been written. `u64::MAX` can
/// never be a live epoch-second (the process would have to run for 584
/// billion years), so it doubles as "empty".
const EMPTY: u64 = u64::MAX;

struct HistogramSlot {
    /// Epoch-second this slot covers, or [`EMPTY`].
    second: u64,
    buckets: [u32; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

/// A sliding-window log₂ histogram (see module docs).
pub struct WindowedHistogram {
    slots: Mutex<Vec<HistogramSlot>>,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram {
            slots: Mutex::new(
                (0..WINDOW_SECONDS)
                    .map(|_| HistogramSlot {
                        second: EMPTY,
                        buckets: [0; HISTOGRAM_BUCKETS],
                        count: 0,
                        sum: 0,
                    })
                    .collect(),
            ),
        }
    }
}

/// Quantile summary of one window: sample count plus conservative
/// (bucket-upper-bound) p50/p95/p99.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSummary {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Median, reported as its bucket's inclusive upper bound.
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// The inclusive upper bound of log₂ bucket `i`: 0 for the zero bucket,
/// `2^i − 1` otherwise (`u64::MAX` for the last).
fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= 64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl WindowedHistogram {
    /// Records one sample at the given clock reading.
    pub fn record_at(&self, value: u64, now_ns: u64) {
        let second = now_ns / NS_PER_SECOND;
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let slot = &mut slots[(second % WINDOW_SECONDS) as usize];
        if slot.second != second {
            slot.second = second;
            slot.buckets = [0; HISTOGRAM_BUCKETS];
            slot.count = 0;
            slot.sum = 0;
        }
        slot.buckets[bucket_index(value)] += 1;
        slot.count += 1;
        slot.sum = slot.sum.wrapping_add(value);
    }

    /// Merges the slots still inside the window ending at `now_ns`.
    fn merged(&self, now_ns: u64) -> ([u64; HISTOGRAM_BUCKETS], u64) {
        let second = now_ns / NS_PER_SECOND;
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut count = 0u64;
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        for slot in slots.iter() {
            // A slot is live when its second is within the last
            // WINDOW_SECONDS (clock-skewed "future" slots count too —
            // they can only exist under synthetic test clocks).
            if slot.second == EMPTY || second.saturating_sub(slot.second) >= WINDOW_SECONDS {
                continue;
            }
            for (total, &n) in buckets.iter_mut().zip(slot.buckets.iter()) {
                *total += u64::from(n);
            }
            count += slot.count;
        }
        (buckets, count)
    }

    /// Windowed quantile summary at the given clock reading. Quantiles
    /// are the inclusive upper bound of the bucket containing the
    /// rank-⌈q·count⌉ sample — a deterministic over-estimate by at most
    /// one power of two, and 0 when the window is empty.
    pub fn summary_at(&self, now_ns: u64) -> WindowSummary {
        let (buckets, count) = self.merged(now_ns);
        let quantile = |q_num: u64, q_den: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = (count * q_num).div_ceil(q_den).max(1);
            let mut cumulative = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                cumulative += n;
                if cumulative >= rank {
                    return bucket_upper_bound(i);
                }
            }
            bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
        };
        WindowSummary {
            count,
            p50: quantile(1, 2),
            p95: quantile(19, 20),
            p99: quantile(99, 100),
        }
    }

    /// Share of windowed samples whose log₂ bucket lies strictly above
    /// the bucket containing `threshold` — i.e. samples provably over
    /// the threshold at bucket granularity. 0.0 when the window is
    /// empty. This is the burn-rate numerator for an SLO latency
    /// objective.
    pub fn share_over_at(&self, threshold: u64, now_ns: u64) -> f64 {
        let (buckets, count) = self.merged(now_ns);
        if count == 0 {
            return 0.0;
        }
        let limit = bucket_index(threshold);
        let over: u64 = buckets.iter().skip(limit + 1).sum();
        over as f64 / count as f64
    }
}

struct CounterSlot {
    second: u64,
    value: u64,
}

/// A sliding-window counter: the sum of additions over the last
/// [`WINDOW_SECONDS`] seconds.
pub struct WindowedCounter {
    slots: Mutex<Vec<CounterSlot>>,
}

impl Default for WindowedCounter {
    fn default() -> Self {
        WindowedCounter {
            slots: Mutex::new(
                (0..WINDOW_SECONDS)
                    .map(|_| CounterSlot {
                        second: EMPTY,
                        value: 0,
                    })
                    .collect(),
            ),
        }
    }
}

impl WindowedCounter {
    /// Adds `n` at the given clock reading.
    pub fn add_at(&self, n: u64, now_ns: u64) {
        let second = now_ns / NS_PER_SECOND;
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        let slot = &mut slots[(second % WINDOW_SECONDS) as usize];
        if slot.second != second {
            slot.second = second;
            slot.value = 0;
        }
        slot.value += n;
    }

    /// Sum over the window ending at the given clock reading.
    pub fn total_at(&self, now_ns: u64) -> u64 {
        let second = now_ns / NS_PER_SECOND;
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots
            .iter()
            .filter(|s| s.second != EMPTY && second.saturating_sub(s.second) < WINDOW_SECONDS)
            .map(|s| s.value)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = NS_PER_SECOND;

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let w = WindowedHistogram::default();
        // 90 fast samples (≤ 127 µs bucket), 10 slow (≤ 8191).
        for _ in 0..90 {
            w.record_at(100, 5 * S);
        }
        for _ in 0..10 {
            w.record_at(5000, 5 * S);
        }
        let s = w.summary_at(5 * S);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 127, "median lands in [64,128)");
        assert_eq!(s.p95, 8191, "rank 95 lands in [4096,8192)");
        assert_eq!(s.p99, 8191);
        assert_eq!(w.summary_at(5 * S), s, "summaries are deterministic");
    }

    #[test]
    fn samples_expire_exactly_at_the_window_boundary() {
        let w = WindowedHistogram::default();
        w.record_at(100, 10 * S);
        // Still visible 59 seconds later…
        assert_eq!(w.summary_at((10 + 59) * S).count, 1);
        // …gone at exactly +60, even with no intervening writes.
        assert_eq!(w.summary_at((10 + 60) * S).count, 0);
        assert_eq!(w.summary_at((10 + 60) * S).p99, 0);
    }

    #[test]
    fn slot_reuse_discards_the_stale_second() {
        let w = WindowedHistogram::default();
        for _ in 0..5 {
            w.record_at(100, 3 * S);
        }
        // 63 seconds later the ring wraps onto the same slot (3 % 60 ==
        // 63 % 60); the stale five must not leak into the new second.
        w.record_at(200, 63 * S);
        let s = w.summary_at(63 * S);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50, 255);
    }

    #[test]
    fn sub_second_boundaries_share_a_slot() {
        let w = WindowedHistogram::default();
        w.record_at(1, 7 * S);
        w.record_at(1, 7 * S + NS_PER_SECOND - 1);
        w.record_at(1, 8 * S);
        // 7.000 and 7.999 share the second-7 slot; 8.000 starts a new one.
        assert_eq!(w.summary_at(8 * S).count, 3);
        assert_eq!(w.summary_at((7 + 60) * S).count, 1, "second 7 expired");
    }

    #[test]
    fn share_over_counts_strictly_higher_buckets() {
        let w = WindowedHistogram::default();
        for _ in 0..3 {
            w.record_at(100, S); // bucket [64,128)
        }
        w.record_at(5000, S); // bucket [4096,8192)
                              // Threshold 150 shares bucket [128,256): the 100s sit below it,
                              // the 5000 above.
        assert_eq!(w.share_over_at(150, S), 0.25);
        // Threshold inside the samples' own bucket → they don't count.
        assert_eq!(w.share_over_at(100, S), 0.25);
        assert_eq!(w.share_over_at(10_000, S), 0.0);
        let empty = WindowedHistogram::default();
        assert_eq!(empty.share_over_at(0, S), 0.0);
    }

    #[test]
    fn windowed_counter_sums_and_expires() {
        let c = WindowedCounter::default();
        c.add_at(2, 10 * S);
        c.add_at(3, 10 * S);
        c.add_at(5, 40 * S);
        assert_eq!(c.total_at(40 * S), 10);
        assert_eq!(c.total_at(69 * S), 10, "second 10 still inside at +59");
        assert_eq!(c.total_at(70 * S), 5, "second 10 expired at +60");
        assert_eq!(c.total_at(100 * S), 0);
    }
}
