//! # td-telemetry — unified tracing and metrics for the derivation pipeline
//!
//! The pipeline grew four disjoint, hand-plumbed stat structs
//! (`StageTimings`, `DispatchCacheStats`, `BatchStats`, lint counters)
//! and no way to see *where time goes inside one request*. This crate is
//! the shared observability substrate they all feed into:
//!
//! * **[`span()`]s** — RAII guards pushing completed events onto
//!   thread-local ring buffers, timestamped against one process-wide
//!   monotonic epoch. A span records its category, name, wall-clock
//!   window, nesting depth, logical thread id and a few key/value args.
//! * **[`metrics`]** — a global registry of named counters, gauges and
//!   log₂-bucketed histograms, snapshotted on demand; plus sliding
//!   60-second [`window`] histograms/counters for tail latency over the
//!   last minute, materialized as derived gauges by
//!   [`metrics::snapshot_at`].
//! * **[`trace`]** — request-scoped correlation: a [`TraceId`] installed
//!   with [`trace_scope`] stamps every span completed on that thread, so
//!   one request's spans group end-to-end across the pipeline and
//!   [`events_for_trace`] can lift them out non-destructively.
//! * **exporters** — a flat text summary ([`render_summary`]), metrics
//!   JSON ([`MetricsSnapshot::render_json`]), and the Chrome trace-event
//!   format ([`chrome_trace`]) loadable in Perfetto / `chrome://tracing`,
//!   with a parser ([`parse_chrome_trace`]) for round-trip tests.
//!
//! Everything sits behind one runtime switch ([`set_enabled`]): when off
//! (the default), [`span()`] costs a single relaxed atomic load — no clock
//! read, no allocation, no lock — so instrumented hot paths stay within
//! noise of uninstrumented ones (the `telemetry/overhead` bench group and
//! the gated `ratio_telemetry_overhead` repro metric prove it).
//!
//! The crate has no external dependencies, consistent with the
//! repository's vendored-stub policy: the container resolves no crates
//! registry, so the tracing/metrics machinery is hand-rolled for exactly
//! the surface the pipeline needs.
//!
//! ```
//! td_telemetry::set_enabled(true);
//! {
//!     let _outer = td_telemetry::span("demo", "outer");
//!     let _inner = td_telemetry::span("demo", "inner");
//!     td_telemetry::metrics::counter("demo/work").add(3);
//! }
//! let events = td_telemetry::drain();
//! assert_eq!(events.len(), 2);
//! let trace = td_telemetry::chrome_trace(&events);
//! let parsed = td_telemetry::parse_chrome_trace(&trace).unwrap();
//! assert_eq!(parsed.len(), 2);
//! td_telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod export;
pub mod metrics;
pub mod span;
pub mod trace;
pub mod window;

pub use export::{chrome_trace, parse_chrome_trace, render_prometheus, render_summary, TraceSpan};
pub use metrics::{MetricsSnapshot, Reset};
pub use span::{
    drain, dropped_events_total, emit_span, events_for_trace, span, span_with_args, ArgValue,
    SpanEvent, SpanGuard,
};
pub use trace::{current_trace, trace_scope, TraceId, TraceScope};
pub use window::{WindowSummary, WindowedCounter, WindowedHistogram, WINDOW_SECONDS};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when telemetry collection is on. One relaxed atomic load — this
/// is the whole disabled-mode cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off at runtime. Spans opened while
/// enabled still record on drop after a disable (their clock was already
/// read); spans opened while disabled never record.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide monotonic epoch every timestamp is relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch. Monotonic and shared across
/// threads, so per-thread buffers merge on one axis.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Telemetry state is process-global; tests that toggle it serialize
    /// here so `cargo test`'s parallel runner cannot interleave them.
    pub(crate) static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn switch_toggles_and_spans_respect_it() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let _ = drain();
        {
            let _s = span("test", "ignored-while-off");
        }
        assert!(drain().is_empty());

        set_enabled(true);
        assert!(enabled());
        {
            let _s = span("test", "recorded-while-on");
        }
        set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "recorded-while-on");
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
