//! Span tracing: RAII guards, thread-local span stacks, and per-thread
//! event ring buffers with a deterministic global drain.
//!
//! Each thread owns one ring buffer (registered in a process-wide list on
//! first use) plus a depth counter modelling the open-span stack. Opening
//! a span reads the monotonic clock and bumps the depth; dropping the
//! guard pops the stack and pushes one completed [`SpanEvent`] onto the
//! thread's ring. Rings are bounded ([`RING_CAPACITY`] events): when full,
//! the oldest event is dropped and counted, so telemetry can never grow
//! without bound under load.
//!
//! [`drain`] collects and clears every thread's buffer. The result is
//! sorted by `(start_ns, tid, seq)` — a total order — so merging N worker
//! buffers is deterministic: two drains of the same events always produce
//! the same sequence, and a batch trace differs across thread counts only
//! in timestamps and thread ids, never in span content (the determinism
//! test in `tests/telemetry.rs` checks the multiset).

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum buffered events per thread before the oldest are dropped.
pub const RING_CAPACITY: usize = 1 << 16;

/// A small span-argument value: numbers and strings only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An integer argument (request index, counts, ids).
    Int(i64),
    /// A string argument (schema-derived names, descriptions).
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Int(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::Int(v as i64)
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Category (the pipeline layer: `project`, `batch`, `lint`, `cache`).
    pub cat: &'static str,
    /// Span name. `Cow` because most names are static stage labels but
    /// some are schema-derived (type names, request descriptions).
    pub name: Cow<'static, str>,
    /// Start, in nanoseconds since the process epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open time (0 = top of this thread's stack).
    pub depth: u32,
    /// Logical thread id (registration order, process-unique).
    pub tid: u64,
    /// Per-thread monotonic sequence number (merge tiebreaker).
    pub seq: u64,
    /// Key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Ring {
    events: VecDeque<SpanEvent>,
    seq: u64,
    dropped: u64,
}

struct ThreadBuffer {
    tid: u64,
    ring: Mutex<Ring>,
}

/// Cumulative overflow drops since process start. [`drain`] zeroes the
/// per-ring counters behind [`dropped_events`], but a long-running server
/// needs a monotonic total it can export as a metric, so overflow bumps
/// both.
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

impl ThreadBuffer {
    fn push(&self, mut event: SpanEvent) {
        // Stamp the thread's current trace id (if a request scope is
        // active) centrally, so every instrumentation site in the
        // pipeline participates in correlation without knowing about it.
        if let Some(trace) = crate::trace::current_trace() {
            event.args.push(("trace", ArgValue::Str(trace.to_string())));
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        event.tid = self.tid;
        event.seq = ring.seq;
        ring.seq += 1;
        if ring.events.len() >= RING_CAPACITY {
            ring.events.pop_front();
            ring.dropped += 1;
            DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
        }
        ring.events.push_back(event);
    }
}

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuffer>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuffer>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<ThreadBuffer> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let buffer = Arc::new(ThreadBuffer {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ring: Mutex::new(Ring { events: VecDeque::new(), seq: 0, dropped: 0 }),
        });
        buffers()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&buffer));
        buffer
    };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Records a pre-measured complete span. Instrumentation sites that
/// already time a phase for their own accounting (e.g. `StageTimings` in
/// `td_core::project`) call this with the very same measurement, so the
/// emitted span and the derived stat are provably identical.
pub fn emit_span(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !crate::enabled() {
        return;
    }
    let event = SpanEvent {
        cat,
        name: name.into(),
        start_ns,
        dur_ns,
        depth: DEPTH.with(|d| d.get()),
        tid: 0,
        seq: 0,
        args,
    };
    LOCAL.with(|b| b.push(event));
}

/// An open span. Dropping it records the completed event (when telemetry
/// was enabled at open time).
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard(Option<OpenSpan>);

struct OpenSpan {
    cat: &'static str,
    name: Cow<'static, str>,
    start_ns: u64,
    depth: u32,
    args: Vec<(&'static str, ArgValue)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.0.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end = crate::now_ns();
            LOCAL.with(|b| {
                b.push(SpanEvent {
                    cat: open.cat,
                    name: open.name,
                    start_ns: open.start_ns,
                    dur_ns: end.saturating_sub(open.start_ns),
                    depth: open.depth,
                    tid: 0,
                    seq: 0,
                    args: open.args,
                })
            });
        }
    }
}

/// Opens a span. When telemetry is disabled this is one atomic load and
/// a no-op guard.
#[inline]
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    span_slow(cat, name.into(), Vec::new())
}

/// Opens a span carrying key/value arguments.
#[inline]
pub fn span_with_args(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, ArgValue)>,
) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard(None);
    }
    span_slow(cat, name.into(), args)
}

fn span_slow(
    cat: &'static str,
    name: Cow<'static, str>,
    args: Vec<(&'static str, ArgValue)>,
) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard(Some(OpenSpan {
        cat,
        name,
        start_ns: crate::now_ns(),
        depth,
        args,
    }))
}

/// Collects and clears every thread's buffered events, sorted by
/// `(start_ns, tid, seq)` — a deterministic merge of the per-thread
/// rings. Also returns each dropped-event counter to zero.
pub fn drain() -> Vec<SpanEvent> {
    let buffers = buffers().lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    for buffer in buffers.iter() {
        let mut ring = buffer.ring.lock().unwrap_or_else(|e| e.into_inner());
        events.extend(ring.events.drain(..));
        ring.dropped = 0;
    }
    drop(buffers);
    events.sort_by(|a, b| {
        (a.start_ns, a.tid, a.seq)
            .cmp(&(b.start_ns, b.tid, b.seq))
            .then_with(|| a.name.cmp(&b.name))
    });
    events
}

/// Total events dropped to ring-buffer overflow since the last [`drain`].
pub fn dropped_events() -> u64 {
    let buffers = buffers().lock().unwrap_or_else(|e| e.into_inner());
    buffers
        .iter()
        .map(|b| b.ring.lock().unwrap_or_else(|e| e.into_inner()).dropped)
        .sum()
}

/// Total events dropped to ring-buffer overflow since process start.
/// Unlike [`dropped_events`], this never resets — it is the monotonic
/// counter the server exports so 2¹⁶-event overflow is detectable
/// instead of silent.
pub fn dropped_events_total() -> u64 {
    DROPPED_TOTAL.load(Ordering::Relaxed)
}

/// Collects — *without clearing* — every buffered event stamped with the
/// given 32-hex trace id or any id in its *family*: ids sharing the
/// 16-hex prefix that [`crate::trace::TraceId::child`] preserves, so a
/// batch request's fan-out spans travel with their parent whichever id
/// the query names. Sorted like [`drain`]. This powers slow-request
/// capture: the server snapshots one request's spans while leaving the
/// rings intact for a later full drain.
pub fn events_for_trace(trace: &str) -> Vec<SpanEvent> {
    let prefix = &trace[..trace.len().min(16)];
    let matches = |event: &SpanEvent| {
        event.args.iter().any(|(k, v)| {
            *k == "trace"
                && matches!(v, ArgValue::Str(s)
                    if s == trace || (trace.len() == 32 && s.len() == 32 && s.starts_with(prefix)))
        })
    };
    let buffers = buffers().lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    for buffer in buffers.iter() {
        let ring = buffer.ring.lock().unwrap_or_else(|e| e.into_inner());
        events.extend(ring.events.iter().filter(|e| matches(e)).cloned());
    }
    drop(buffers);
    events.sort_by(|a, b| {
        (a.start_ns, a.tid, a.seq)
            .cmp(&(b.start_ns, b.tid, b.seq))
            .then_with(|| a.name.cmp(&b.name))
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        crate::tests::GLOBAL_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        let _guard = serial();
        crate::set_enabled(true);
        let _ = drain();
        {
            let _a = span("test", "outer");
            {
                let _b = span_with_args("test", "inner", vec![("k", ArgValue::Int(7))]);
            }
        }
        crate::set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 2);
        // The inner span completes (and starts) no earlier than the outer
        // opened; sorted output puts outer (earlier start) first.
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].name, "inner");
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[1].args, vec![("k", ArgValue::Int(7))]);
        assert!(events[1].start_ns >= events[0].start_ns);
        assert!(events[0].dur_ns >= events[1].dur_ns);
    }

    #[test]
    fn emit_span_records_the_given_window() {
        let _guard = serial();
        crate::set_enabled(true);
        let _ = drain();
        emit_span("test", "premeasured", 123, 456, vec![("i", 9usize.into())]);
        crate::set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].start_ns, 123);
        assert_eq!(events[0].dur_ns, 456);
        assert_eq!(events[0].args, vec![("i", ArgValue::Int(9))]);
    }

    #[test]
    fn threads_merge_deterministically() {
        let _guard = serial();
        crate::set_enabled(true);
        let _ = drain();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    for i in 0..8 {
                        let _s = span_with_args(
                            "test",
                            format!("worker-span-{i}"),
                            vec![("t", ArgValue::Int(t))],
                        );
                    }
                });
            }
        });
        crate::set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), 32);
        // Deterministic total order: re-sorting never changes it.
        let mut resorted = events.clone();
        resorted.sort_by_key(|e| (e.start_ns, e.tid, e.seq));
        assert_eq!(events, resorted);
        // Distinct threads got distinct tids.
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
        assert_eq!(drain().len(), 0, "drain clears the buffers");
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _guard = serial();
        crate::set_enabled(true);
        let _ = drain();
        let total_before = dropped_events_total();
        for i in 0..(RING_CAPACITY + 10) {
            emit_span("test", "flood", i as u64, 1, Vec::new());
        }
        assert_eq!(dropped_events(), 10);
        crate::set_enabled(false);
        let events = drain();
        assert_eq!(events.len(), RING_CAPACITY);
        // The oldest 10 went overboard.
        assert_eq!(events[0].start_ns, 10);
        assert_eq!(dropped_events(), 0, "drain resets the dropped counter");
        assert_eq!(
            dropped_events_total(),
            total_before + 10,
            "the cumulative counter survives the drain"
        );
    }

    #[test]
    fn trace_scopes_stamp_spans_and_events_for_trace_finds_them() {
        let _guard = serial();
        crate::set_enabled(true);
        let _ = drain();
        let traced = crate::trace::TraceId::generate();
        let other = crate::trace::TraceId::generate();
        {
            let _scope = crate::trace::trace_scope(traced);
            let _s = span("test", "inside-scope");
            emit_span("test", "premeasured-in-scope", 1, 2, Vec::new());
        }
        {
            let _scope = crate::trace::trace_scope(other);
            let _s = span("test", "other-request");
        }
        {
            let _s = span("test", "no-scope");
        }
        // Non-destructive: the targeted scan sees only the traced spans…
        let hex = traced.to_string();
        let hit = events_for_trace(&hex);
        assert_eq!(hit.len(), 2);
        assert!(hit.iter().all(|e| e
            .args
            .iter()
            .any(|(k, v)| *k == "trace" && *v == ArgValue::Str(hex.clone()))));
        // …child spans match by prefix…
        let child_hex = traced.child(3).to_string();
        {
            let _scope = crate::trace::trace_scope(traced.child(3));
            let _s = span("test", "child-span");
        }
        assert_eq!(events_for_trace(&hex).len(), 3);
        // Family matching is symmetric: querying by the child id also
        // recovers the parent's spans (they share the 16-hex prefix).
        assert_eq!(events_for_trace(&child_hex).len(), 3);
        // …and the rings still hold everything for the full drain.
        crate::set_enabled(false);
        let all = drain();
        assert_eq!(all.len(), 5);
        let unstamped = all
            .iter()
            .filter(|e| e.args.iter().all(|(k, _)| *k != "trace"))
            .count();
        assert_eq!(unstamped, 1, "only the scope-less span lacks a trace arg");
    }
}
