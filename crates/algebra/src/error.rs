//! Error type for the algebraic view operations.

use std::fmt;
use td_core::CoreError;
use td_model::{AttrId, ModelError, TypeId};
use td_store::StoreError;

/// Errors raised by selection, join and pipeline evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// An underlying schema operation failed.
    Model(ModelError),
    /// A projection derivation failed.
    Core(CoreError),
    /// An object-store operation failed.
    Store(StoreError),
    /// A predicate references an attribute not available at the source.
    PredicateAttrUnavailable {
        /// The attribute.
        attr: AttrId,
        /// The selection source.
        source: TypeId,
    },
    /// A predicate compares an attribute with a value of the wrong kind.
    PredicateTypeMismatch {
        /// The attribute.
        attr: AttrId,
        /// Human-readable description.
        detail: String,
    },
    /// The two join operands cannot be combined (e.g. joining a type with
    /// itself, or the combined precedence constraints do not linearize).
    BadJoin(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Model(e) => write!(f, "schema error: {e}"),
            AlgebraError::Core(e) => write!(f, "derivation error: {e}"),
            AlgebraError::Store(e) => write!(f, "store error: {e}"),
            AlgebraError::PredicateAttrUnavailable { attr, source } => {
                write!(f, "predicate attribute {attr} is not available at {source}")
            }
            AlgebraError::PredicateTypeMismatch { attr, detail } => {
                write!(f, "predicate on {attr} has wrong type: {detail}")
            }
            AlgebraError::BadJoin(msg) => write!(f, "bad join: {msg}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<ModelError> for AlgebraError {
    fn from(e: ModelError) -> Self {
        AlgebraError::Model(e)
    }
}

impl From<CoreError> for AlgebraError {
    fn from(e: CoreError) -> Self {
        AlgebraError::Core(e)
    }
}

impl From<StoreError> for AlgebraError {
    fn from(e: StoreError) -> Self {
        AlgebraError::Store(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
