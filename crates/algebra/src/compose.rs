//! View composition: views defined over views.
//!
//! The paper's §7 singles out composed views ("particularly when views
//! are defined over views") as the case where empty surrogates
//! proliferate. A [`Pipeline`] applies a sequence of algebraic operations,
//! each over the previous derivation's result type; helpers count empty
//! surrogates so the minimization ablation (experiment COMP) can measure
//! exactly the effect the paper speculates about.

use std::collections::BTreeSet;
use td_core::{minimize_surrogates, project, Derivation, ProjectionOptions};
use td_model::{AttrId, Schema, TypeId};

use crate::error::{AlgebraError, Result};
use crate::select::{select, Predicate, Selection};

/// One step of a view pipeline.
#[derive(Debug, Clone)]
pub enum ViewOp {
    /// Project onto the named attributes.
    Project(Vec<String>),
    /// Select by predicate, naming the view type.
    Select {
        /// Name for the derived selection type.
        name: String,
        /// The predicate.
        predicate: Predicate,
    },
}

/// What one pipeline step produced.
#[derive(Debug, Clone)]
pub enum StepOutcome {
    /// A projection derivation.
    Projected(Box<Derivation>),
    /// A selection view.
    Selected(Selection),
}

impl StepOutcome {
    /// The step's result type (the next step's source).
    pub fn result_type(&self) -> TypeId {
        match self {
            StepOutcome::Projected(d) => d.derived,
            StepOutcome::Selected(s) => s.derived,
        }
    }
}

/// A sequence of view operations applied left to right.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    ops: Vec<ViewOp>,
}

impl Pipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Appends a projection step.
    pub fn project(mut self, attrs: &[&str]) -> Pipeline {
        self.ops.push(ViewOp::Project(
            attrs.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Appends a selection step.
    pub fn select(mut self, name: &str, predicate: Predicate) -> Pipeline {
        self.ops.push(ViewOp::Select {
            name: name.to_string(),
            predicate,
        });
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the pipeline has no steps.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies every step, starting from `source`. Returns the step
    /// outcomes in order; the last one's [`StepOutcome::result_type`] is
    /// the pipeline's view type.
    pub fn apply(
        &self,
        schema: &mut Schema,
        source: TypeId,
        opts: &ProjectionOptions,
    ) -> Result<Vec<StepOutcome>> {
        let mut current = source;
        let mut outcomes = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            let outcome = match op {
                ViewOp::Project(names) => {
                    let projection: BTreeSet<AttrId> = names
                        .iter()
                        .map(|n| schema.attr_id(n).map_err(AlgebraError::from))
                        .collect::<Result<_>>()?;
                    StepOutcome::Projected(Box::new(project(schema, current, &projection, opts)?))
                }
                ViewOp::Select { name, predicate } => {
                    StepOutcome::Selected(select(schema, current, name, predicate.clone())?)
                }
            };
            current = outcome.result_type();
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }
}

/// Counts live surrogate types with empty local state — the §7 metric.
pub fn count_empty_surrogates(schema: &Schema) -> usize {
    schema
        .live_type_ids()
        .filter(|&t| {
            let node = schema.type_(t);
            node.is_surrogate() && node.local_attrs.is_empty()
        })
        .count()
}

/// Runs [`minimize_surrogates`] protecting the given view types, and
/// reports `(empty surrogates before, after, removed)`.
pub fn minimize_pipeline_surrogates(
    schema: &mut Schema,
    protected: &BTreeSet<TypeId>,
) -> Result<(usize, usize, usize)> {
    let before = count_empty_surrogates(schema);
    let outcome = minimize_surrogates(schema, protected).map_err(AlgebraError::Core)?;
    let after = count_empty_surrogates(schema);
    Ok((before, after, outcome.removed.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::CmpOp;
    use td_store::Value;
    use td_workload::figures;

    #[test]
    fn project_then_project_composes() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let pipeline = Pipeline::new()
            .project(&["SSN", "date_of_birth", "pay_rate"])
            .project(&["SSN"]);
        let outcomes = pipeline
            .apply(&mut s, employee, &ProjectionOptions::default())
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        let final_ty = outcomes.last().unwrap().result_type();
        let ssn = s.attr_id("SSN").unwrap();
        assert_eq!(s.cumulative_attrs(final_ty), [ssn].into_iter().collect());
        // Both steps checked their invariants.
        for o in &outcomes {
            if let StepOutcome::Projected(d) = o {
                assert!(d.invariants_ok());
            }
        }
        s.validate().unwrap();
    }

    #[test]
    fn select_over_projection() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let pay = s.attr_id("pay_rate").unwrap();
        let pipeline = Pipeline::new().project(&["SSN", "pay_rate"]).select(
            "CheapBadge",
            Predicate::cmp(pay, CmpOp::Lt, Value::Float(10.0)),
        );
        let outcomes = pipeline
            .apply(&mut s, employee, &ProjectionOptions::default())
            .unwrap();
        let view = outcomes.last().unwrap().result_type();
        // The selection type sits below the projection type.
        let proj_ty = outcomes[0].result_type();
        assert!(s.is_subtype(view, proj_ty));
        assert_eq!(s.cumulative_attrs(view).len(), 2);
    }

    #[test]
    fn views_over_views_accumulate_empty_surrogates_and_minimize() {
        let mut s = figures::fig3();
        let a = s.type_id("A").unwrap();
        // Two stacked projections over the deep Figure 3 hierarchy.
        let pipeline = Pipeline::new()
            .project(&["a2", "e2", "h2"])
            .project(&["h2"]);
        let outcomes = pipeline
            .apply(&mut s, a, &ProjectionOptions::default())
            .unwrap();
        let before = count_empty_surrogates(&s);
        assert!(before > 0, "stacked views must create empty surrogates");
        let protected: BTreeSet<TypeId> = outcomes.iter().map(|o| o.result_type()).collect();
        let (b, after, removed) = minimize_pipeline_surrogates(&mut s, &protected).unwrap();
        assert_eq!(b, before);
        assert!(removed > 0, "minimization must remove some empty surrogate");
        assert_eq!(after, before - removed);
        s.validate().unwrap();
        // The stacked view still exposes exactly {h2}.
        let h2 = s.attr_id("h2").unwrap();
        let final_ty = outcomes.last().unwrap().result_type();
        assert_eq!(s.cumulative_attrs(final_ty), [h2].into_iter().collect());
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let outcomes = Pipeline::new()
            .apply(&mut s, employee, &ProjectionOptions::default())
            .unwrap();
        assert!(outcomes.is_empty());
        assert!(Pipeline::new().is_empty());
    }
}
