//! Join views: `T₁ ⋈ T₂`.
//!
//! At the type level (after Shaw & Zdonik's object-algebra treatment,
//! the paper's reference \[18\]), the join of two types is a type carrying
//! the *union* of their attributes — i.e. a common **subtype** under
//! multiple inheritance. Globally unique attribute names (§2) make the
//! union well-defined without renaming. Methods of both operands apply to
//! the join type by inclusion polymorphism.
//!
//! At the instance level the join is keyed: pairs of source instances
//! agreeing on a key attribute pair produce one joined instance.

use td_model::{AttrId, Schema, TypeId};
use td_store::{Database, ObjId, Value};

use crate::error::{AlgebraError, Result};

/// A derived join view type with its key.
#[derive(Debug, Clone)]
pub struct Join {
    /// The derived join type (subtype of both operands).
    pub derived: TypeId,
    /// Left operand.
    pub left: TypeId,
    /// Right operand.
    pub right: TypeId,
    /// Key attributes: `left.0 = right.1`.
    pub on: (AttrId, AttrId),
}

/// Derives `left ⋈_{lkey = rkey} right` as a view type named `name`.
///
/// Fails when the operands are identical, related by subtyping (the join
/// would be degenerate — use selection instead), the keys are not
/// available at their operands, or the combined precedence constraints
/// do not linearize.
pub fn join(
    schema: &mut Schema,
    left: TypeId,
    right: TypeId,
    name: &str,
    on: (AttrId, AttrId),
) -> Result<Join> {
    if left == right {
        return Err(AlgebraError::BadJoin("operands are the same type".into()));
    }
    if schema.is_subtype(left, right) || schema.is_subtype(right, left) {
        return Err(AlgebraError::BadJoin(
            "operands are related by subtyping; use selection".into(),
        ));
    }
    if !schema.attr_available_at(on.0, left) {
        return Err(AlgebraError::PredicateAttrUnavailable {
            attr: on.0,
            source: left,
        });
    }
    if !schema.attr_available_at(on.1, right) {
        return Err(AlgebraError::PredicateAttrUnavailable {
            attr: on.1,
            source: right,
        });
    }
    let derived = schema.add_type(name, &[left, right])?;
    if schema.cpl(derived).is_err() {
        // The operands' precedence constraints conflict; undo.
        schema.remove_super_edge(derived, left);
        schema.remove_super_edge(derived, right);
        schema
            .retire_type(derived)
            .expect("fresh type with no edges is retirable");
        return Err(AlgebraError::BadJoin(
            "combined precedence constraints do not linearize".into(),
        ));
    }
    Ok(Join {
        derived,
        left,
        right,
        on,
    })
}

impl Join {
    /// The `(left, right)` source pairs currently agreeing on the key.
    /// Null keys never join.
    pub fn matching_pairs(&self, db: &Database) -> Result<Vec<(ObjId, ObjId)>> {
        let mut out = Vec::new();
        let rights = db.deep_extent(self.right);
        for l in db.deep_extent(self.left) {
            let lk = db.get_field(l, self.on.0)?;
            if lk == Value::Null {
                continue;
            }
            for &r in &rights {
                let rk = db.get_field(r, self.on.1)?;
                if lk == rk {
                    out.push((l, r));
                }
            }
        }
        Ok(out)
    }

    /// Materializes the join: one object of the derived type per matching
    /// pair, fields copied left-then-right (left wins on attributes the
    /// operands share through common ancestors). Returns
    /// `(left, right, view)` triples.
    pub fn materialize(&self, db: &mut Database) -> Result<Vec<(ObjId, ObjId, ObjId)>> {
        let pairs = self.matching_pairs(db)?;
        let left_attrs: Vec<AttrId> = db
            .schema()
            .cumulative_attrs(self.left)
            .into_iter()
            .collect();
        let right_attrs: Vec<AttrId> = db
            .schema()
            .cumulative_attrs(self.right)
            .into_iter()
            .collect();
        let mut out = Vec::with_capacity(pairs.len());
        for (l, r) in pairs {
            let mut fields: Vec<(AttrId, Value)> = Vec::new();
            for &a in &right_attrs {
                fields.push((a, db.get_field(r, a)?));
            }
            for &a in &left_attrs {
                // Pushed later; Database::create applies in order, so the
                // left value overwrites a shared attribute.
                fields.push((a, db.get_field(l, a)?));
            }
            let v = db.create(self.derived, fields)?;
            out.push((l, r, v));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::ValueType;

    /// Employee {eid, dept_id} and Department {did, budget}.
    fn setup() -> (Database, TypeId, TypeId, AttrId, AttrId) {
        let mut s = Schema::new();
        let emp = s.add_type("Employee", &[]).unwrap();
        let dept = s.add_type("Department", &[]).unwrap();
        let eid = s.add_attr("eid", ValueType::INT, emp).unwrap();
        let dept_id = s.add_attr("dept_id", ValueType::INT, emp).unwrap();
        let did = s.add_attr("did", ValueType::INT, dept).unwrap();
        let budget = s.add_attr("budget", ValueType::FLOAT, dept).unwrap();
        for a in [eid, dept_id, did, budget] {
            s.add_accessors(a).unwrap();
        }
        let mut db = Database::new(s);
        for (e, d) in [(1, 10), (2, 10), (3, 20)] {
            db.create_named(
                "Employee",
                &[("eid", Value::Int(e)), ("dept_id", Value::Int(d))],
            )
            .unwrap();
        }
        for (d, b) in [(10, 1000.0), (20, 2000.0), (30, 3000.0)] {
            db.create_named(
                "Department",
                &[("did", Value::Int(d)), ("budget", Value::Float(b))],
            )
            .unwrap();
        }
        (db, emp, dept, dept_id, did)
    }

    #[test]
    fn join_type_unites_state_and_behavior() {
        let (mut db, emp, dept, dept_id, did) = setup();
        let j = join(db.schema_mut(), emp, dept, "EmpDept", (dept_id, did)).unwrap();
        let s = db.schema();
        assert!(s.is_subtype(j.derived, emp));
        assert!(s.is_subtype(j.derived, dept));
        assert_eq!(s.cumulative_attrs(j.derived).len(), 4);
        // Accessors of both operands apply to the join type.
        let methods = s.methods_applicable_to_type(j.derived);
        assert_eq!(methods.len(), 8);
    }

    #[test]
    fn materialized_join_matches_keys() {
        let (mut db, emp, dept, dept_id, did) = setup();
        let j = join(db.schema_mut(), emp, dept, "EmpDept", (dept_id, did)).unwrap();
        let triples = j.materialize(&mut db).unwrap();
        // e1,e2 -> d10; e3 -> d20.
        assert_eq!(triples.len(), 3);
        let budget = db.schema().attr_id("budget").unwrap();
        let (_, _, v) = triples[0];
        assert_eq!(db.get_field(v, budget).unwrap(), Value::Float(1000.0));
        // The joined object answers accessors from both sides.
        assert_eq!(
            db.call_named("get_eid", &[Value::Ref(v)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            db.call_named("get_budget", &[Value::Ref(v)]).unwrap(),
            Value::Float(1000.0)
        );
    }

    #[test]
    fn degenerate_joins_rejected() {
        let (mut db, emp, _dept, dept_id, _did) = setup();
        let err = join(db.schema_mut(), emp, emp, "Bad", (dept_id, dept_id)).unwrap_err();
        assert!(matches!(err, AlgebraError::BadJoin(_)));
        let sub = db.schema_mut().add_type("Manager", &[emp]).unwrap();
        let err = join(db.schema_mut(), sub, emp, "Bad2", (dept_id, dept_id)).unwrap_err();
        assert!(matches!(err, AlgebraError::BadJoin(_)));
    }

    #[test]
    fn key_availability_checked() {
        let (mut db, emp, dept, _dept_id, did) = setup();
        // `did` is not available at Employee.
        let err = join(db.schema_mut(), emp, dept, "Bad", (did, did)).unwrap_err();
        assert!(matches!(err, AlgebraError::PredicateAttrUnavailable { .. }));
    }

    #[test]
    fn null_keys_never_join() {
        let (mut db, emp, dept, dept_id, did) = setup();
        db.create_named("Employee", &[("eid", Value::Int(9))])
            .unwrap(); // null dept_id
        let j = join(db.schema_mut(), emp, dept, "EmpDept", (dept_id, did)).unwrap();
        assert_eq!(j.matching_pairs(&db).unwrap().len(), 3);
    }
}
