//! Selection views: `σ_pred(T)`.
//!
//! Selection is the easy algebraic operation for type derivation — the
//! paper picks projection precisely because selection is not: a selection
//! view keeps *all* attributes, so the derived type is simply a direct
//! **subtype** of its source with no local state. Every method applicable
//! to the source is applicable to the view by inclusion polymorphism; no
//! refactoring, factoring or augmentation is needed.
//!
//! The instance-level half filters the source extent by the predicate.

use td_model::{AttrId, Schema, TypeId, ValueType};
use td_store::{Database, ObjId, Value};

use crate::error::{AlgebraError, Result};

/// Comparison operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A selection predicate over a single object's attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (the full view).
    True,
    /// Compare an attribute against a constant.
    Cmp {
        /// The attribute read from the candidate object.
        attr: AttrId,
        /// The comparison.
        op: CmpOp,
        /// The constant operand.
        value: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr op value` leaf constructor.
    pub fn cmp(attr: AttrId, op: CmpOp, value: Value) -> Predicate {
        Predicate::Cmp { attr, op, value }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// All attributes the predicate reads.
    pub fn attrs(&self) -> Vec<AttrId> {
        match self {
            Predicate::True => vec![],
            Predicate::Cmp { attr, .. } => vec![*attr],
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                let mut v = a.attrs();
                v.extend(b.attrs());
                v
            }
            Predicate::Not(a) => a.attrs(),
        }
    }

    /// Evaluates the predicate against a stored object.
    pub fn eval(&self, db: &Database, obj: ObjId) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::Cmp { attr, op, value } => {
                let actual = db.get_field(obj, *attr)?;
                compare(*op, &actual, value)?
            }
            Predicate::And(a, b) => a.eval(db, obj)? && b.eval(db, obj)?,
            Predicate::Or(a, b) => a.eval(db, obj)? || b.eval(db, obj)?,
            Predicate::Not(a) => !a.eval(db, obj)?,
        })
    }
}

fn compare(op: CmpOp, l: &Value, r: &Value) -> Result<bool> {
    use CmpOp::*;
    match op {
        Eq => return Ok(l == r),
        Ne => return Ok(l != r),
        _ => {}
    }
    let ord = match (l, r) {
        (Value::Int(a), Value::Int(b)) => a.partial_cmp(b),
        (Value::Str(a), Value::Str(b)) => a.partial_cmp(b),
        _ => match (l.as_float(), r.as_float()) {
            (Some(a), Some(b)) => a.partial_cmp(&b),
            _ => None,
        },
    };
    let Some(ord) = ord else {
        return Ok(false); // nulls / incomparable kinds never satisfy an order
    };
    Ok(match op {
        Lt => ord.is_lt(),
        Le => ord.is_le(),
        Gt => ord.is_gt(),
        Ge => ord.is_ge(),
        Eq | Ne => unreachable!("handled above"),
    })
}

/// A derived selection view type plus its predicate.
#[derive(Debug, Clone)]
pub struct Selection {
    /// The derived view type (a direct subtype of the source).
    pub derived: TypeId,
    /// The selection source.
    pub source: TypeId,
    /// The predicate.
    pub predicate: Predicate,
}

/// Derives `σ_predicate(source)` as a view type named `name`.
///
/// Validates that every predicate attribute is available at the source
/// and compared against a compatible constant.
pub fn select(
    schema: &mut Schema,
    source: TypeId,
    name: &str,
    predicate: Predicate,
) -> Result<Selection> {
    for attr in predicate.attrs() {
        if !schema.attr_available_at(attr, source) {
            return Err(AlgebraError::PredicateAttrUnavailable { attr, source });
        }
    }
    // Constant kinds must match attribute kinds.
    fn check_kinds(schema: &Schema, p: &Predicate) -> Result<()> {
        match p {
            Predicate::Cmp { attr, value, .. } => {
                let ok = match (schema.attr(*attr).ty, value) {
                    (_, Value::Null) => true,
                    (ValueType::Prim(p), v) => v.prim_type() == Some(p),
                    (ValueType::Object(_), Value::Ref(_)) => true,
                    _ => false,
                };
                if ok {
                    Ok(())
                } else {
                    Err(AlgebraError::PredicateTypeMismatch {
                        attr: *attr,
                        detail: format!(
                            "attribute is {}, constant is {value}",
                            schema.attr(*attr).ty
                        ),
                    })
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                check_kinds(schema, a)?;
                check_kinds(schema, b)
            }
            Predicate::Not(a) => check_kinds(schema, a),
            Predicate::True => Ok(()),
        }
    }
    check_kinds(schema, &predicate)?;

    let derived = schema.add_type(name, &[source])?;
    Ok(Selection {
        derived,
        source,
        predicate,
    })
}

impl Selection {
    /// The source objects currently satisfying the predicate (the view's
    /// virtual extent).
    pub fn filter(&self, db: &Database) -> Result<Vec<ObjId>> {
        let mut out = Vec::new();
        for o in db.deep_extent(self.source) {
            if self.predicate.eval(db, o)? {
                out.push(o);
            }
        }
        Ok(out)
    }

    /// Materializes the view: creates an object of the derived type (full
    /// attribute copy) per qualifying source object. Returns
    /// `(source, view)` pairs.
    pub fn materialize(&self, db: &mut Database) -> Result<Vec<(ObjId, ObjId)>> {
        let qualifying = self.filter(db)?;
        let attrs: Vec<AttrId> = db
            .schema()
            .cumulative_attrs(self.derived)
            .into_iter()
            .collect();
        let mut pairs = Vec::with_capacity(qualifying.len());
        for src in qualifying {
            let fields: Vec<(AttrId, Value)> = attrs
                .iter()
                .map(|&a| Ok((a, db.get_field(src, a)?)))
                .collect::<Result<_>>()?;
            let v = db.create(self.derived, fields)?;
            pairs.push((src, v));
        }
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workload::figures;

    fn db_with_people() -> Database {
        let mut db = Database::new(figures::fig1());
        for (ssn, pay) in [(1, 30.0), (2, 60.0), (3, 90.0)] {
            db.create_named(
                "Employee",
                &[
                    ("SSN", Value::Int(ssn)),
                    ("pay_rate", Value::Float(pay)),
                    ("hrs_worked", Value::Float(10.0)),
                    ("date_of_birth", Value::Int(1990)),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn selection_type_is_subtype_with_full_state() {
        let mut db = db_with_people();
        let employee = db.schema().type_id("Employee").unwrap();
        let pay = db.schema().attr_id("pay_rate").unwrap();
        let sel = select(
            db.schema_mut(),
            employee,
            "HighlyPaid",
            Predicate::cmp(pay, CmpOp::Gt, Value::Float(50.0)),
        )
        .unwrap();
        assert!(db.schema().is_subtype(sel.derived, employee));
        assert_eq!(
            db.schema().cumulative_attrs(sel.derived),
            db.schema().cumulative_attrs(employee)
        );
        // Every Employee method applies to the view type.
        let methods = db.schema().methods_applicable_to_type(sel.derived);
        assert_eq!(
            methods.len(),
            db.schema().methods_applicable_to_type(employee).len()
        );
    }

    #[test]
    fn filter_and_materialize() {
        let mut db = db_with_people();
        let employee = db.schema().type_id("Employee").unwrap();
        let pay = db.schema().attr_id("pay_rate").unwrap();
        let sel = select(
            db.schema_mut(),
            employee,
            "HighlyPaid",
            Predicate::cmp(pay, CmpOp::Gt, Value::Float(50.0)),
        )
        .unwrap();
        assert_eq!(sel.filter(&db).unwrap().len(), 2);
        let pairs = sel.materialize(&mut db).unwrap();
        assert_eq!(pairs.len(), 2);
        // Materialized view objects answer income (they kept all state).
        let (_, v) = pairs[0];
        assert_eq!(
            db.call_named("income", &[Value::Ref(v)]).unwrap(),
            Value::Float(600.0)
        );
    }

    #[test]
    fn compound_predicates() {
        let mut db = db_with_people();
        let employee = db.schema().type_id("Employee").unwrap();
        let pay = db.schema().attr_id("pay_rate").unwrap();
        let ssn = db.schema().attr_id("SSN").unwrap();
        let p = Predicate::cmp(pay, CmpOp::Ge, Value::Float(60.0)).and(Predicate::cmp(
            ssn,
            CmpOp::Ne,
            Value::Int(3),
        ));
        let sel = select(db.schema_mut(), employee, "Mid", p).unwrap();
        assert_eq!(sel.filter(&db).unwrap().len(), 1);
        let neg = Selection {
            predicate: sel.predicate.clone().not(),
            ..sel.clone()
        };
        assert_eq!(neg.filter(&db).unwrap().len(), 2);
    }

    #[test]
    fn predicate_validation() {
        let mut db = db_with_people();
        let person = db.schema().type_id("Person").unwrap();
        let pay = db.schema().attr_id("pay_rate").unwrap();
        // pay_rate is not available at Person.
        let err = select(
            db.schema_mut(),
            person,
            "Bad",
            Predicate::cmp(pay, CmpOp::Gt, Value::Float(1.0)),
        )
        .unwrap_err();
        assert!(matches!(err, AlgebraError::PredicateAttrUnavailable { .. }));
        // Wrong constant kind.
        let employee = db.schema().type_id("Employee").unwrap();
        let err = select(
            db.schema_mut(),
            employee,
            "Bad2",
            Predicate::cmp(pay, CmpOp::Gt, Value::Str("x".into())),
        )
        .unwrap_err();
        assert!(matches!(err, AlgebraError::PredicateTypeMismatch { .. }));
    }

    #[test]
    fn null_never_satisfies_order_comparisons() {
        let mut db = db_with_people();
        let employee = db.schema().type_id("Employee").unwrap();
        let pay = db.schema().attr_id("pay_rate").unwrap();
        // An employee with null pay.
        db.create_named("Employee", &[("SSN", Value::Int(4))])
            .unwrap();
        let sel = select(
            db.schema_mut(),
            employee,
            "Paid",
            Predicate::cmp(pay, CmpOp::Ge, Value::Float(0.0)),
        )
        .unwrap();
        assert_eq!(sel.filter(&db).unwrap().len(), 3); // null excluded
    }
}
