//! # td-algebra — algebraic view operations beyond projection
//!
//! The paper's conclusion (§7) calls for applying its methodology "to the
//! remaining algebraic operations". This crate provides the natural next
//! steps:
//!
//! * [`select`][fn@select] — `σ_pred(T)` derives a direct *subtype* view (all state,
//!   all behavior, filtered extent);
//! * [`join`][fn@join] — `T₁ ⋈ T₂` derives a common-*subtype* view carrying the
//!   union of attributes, with keyed instance-level materialization;
//! * [`extend`][fn@extend] — `ε_{a := f}(T)` derives a view with a *computed*
//!   attribute, materialized by running `f` through the interpreter;
//! * [`compose`] — pipelines of operations (views over views), the case
//!   §7 flags for surrogate proliferation, with helpers to measure and
//!   minimize empty surrogates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod compose;
pub mod error;
pub mod extend;
pub mod join;
pub mod select;

pub use compose::{
    count_empty_surrogates, minimize_pipeline_surrogates, Pipeline, StepOutcome, ViewOp,
};
pub use error::{AlgebraError, Result};
pub use extend::{extend, Extension};
pub use join::{join, Join};
pub use select::{select, CmpOp, Predicate, Selection};
