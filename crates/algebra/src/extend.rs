//! Extend views: `ε_{name := f}(T)` — a view with a *derived attribute*.
//!
//! The object-algebra complement of projection (Shaw & Zdonik's algebra,
//! the paper's reference \[18\], pairs `project` with an operation that
//! adds computed fields). At the type level the extend view is a direct
//! subtype of its source carrying one extra local attribute; at the
//! instance level materialization fills that attribute by *executing* a
//! unary generic function on each source instance through the
//! interpreter.

use td_model::{AttrId, GfId, Schema, TypeId};
use td_store::{Database, ObjId, Value};

use crate::error::{AlgebraError, Result};

/// A derived extend-view type.
#[derive(Debug, Clone)]
pub struct Extension {
    /// The derived view type (direct subtype of the source).
    pub derived: TypeId,
    /// The source type.
    pub source: TypeId,
    /// The added (computed) attribute.
    pub attr: AttrId,
    /// The unary generic function computing it.
    pub compute: GfId,
}

/// Derives `extend source with attr_name := compute(self)` as a view type
/// named `name`.
///
/// `compute` must be unary and declare a result type, which becomes the
/// new attribute's type.
pub fn extend(
    schema: &mut Schema,
    source: TypeId,
    name: &str,
    attr_name: &str,
    compute: GfId,
) -> Result<Extension> {
    let gf = schema.gf(compute);
    if gf.arity != 1 {
        return Err(AlgebraError::BadJoin(format!(
            "extend computation `{}` must be unary, has arity {}",
            gf.name, gf.arity
        )));
    }
    let Some(result) = gf.result else {
        return Err(AlgebraError::BadJoin(format!(
            "extend computation `{}` declares no result type",
            gf.name
        )));
    };
    let derived = schema.add_type(name, &[source])?;
    let attr = schema.add_attr(attr_name, result, derived)?;
    Ok(Extension {
        derived,
        source,
        attr,
        compute,
    })
}

impl Extension {
    /// Materializes the view: one derived object per source instance,
    /// copying all inherited state and computing the extra attribute by
    /// calling the generic function on the source object. Returns
    /// `(source, view)` pairs.
    pub fn materialize(&self, db: &mut Database) -> Result<Vec<(ObjId, ObjId)>> {
        let inherited: Vec<AttrId> = db
            .schema()
            .cumulative_attrs(self.source)
            .into_iter()
            .collect();
        let sources = db.deep_extent(self.source);
        let mut pairs = Vec::with_capacity(sources.len());
        for src in sources {
            let computed = db.call(self.compute, &[Value::Ref(src)])?;
            let mut fields: Vec<(AttrId, Value)> = inherited
                .iter()
                .map(|&a| Ok((a, db.get_field(src, a)?)))
                .collect::<Result<_>>()?;
            fields.push((self.attr, computed));
            let v = db.create(self.derived, fields)?;
            pairs.push((src, v));
        }
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workload::figures;

    #[test]
    fn extend_type_shape() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let income = s.gf_id("income").unwrap();
        let ext = extend(
            &mut s,
            employee,
            "EmployeeWithIncome",
            "computed_income",
            income,
        )
        .unwrap();
        assert!(s.is_subtype(ext.derived, employee));
        assert_eq!(s.cumulative_attrs(ext.derived).len(), 6);
        assert_eq!(s.attr(ext.attr).ty, td_model::ValueType::FLOAT);
        s.validate().unwrap();
    }

    #[test]
    fn materialization_computes_through_the_interpreter() {
        let mut db = Database::new(figures::fig1());
        for (pay, hrs) in [(10.0, 5.0), (20.0, 2.0)] {
            db.create_named(
                "Employee",
                &[
                    ("pay_rate", Value::Float(pay)),
                    ("hrs_worked", Value::Float(hrs)),
                ],
            )
            .unwrap();
        }
        let employee = db.schema().type_id("Employee").unwrap();
        let income = db.schema().gf_id("income").unwrap();
        let ext = extend(
            db.schema_mut(),
            employee,
            "EmployeeWithIncome",
            "computed_income",
            income,
        )
        .unwrap();
        let pairs = ext.materialize(&mut db).unwrap();
        assert_eq!(pairs.len(), 2);
        let values: Vec<Value> = pairs
            .iter()
            .map(|&(_, v)| db.get_field(v, ext.attr).unwrap())
            .collect();
        assert_eq!(values, vec![Value::Float(50.0), Value::Float(40.0)]);
        // The extended objects still answer the source's methods.
        let (_, v0) = pairs[0];
        assert_eq!(
            db.call_named("income", &[Value::Ref(v0)]).unwrap(),
            Value::Float(50.0)
        );
    }

    #[test]
    fn non_unary_or_resultless_computations_rejected() {
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let set_ssn = s.gf_id("set_SSN").unwrap(); // arity 2
        assert!(extend(&mut s, employee, "Bad", "b", set_ssn).is_err());
        let noresult = s.add_gf("proc", 1, None).unwrap();
        assert!(extend(&mut s, employee, "Bad2", "b2", noresult).is_err());
    }

    #[test]
    fn extend_then_project_composes() {
        // Project the computed attribute (and the key) out of the
        // extended view: a materialized report type.
        let mut s = figures::fig1();
        let employee = s.type_id("Employee").unwrap();
        let income = s.gf_id("income").unwrap();
        let ext = extend(
            &mut s,
            employee,
            "EmployeeWithIncome",
            "computed_income",
            income,
        )
        .unwrap();
        let d = td_core::project_named(
            &mut s,
            "EmployeeWithIncome",
            &["SSN", "computed_income"],
            &td_core::ProjectionOptions::default(),
        )
        .unwrap();
        assert!(d.invariants_ok(), "{:#?}", d.invariants);
        assert_eq!(s.cumulative_attrs(d.derived).len(), 2);
        let _ = ext;
    }
}
