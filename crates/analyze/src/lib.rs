//! `td-analyze`: interprocedural abstract interpretation for derived
//! types.
//!
//! The derivation engine (`td-core`) answers *what survives* a
//! projection; this crate answers *what the surviving code actually
//! does*. It contributes:
//!
//! * a generic **monotone framework** ([`framework`]) — configurable
//!   join-semilattice domains, forward ([`Direction::TopDown`]) or
//!   backward ([`Direction::BottomUp`]) flow, worklist iteration over the
//!   call graph's SCC condensation, and a widening hook for the paper's
//!   §4 optimistic-cycle rings;
//! * an **abstract value domain** ([`absval`]) tracking nullability and
//!   integer/boolean constness through method bodies and across call
//!   boundaries;
//! * four production analyses powering the deep **TDL2xx lints**
//!   (TDL201 null-dispatch, TDL202 constant branches, TDL203 unreachable
//!   methods, TDL204 dead attributes, TDL205 interprocedural Augment) —
//!   see [`td_model::LintCode`];
//! * **semantic attribute footprints** — the same framework instance the
//!   applicability index consumes when built at
//!   [`AnalysisPrecision::Semantic`], demoting fallback methods the
//!   syntactic footprints cannot decide.
//!
//! [`analyze`] is the entry point. Results are cached in the schema's
//! generational dispatch cache under an
//! [`td_model::AnalysisKey`] — the schema-wide part under
//! `(None, precision)`, each request part under
//! `(Some((source, projection)), precision)` — so snapshot forks and
//! batch workers share reports, and the PR-8 delta machinery invalidates
//! exactly the entries a schema mutation can stale.

#![warn(missing_docs)]

pub mod absval;
mod analyses;
pub mod framework;

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use td_model::{AnalysisKey, AnalysisPrecision, AttrId, LintReport, Schema, TypeId};

pub use absval::{AbsVal, Constness, Nullness};
pub use framework::{solve, Analysis, CallGraph, Direction, Solution};

/// Iteration and cache accounting for one [`analyze`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Precision the analyses ran at.
    pub precision: AnalysisPrecision,
    /// True when the schema-wide part came from the dispatch cache.
    pub schema_cached: bool,
    /// True when the request part came from the dispatch cache (always
    /// false when no request was given).
    pub request_cached: bool,
    /// Wall time of the schema-wide part, microseconds (0 on a hit).
    pub schema_micros: u64,
    /// Wall time of the request part, microseconds (0 on a hit or when
    /// no request was given).
    pub request_micros: u64,
    /// Fallback methods in the *syntactic* applicability index of the
    /// request's source (0 without a request).
    pub fallback_syntactic: usize,
    /// Fallback methods in the index at the requested precision (equals
    /// `fallback_syntactic` when running syntactically).
    pub fallback_semantic: usize,
}

impl AnalysisStats {
    /// Fraction of syntactic fallback methods the semantic footprints
    /// demoted to indexed verdicts, in `[0, 1]`. `None` when the
    /// syntactic index had no fallbacks to demote.
    pub fn demotion_ratio(&self) -> Option<f64> {
        if self.fallback_syntactic == 0 {
            return None;
        }
        let demoted = self
            .fallback_syntactic
            .saturating_sub(self.fallback_semantic);
        Some(demoted as f64 / self.fallback_syntactic as f64)
    }
}

/// What one [`analyze`] call produced.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The combined report: schema-wide findings first, then the request
    /// part's, mirroring `td_core::lint`.
    pub report: LintReport,
    /// Cache/timing accounting.
    pub stats: AnalysisStats,
}

/// Runs the interprocedural analyses over `schema` — plus, when a
/// request is given, the projection-scoped analyses — at the requested
/// precision. Never fails: anything that would make the analysis itself
/// impossible is reported as an error-severity diagnostic.
///
/// Precision affects only the *sharpness* of TDL2xx findings (via the
/// call edges the framework iterates): it never changes an applicability
/// verdict, a lint report or an explain report (the three-engine
/// differential suite in `td-workload` proves this byte-for-byte).
pub fn analyze(
    schema: &Schema,
    request: Option<(TypeId, &BTreeSet<AttrId>)>,
    precision: AnalysisPrecision,
) -> AnalysisOutcome {
    let _span = td_telemetry::span("analyze", "total");
    let mut stats = AnalysisStats {
        precision,
        ..AnalysisStats::default()
    };

    let schema_key: AnalysisKey = (None, precision);
    let (schema_part, schema_cached, schema_micros) = cached_or_compute(schema, schema_key, || {
        let _s = td_telemetry::span("analyze", "schema_part");
        LintReport::new(analyses::schema_checks(schema))
    });
    stats.schema_cached = schema_cached;
    stats.schema_micros = schema_micros;

    let mut report = (*schema_part).clone();
    if let Some((source, projection)) = request {
        let key: AnalysisKey = (
            Some((source, projection.iter().copied().collect())),
            precision,
        );
        let (request_part, request_cached, request_micros) = cached_or_compute(schema, key, || {
            let _s = td_telemetry::span("analyze", "request_part");
            LintReport::new(analyses::request_checks(
                schema, source, projection, precision,
            ))
        });
        stats.request_cached = request_cached;
        stats.request_micros = request_micros;
        report.extend(&request_part);

        if let Ok(syn) = schema.cached_applicability_index(source) {
            stats.fallback_syntactic = syn.fallback_methods();
            stats.fallback_semantic = stats.fallback_syntactic;
        }
        if precision == AnalysisPrecision::Semantic {
            if let Ok(sem) = schema.cached_applicability_index_at(source, precision) {
                stats.fallback_semantic = sem.fallback_methods();
            }
        }
    }

    AnalysisOutcome { report, stats }
}

/// Mirrors `td_core::lint`'s two-part caching against the analysis map:
/// returns the report, whether it was a hit, and the compute time.
fn cached_or_compute(
    schema: &Schema,
    key: AnalysisKey,
    compute: impl FnOnce() -> LintReport,
) -> (Arc<LintReport>, bool, u64) {
    if let Some(hit) = schema.cached_analysis_report(&key) {
        return (hit, true, 0);
    }
    let t0 = Instant::now();
    let computed = Arc::new(compute());
    let micros = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    schema.store_analysis_report(key, Arc::clone(&computed));
    (computed, false, micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::{
        BodyBuilder, Expr, LintCode, Literal, MethodKind, PrimType, Specializer, Stmt, ValueType,
    };

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    fn deep_codes(report: &LintReport) -> Vec<&'static str> {
        codes(report)
            .into_iter()
            .filter(|c| c.starts_with("TDL2"))
            .collect()
    }

    #[test]
    fn figure3_findings_are_stable_across_precisions() {
        let schema = td_workload::figures::fig3();
        let source = schema.type_id("A").unwrap();
        let projection: BTreeSet<_> = td_workload::figures::FIG4_PROJECTION
            .iter()
            .map(|a| schema.attr_id(a).unwrap())
            .collect();
        let syn = analyze(
            &schema,
            Some((source, &projection)),
            AnalysisPrecision::Syntactic,
        );
        // The paper's running example has no null traps, constant
        // branches or shadowed survivors; `a2`/`e2` are projected but
        // have no reader anywhere, so liveness flags exactly them.
        let deep = deep_codes(&syn.report);
        assert!(
            !deep
                .iter()
                .any(|c| matches!(*c, "TDL201" | "TDL202" | "TDL203")),
            "unexpected deep warnings on fig3: {:?}",
            syn.report.diagnostics
        );
        let dead: Vec<&str> = syn
            .report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::DeadAttribute)
            .flat_map(|d| d.spans.iter().map(|s| s.name.as_str()))
            .collect();
        assert_eq!(dead, vec!["a2", "e2"], "{:?}", syn.report.diagnostics);
        // Precision sharpens edges but must not change fig3's findings.
        let sem = analyze(
            &schema,
            Some((source, &projection)),
            AnalysisPrecision::Semantic,
        );
        assert_eq!(syn.report, sem.report);
    }

    /// gf `danger(Int)` only has a primitive-specialized method; `trap`
    /// calls it with the result of a no-result gf — a provable null.
    #[test]
    fn null_arg_dispatch_is_reported() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let noop = s.add_gf("noop", 1, None).unwrap();
        let mut nb = BodyBuilder::new();
        nb.ret(Expr::Param(0));
        s.add_method(
            noop,
            "noop_a",
            vec![Specializer::Type(a)],
            MethodKind::General(nb.finish()),
            None,
        )
        .unwrap();
        let danger = s
            .add_gf("danger", 1, Some(ValueType::Prim(PrimType::Int)))
            .unwrap();
        let mut db = BodyBuilder::new();
        db.ret(Expr::int(1));
        s.add_method(
            danger,
            "danger_int",
            vec![Specializer::Prim(PrimType::Int)],
            MethodKind::General(db.finish()),
            Some(ValueType::Prim(PrimType::Int)),
        )
        .unwrap();
        let trap = s.add_gf("trap", 1, None).unwrap();
        let mut tb = BodyBuilder::new();
        tb.expr(Expr::call(
            danger,
            vec![Expr::call(noop, vec![Expr::Param(0)])],
        ));
        s.add_method(
            trap,
            "trap_a",
            vec![Specializer::Type(a)],
            MethodKind::General(tb.finish()),
            None,
        )
        .unwrap();

        let out = analyze(&s, None, AnalysisPrecision::Syntactic);
        assert_eq!(deep_codes(&out.report), vec!["TDL201"]);
        let d = &out.report.diagnostics[0];
        assert!(
            d.message.contains("danger"),
            "names the callee: {}",
            d.message
        );
        assert!(
            d.message.contains("trap_a"),
            "names the caller: {}",
            d.message
        );
    }

    /// Null flows *through* a call: `id` returns its (possibly-null)
    /// parameter, but `mk_null` always returns a null literal, and the
    /// interprocedural fixpoint must see through both.
    #[test]
    fn nullness_propagates_through_returns() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let mk_null = s.add_gf("mk_null", 0, Some(ValueType::Object(a))).unwrap();
        let mut mb = BodyBuilder::new();
        mb.ret(Expr::Lit(Literal::Null));
        s.add_method(
            mk_null,
            "mk_null0",
            vec![],
            MethodKind::General(mb.finish()),
            Some(ValueType::Object(a)),
        )
        .unwrap();
        let id = s.add_gf("id", 1, Some(ValueType::Object(a))).unwrap();
        let mut ib = BodyBuilder::new();
        ib.ret(Expr::Param(0));
        s.add_method(
            id,
            "id_a",
            vec![Specializer::Type(a)],
            MethodKind::General(ib.finish()),
            Some(ValueType::Object(a)),
        )
        .unwrap();
        let use_gf = s
            .add_gf("use", 1, Some(ValueType::Prim(PrimType::Int)))
            .unwrap();
        let mut ub = BodyBuilder::new();
        ub.ret(Expr::int(0));
        s.add_method(
            use_gf,
            "use_int",
            vec![Specializer::Prim(PrimType::Int)],
            MethodKind::General(ub.finish()),
            Some(ValueType::Prim(PrimType::Int)),
        )
        .unwrap();
        let driver = s.add_gf("driver", 1, None).unwrap();
        let mut db = BodyBuilder::new();
        // use(mk_null()) — definitely null through one call summary.
        db.expr(Expr::call(use_gf, vec![Expr::call(mk_null, vec![])]));
        // use(id(p0)) — id may return a non-null object; NOT flagged.
        db.expr(Expr::call(
            use_gf,
            vec![Expr::call(id, vec![Expr::Param(0)])],
        ));
        s.add_method(
            driver,
            "driver_a",
            vec![Specializer::Type(a)],
            MethodKind::General(db.finish()),
            None,
        )
        .unwrap();

        let out = analyze(&s, None, AnalysisPrecision::Syntactic);
        assert_eq!(deep_codes(&out.report), vec!["TDL201"]);
    }

    #[test]
    fn constant_branch_is_reported_with_dead_count() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        // if (1 < 2) { return p0 } else { return p0; return p0 }
        bb.if_(
            Expr::binop(td_model::BinOp::Lt, Expr::int(1), Expr::int(2)),
            vec![Stmt::Return(Expr::Param(0))],
            vec![Stmt::Return(Expr::Param(0)), Stmt::Return(Expr::Param(0))],
        );
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let out = analyze(&s, None, AnalysisPrecision::Syntactic);
        assert_eq!(deep_codes(&out.report), vec!["TDL202"]);
        let d = &out.report.diagnostics[0];
        assert!(
            d.message.contains("always true") && d.message.contains("2 statement"),
            "message carries the fold and the dead count: {}",
            d.message
        );
    }

    /// Two methods of one gf, both surviving, the specific one shadowing
    /// the general one everywhere, nothing calling the loser → TDL203.
    #[test]
    fn shadowed_unreachable_method_is_reported() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut fa = BodyBuilder::new();
        fa.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(fa.finish()),
            None,
        )
        .unwrap();
        let mut fb = BodyBuilder::new();
        fb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(fb.finish()),
            None,
        )
        .unwrap();
        let source = b;
        let projection: BTreeSet<_> = [x].into_iter().collect();
        let out = analyze(
            &s,
            Some((source, &projection)),
            AnalysisPrecision::Syntactic,
        );
        let deep = deep_codes(&out.report);
        assert!(
            deep.contains(&"TDL203"),
            "expected TDL203 in {deep:?}: {:?}",
            out.report.diagnostics
        );
        let d = out
            .report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::UnreachableMethod)
            .unwrap();
        assert!(d.message.contains("f_a") && d.message.contains("f_b"));
    }

    /// A projected attribute with no reader accessor and no surviving
    /// body reading it → TDL204.
    #[test]
    fn dead_attribute_is_reported() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (get_x, _) = s.add_reader(x, a).unwrap();
        // No accessors for `y` at all.
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(get_x, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let projection: BTreeSet<_> = [x, y].into_iter().collect();
        let out = analyze(&s, Some((a, &projection)), AnalysisPrecision::Syntactic);
        let dead: Vec<_> = out
            .report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::DeadAttribute)
            .collect();
        assert_eq!(dead.len(), 1, "{:?}", out.report.diagnostics);
        assert!(dead[0].message.contains("`y`"));
    }

    /// An applicable callee binds the caller's argument (static type C)
    /// to a formal specialized on G, where G is outside the projection
    /// closure X — an interprocedural Augment edge → TDL205.
    #[test]
    fn interprocedural_augment_is_reported() {
        let mut s = Schema::new();
        let g_ty = s.add_type("G", &[]).unwrap();
        let c_ty = s.add_type("C", &[g_ty]).unwrap();
        let x = s.add_attr("x", ValueType::INT, c_ty).unwrap();
        let (get_x, _) = s.add_reader(x, c_ty).unwrap();
        let callee = s.add_gf("sink", 1, None).unwrap();
        let mut kb = BodyBuilder::new();
        kb.ret(Expr::Param(0));
        s.add_method(
            callee,
            "sink_g",
            vec![Specializer::Type(g_ty)],
            MethodKind::General(kb.finish()),
            None,
        )
        .unwrap();
        let caller = s.add_gf("drive", 1, None).unwrap();
        let mut cb = BodyBuilder::new();
        cb.call(get_x, vec![Expr::Param(0)]);
        cb.call(callee, vec![Expr::Param(0)]);
        s.add_method(
            caller,
            "drive_c",
            vec![Specializer::Type(c_ty)],
            MethodKind::General(cb.finish()),
            None,
        )
        .unwrap();
        let projection: BTreeSet<_> = [x].into_iter().collect();
        let out = analyze(&s, Some((c_ty, &projection)), AnalysisPrecision::Syntactic);
        let found: Vec<_> = out
            .report
            .diagnostics
            .iter()
            .filter(|d| d.code == LintCode::InterprocAugment)
            .collect();
        assert_eq!(found.len(), 1, "{:?}", out.report.diagnostics);
        assert!(found[0].message.contains("`G`"), "{}", found[0].message);
    }

    #[test]
    fn reports_are_cached_per_key_and_precision() {
        let schema = td_workload::figures::fig3();
        let source = schema.type_id("A").unwrap();
        let projection: BTreeSet<_> = td_workload::figures::FIG4_PROJECTION
            .iter()
            .map(|a| schema.attr_id(a).unwrap())
            .collect();
        let first = analyze(
            &schema,
            Some((source, &projection)),
            AnalysisPrecision::Syntactic,
        );
        assert!(!first.stats.schema_cached && !first.stats.request_cached);
        let second = analyze(
            &schema,
            Some((source, &projection)),
            AnalysisPrecision::Syntactic,
        );
        assert!(second.stats.schema_cached && second.stats.request_cached);
        assert_eq!(first.report, second.report);
        // A different precision is a different key: schema part misses.
        let third = analyze(
            &schema,
            Some((source, &projection)),
            AnalysisPrecision::Semantic,
        );
        assert!(!third.stats.schema_cached && !third.stats.request_cached);
        // Precision never changes what is *found* on this clean schema.
        assert_eq!(first.report, third.report);
    }

    #[test]
    fn demotion_ratio_arithmetic() {
        let stats = AnalysisStats {
            fallback_syntactic: 10,
            fallback_semantic: 4,
            ..AnalysisStats::default()
        };
        assert_eq!(stats.demotion_ratio(), Some(0.6));
        let none = AnalysisStats::default();
        assert_eq!(none.demotion_ratio(), None);
    }
}
