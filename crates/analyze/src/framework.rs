//! The generic interprocedural monotone framework.
//!
//! A dataflow problem is a join-semilattice of facts plus a monotone
//! transfer function per method; the solver iterates a worklist over the
//! call graph's SCC condensation to the least fixpoint. Acyclic regions
//! are solved in one topological sweep (each SCC sees only final facts
//! from the SCCs it depends on); cyclic regions — the §4 optimistic-cycle
//! rings — iterate to a local fixpoint, with a widening hook that kicks
//! in after a visit budget so infinite-ascending-chain domains still
//! terminate.
//!
//! Two graph sources feed the same solver:
//!
//! * [`CallGraph::from_index`] — the per-source applicability
//!   condensation of `td_model::appindex`, including its
//!   precision-refined call edges. Used by the per-request analyses
//!   (footprints, reachability).
//! * [`CallGraph::whole_schema`] — every method, with an edge to every
//!   method of every called generic function. The conservative graph the
//!   schema-wide analyses (nullability/constness) run on.

use std::collections::HashMap;

use td_model::{ApplicabilityIndex, MethodId, Schema};

/// Which way facts flow along call edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Caller facts flow to callees (entry/reachability style): a node's
    /// input is the join over its callers, and callers are solved first.
    TopDown,
    /// Callee facts flow to callers (summary style: footprints, return
    /// values): a node's input is the join over its callees, and callees
    /// are solved first.
    BottomUp,
}

/// An interprocedural dataflow problem over a [`CallGraph`].
///
/// `join` must be a semilattice join (commutative, associative,
/// idempotent) and `transfer` monotone in its `input`; the solver then
/// reaches the least fixpoint. `widen` defaults to `join` — override it
/// for domains with unbounded ascending chains.
pub trait Analysis {
    /// The lattice of facts, one per method.
    type Fact: Clone;

    /// Edge orientation for this problem.
    fn direction(&self) -> Direction;

    /// The least element every node starts at.
    fn bottom(&self) -> Self::Fact;

    /// Joins `from` into `into`; returns true iff `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Widening operator, applied instead of `join` on nodes of a cyclic
    /// SCC once their visit count exceeds the budget. Must over-approximate
    /// `join` and stabilize every ascending chain.
    fn widen(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        self.join(into, from)
    }

    /// Computes the node's new fact from the join of its dependency
    /// facts. `facts` exposes the whole current assignment so transfer
    /// functions can consult arbitrary neighbors (e.g. per-generic-
    /// function summaries) rather than only the pre-joined `input`.
    fn transfer(
        &self,
        m: MethodId,
        node: usize,
        input: &Self::Fact,
        graph: &CallGraph,
        facts: &[Self::Fact],
    ) -> Self::Fact;
}

/// Visits a cyclic node this many times before switching to `widen`.
const WIDEN_BUDGET: usize = 2;

/// A method-level call graph with its SCC condensation.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// The node universe; node index ↔ position here.
    pub methods: Vec<MethodId>,
    node_of: HashMap<MethodId, usize>,
    /// Deduplicated caller → callee adjacency.
    callees: Vec<Vec<usize>>,
    /// The reverse adjacency.
    callers: Vec<Vec<usize>>,
    /// SCC id per node. Ids are in reverse-topological emission order:
    /// every cross call edge targets a strictly smaller SCC id.
    scc_of: Vec<usize>,
    /// Members per SCC.
    sccs: Vec<Vec<usize>>,
    /// Whether the SCC is a genuine ring (size > 1 or a self loop).
    cyclic: Vec<bool>,
}

impl CallGraph {
    /// Builds the graph from a per-source applicability index, reusing
    /// its (possibly precision-refined) call edges: node universe =
    /// index universe, edge per indexed candidate binding.
    pub fn from_index(index: &ApplicabilityIndex) -> CallGraph {
        let methods = index.universe().to_vec();
        let edges = methods
            .iter()
            .map(|&m| {
                index
                    .callees(m)
                    .map(|it| it.collect::<Vec<_>>())
                    .unwrap_or_default()
            })
            .collect::<Vec<_>>();
        Self::build(methods, |_, i| edges[i].clone())
    }

    /// Builds the conservative whole-schema graph: every method is a
    /// node, and a general body calling generic function `g` gets an
    /// edge to every method of `g` (dispatch could pick any of them).
    pub fn whole_schema(schema: &Schema) -> CallGraph {
        let methods: Vec<MethodId> = schema.method_ids().collect();
        Self::build(methods, |m, _| {
            let mut out = Vec::new();
            if let Some(body) = schema.method(m).body() {
                body.visit_exprs(&mut |e| {
                    if let td_model::Expr::Call { gf, .. } = e {
                        out.extend(schema.gf(*gf).methods.iter().copied());
                    }
                });
            }
            out
        })
    }

    fn build(
        methods: Vec<MethodId>,
        mut callee_methods: impl FnMut(MethodId, usize) -> Vec<MethodId>,
    ) -> CallGraph {
        let node_of: HashMap<MethodId, usize> =
            methods.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let n = methods.len();
        let mut callees: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (i, &m) in methods.iter().enumerate() {
            let mut adj: Vec<usize> = callee_methods(m, i)
                .into_iter()
                .filter_map(|c| node_of.get(&c).copied())
                .collect();
            adj.sort_unstable();
            adj.dedup();
            callees.push(adj);
        }
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, adj) in callees.iter().enumerate() {
            for &v in adj {
                callers[v].push(u);
            }
        }
        let (scc_of, sccs) = tarjan(n, &callees);
        let cyclic = sccs
            .iter()
            .map(|members| {
                members.len() > 1 || members.first().is_some_and(|&v| callees[v].contains(&v))
            })
            .collect();
        CallGraph {
            methods,
            node_of,
            callees,
            callers,
            scc_of,
            sccs,
            cyclic,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// The node index of a method, if it is in the universe.
    pub fn node_of(&self, m: MethodId) -> Option<usize> {
        self.node_of.get(&m).copied()
    }

    /// Callee node indexes of a node.
    pub fn callees(&self, node: usize) -> &[usize] {
        &self.callees[node]
    }

    /// Caller node indexes of a node.
    pub fn callers(&self, node: usize) -> &[usize] {
        &self.callers[node]
    }

    /// Number of SCCs in the condensation.
    pub fn n_sccs(&self) -> usize {
        self.sccs.len()
    }

    /// True when the node sits on a call ring.
    pub fn on_ring(&self, node: usize) -> bool {
        self.cyclic[self.scc_of[node]]
    }
}

/// Iterative Tarjan SCC. Returns `(scc_of, sccs)`; SCC ids follow the
/// emission order, so every cross edge `u → v` satisfies
/// `scc_of[v] < scc_of[u]` (reverse-topological).
fn tarjan(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, Vec<Vec<usize>>) {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![0usize; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    // (node, next child position) call frames.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == UNSEEN {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_of[w] = sccs.len();
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(members);
                }
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    (scc_of, sccs)
}

/// The least fixpoint of an analysis, plus iteration accounting.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// One fact per graph node (same indexing as `CallGraph::methods`).
    pub facts: Vec<F>,
    /// Total transfer-function evaluations.
    pub node_visits: usize,
    /// Times the widening operator replaced the join.
    pub widenings: usize,
}

/// Runs `analysis` over `graph` to its least fixpoint.
///
/// SCCs are processed in dependency order (callees first for
/// [`Direction::BottomUp`], callers first for [`Direction::TopDown`]);
/// within an SCC a worklist iterates until no fact changes, switching
/// from `join` to `widen` on ring nodes after `WIDEN_BUDGET` visits.
pub fn solve<A: Analysis>(graph: &CallGraph, analysis: &A) -> Solution<A::Fact> {
    let n = graph.len();
    let mut facts: Vec<A::Fact> = (0..n).map(|_| analysis.bottom()).collect();
    let mut node_visits = 0usize;
    let mut widenings = 0usize;
    let bottom_up = analysis.direction() == Direction::BottomUp;
    let scc_order: Vec<usize> = if bottom_up {
        (0..graph.n_sccs()).collect()
    } else {
        (0..graph.n_sccs()).rev().collect()
    };
    let mut visits = vec![0usize; n];
    let mut queued = vec![false; n];
    for sid in scc_order {
        let members = &graph.sccs[sid];
        let cyclic = graph.cyclic[sid];
        let mut worklist: Vec<usize> = members.clone();
        for &v in members {
            queued[v] = true;
        }
        while let Some(v) = worklist.pop() {
            queued[v] = false;
            let deps: &[usize] = if bottom_up {
                graph.callees(v)
            } else {
                graph.callers(v)
            };
            let mut input = analysis.bottom();
            for &d in deps {
                analysis.join(&mut input, &facts[d]);
            }
            let out = analysis.transfer(graph.methods[v], v, &input, graph, &facts);
            node_visits += 1;
            visits[v] += 1;
            let changed = if cyclic && visits[v] > WIDEN_BUDGET {
                widenings += 1;
                analysis.widen(&mut facts[v], &out)
            } else {
                analysis.join(&mut facts[v], &out)
            };
            if changed {
                let dependents: &[usize] = if bottom_up {
                    graph.callers(v)
                } else {
                    graph.callees(v)
                };
                for &d in dependents {
                    if graph.scc_of[d] == sid && !queued[d] {
                        queued[d] = true;
                        worklist.push(d);
                    }
                }
            }
        }
    }
    Solution {
        facts,
        node_visits,
        widenings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy analysis on a hand-built graph: BottomUp set-union of node
    /// ids (a footprint stand-in).
    struct Union;

    impl Analysis for Union {
        type Fact = std::collections::BTreeSet<usize>;

        fn direction(&self) -> Direction {
            Direction::BottomUp
        }

        fn bottom(&self) -> Self::Fact {
            Default::default()
        }

        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(from.iter().copied());
            into.len() != before
        }

        fn transfer(
            &self,
            _m: MethodId,
            node: usize,
            input: &Self::Fact,
            _graph: &CallGraph,
            _facts: &[Self::Fact],
        ) -> Self::Fact {
            let mut out = input.clone();
            out.insert(node);
            out
        }
    }

    fn graph(n: usize, edges: &[(usize, usize)]) -> CallGraph {
        let methods: Vec<MethodId> = (0..n).map(|i| MethodId(i as u32)).collect();
        CallGraph::build(methods, |_, i| {
            edges
                .iter()
                .filter(|&&(u, _)| u == i)
                .map(|&(_, v)| MethodId(v as u32))
                .collect()
        })
    }

    #[test]
    fn condensation_orders_cross_edges_downward() {
        // 0 -> 1 -> 2, ring {1, 2}? No: ring {1,2} via 2 -> 1.
        let g = graph(3, &[(0, 1), (1, 2), (2, 1)]);
        assert_eq!(g.n_sccs(), 2);
        assert!(g.on_ring(1) && g.on_ring(2));
        assert!(!g.on_ring(0));
        // Cross edge 0 -> ring must target a smaller SCC id.
        assert!(g.scc_of[1] < g.scc_of[0]);
    }

    #[test]
    fn bottom_up_union_reaches_transitive_closure() {
        // 0 -> 1 -> 2 and a ring 2 <-> 3.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 2)]);
        let sol = solve(&g, &Union);
        let got: Vec<usize> = sol.facts[0].iter().copied().collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let ring: Vec<usize> = sol.facts[3].iter().copied().collect();
        assert_eq!(ring, vec![2, 3]);
        assert!(sol.node_visits >= 4);
    }

    #[test]
    fn top_down_reachability_flows_from_roots() {
        struct Reach {
            seed: usize,
        }
        impl Analysis for Reach {
            type Fact = bool;
            fn direction(&self) -> Direction {
                Direction::TopDown
            }
            fn bottom(&self) -> bool {
                false
            }
            fn join(&self, into: &mut bool, from: &bool) -> bool {
                let changed = !*into && *from;
                *into |= *from;
                changed
            }
            fn transfer(
                &self,
                _m: MethodId,
                node: usize,
                input: &bool,
                _g: &CallGraph,
                _f: &[bool],
            ) -> bool {
                node == self.seed || *input
            }
        }
        // 0 -> 1 -> 2, 3 isolated.
        let g = graph(4, &[(0, 1), (1, 2)]);
        let sol = solve(&g, &Reach { seed: 0 });
        assert_eq!(sol.facts, vec![true, true, true, false]);
    }

    #[test]
    fn widening_terminates_an_unbounded_chain_on_a_ring() {
        /// A deliberately non-converging counter domain: join takes the
        /// max + 1 on change, so a ring would climb forever without the
        /// widening hook capping it.
        struct Counter;
        impl Analysis for Counter {
            type Fact = u64;
            fn direction(&self) -> Direction {
                Direction::BottomUp
            }
            fn bottom(&self) -> u64 {
                0
            }
            fn join(&self, into: &mut u64, from: &u64) -> bool {
                if *from > *into {
                    *into = *from;
                    true
                } else {
                    false
                }
            }
            fn widen(&self, into: &mut u64, from: &u64) -> bool {
                // Jump straight to top.
                let top = u64::MAX;
                let target = if *from > *into { top } else { *into };
                let changed = target != *into;
                *into = target;
                changed
            }
            fn transfer(
                &self,
                _m: MethodId,
                _node: usize,
                input: &u64,
                _g: &CallGraph,
                _f: &[u64],
            ) -> u64 {
                input.saturating_add(1)
            }
        }
        let g = graph(2, &[(0, 1), (1, 0)]);
        let sol = solve(&g, &Counter);
        assert!(sol.widenings > 0, "ring must trip the widening budget");
        assert_eq!(sol.facts, vec![u64::MAX, u64::MAX]);
    }
}
