//! The production analyses and the TDL2xx checks they power.
//!
//! Schema-wide (cached under the `None` analysis key):
//!
//! * **TDL201** — interprocedural nullability: a call site passes a value
//!   that is provably null on every path, and every method of the callee
//!   eliminates itself (null never matches a `Prim` specializer), so
//!   dispatch is guaranteed to fail.
//! * **TDL202** — constant propagation: an `if` condition folds to a
//!   compile-time constant, so the untaken branch (and any Augment
//!   pressure inside it) can never execute.
//!
//! Per-request (cached under the `Some((source, projection))` key):
//!
//! * **TDL203** — reachability: a surviving method is shadowed by a more
//!   specific survivor at every direct entry and is not invoked by any
//!   surviving call chain — it survives the projection but can never run.
//! * **TDL204** — liveness: a projected attribute is never read on any
//!   surviving path; the projection carries state no surviving behavior
//!   observes.
//! * **TDL205** — interprocedural type flow: binding an actual argument
//!   to a callee's formal induces a §6.4 def-use edge across the call
//!   boundary; types that only such edges drag into `Z` are Augment
//!   surrogates the intraprocedural check cannot see.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use td_core::applicability::compute_applicability_indexed;
use td_core::body_rewrite::{collect_flow_edges, compute_y_and_z};
use td_model::{
    AnalysisPrecision, AttrBitSet, AttrId, Diagnostic, Expr, LintCode, MethodId, MethodKind,
    Schema, Span, Specializer, TypeId,
};

use crate::absval::{eval_body, AbsVal, EvalRecord};
use crate::framework::{solve, Analysis, CallGraph, Direction};

/// Interprocedural return-value analysis: the fact for each method is the
/// abstract value ([`AbsVal`]) it may return. Bottom-up so callee
/// summaries converge before their callers consult them.
pub struct ReturnValueAnalysis<'a> {
    schema: &'a Schema,
}

impl Analysis for ReturnValueAnalysis<'_> {
    type Fact = AbsVal;

    fn direction(&self) -> Direction {
        Direction::BottomUp
    }

    fn bottom(&self) -> AbsVal {
        AbsVal::BOTTOM
    }

    fn join(&self, into: &mut AbsVal, from: &AbsVal) -> bool {
        into.join_with(from)
    }

    fn transfer(
        &self,
        m: MethodId,
        _node: usize,
        _input: &AbsVal,
        graph: &CallGraph,
        facts: &[AbsVal],
    ) -> AbsVal {
        match self.schema.method(m).body() {
            // Accessor results depend on stored state: no information.
            None => AbsVal::TOP,
            Some(body) => eval_body(self.schema, m, body, graph, facts, None),
        }
    }
}

/// Transitive read-footprint analysis: the fact for each method is the
/// set of attributes some call chain from it may *read* (writer accessors
/// contribute nothing). Sharper than the index's footprints in two ways:
/// reads only, and computed over the index's precision-refined edges.
pub struct FootprintAnalysis<'a> {
    schema: &'a Schema,
    n_attrs: usize,
}

impl Analysis for FootprintAnalysis<'_> {
    type Fact = AttrBitSet;

    fn direction(&self) -> Direction {
        Direction::BottomUp
    }

    fn bottom(&self) -> AttrBitSet {
        AttrBitSet::new(self.n_attrs)
    }

    fn join(&self, into: &mut AttrBitSet, from: &AttrBitSet) -> bool {
        let before = into.len();
        into.union_with(from);
        into.len() != before
    }

    fn transfer(
        &self,
        m: MethodId,
        _node: usize,
        input: &AttrBitSet,
        _graph: &CallGraph,
        _facts: &[AttrBitSet],
    ) -> AttrBitSet {
        let mut out = input.clone();
        if let MethodKind::Reader(a) = self.schema.method(m).kind {
            out.insert(a);
        }
        out
    }
}

/// Reachability over surviving candidate edges: a node is reachable when
/// it is an entry, or a reachable surviving caller has it as a §4.1
/// candidate. Non-survivors never become reachable and never propagate.
struct Reachability {
    entries: HashSet<usize>,
    surviving: Vec<bool>,
}

impl Analysis for Reachability {
    type Fact = bool;

    fn direction(&self) -> Direction {
        Direction::TopDown
    }

    fn bottom(&self) -> bool {
        false
    }

    fn join(&self, into: &mut bool, from: &bool) -> bool {
        let changed = !*into && *from;
        *into |= *from;
        changed
    }

    fn transfer(
        &self,
        _m: MethodId,
        node: usize,
        input: &bool,
        _graph: &CallGraph,
        _facts: &[bool],
    ) -> bool {
        self.entries.contains(&node) || (*input && self.surviving[node])
    }
}

// ------------------------------------------------------------ schema checks

/// Runs the whole-schema analyses (nullability + constant propagation)
/// and reports TDL201/TDL202.
pub fn schema_checks(schema: &Schema) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let graph = {
        let _s = td_telemetry::span("analyze", "callgraph");
        CallGraph::whole_schema(schema)
    };
    let solution = {
        let _s = td_telemetry::span("analyze", "nullability");
        solve(&graph, &ReturnValueAnalysis { schema })
    };
    let _s = td_telemetry::span("analyze", "const_report");
    for &m in &graph.methods {
        let method = schema.method(m);
        let Some(body) = method.body() else { continue };
        // Reporting pass: re-evaluate once against the converged facts,
        // observing call sites (live branches only) and folded branches.
        let mut record = EvalRecord::default();
        eval_body(schema, m, body, &graph, &solution.facts, Some(&mut record));
        let label = schema.method_label(m).to_string();
        let mut flagged_gfs: HashSet<td_model::GfId> = HashSet::new();
        for call in &record.calls {
            let g = schema.gf(call.gf);
            if g.methods.is_empty() || !flagged_gfs.insert(call.gf) {
                continue;
            }
            let doomed = g.methods.iter().all(|&c| {
                let cand = schema.method(c);
                cand.specializers.iter().enumerate().any(|(j, s)| {
                    matches!(s, Specializer::Prim(_))
                        && call.args.get(j).is_some_and(|v| v.is_definitely_null())
                })
            });
            if doomed {
                let gf_name = schema.gf_name(call.gf).to_string();
                diags.push(Diagnostic::new(
                    LintCode::NullArgDispatch,
                    format!(
                        "call to `{gf_name}` in `{label}` passes a provably-null \
                         argument where every method requires a primitive — \
                         dispatch is guaranteed to fail at runtime"
                    ),
                    vec![Span::method(label.clone()), Span::gf(gf_name)],
                ));
            }
        }
        for branch in &record.const_branches {
            if branch.dead_stmts == 0 {
                continue;
            }
            let (value, dead) = if branch.cond {
                ("true", "else")
            } else {
                ("false", "then")
            };
            diags.push(Diagnostic::new(
                LintCode::ConstantBranch,
                format!(
                    "condition of an `if` in `{label}` is always {value}; {n} \
                     statement(s) in the {dead} branch can never execute",
                    n = branch.dead_stmts
                ),
                vec![Span::method(label.clone())],
            ));
        }
    }
    diags
}

// ----------------------------------------------------------- request checks

/// Runs the per-request analyses (reachability, liveness, interprocedural
/// type flow) and reports TDL203/TDL204/TDL205.
pub fn request_checks(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    precision: AnalysisPrecision,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // The applicability verdicts are precision-independent by the
    // verdict-preservation property; the precision only sharpens the call
    // edges the analyses below iterate over.
    let app = match compute_applicability_indexed(schema, source, projection, false) {
        Ok(a) => a,
        Err(e) => {
            diags.push(Diagnostic::new(
                LintCode::InvalidRequest,
                format!("analysis request could not be evaluated: {e}"),
                Vec::new(),
            ));
            return diags;
        }
    };
    let index = match schema.cached_applicability_index_at(source, precision) {
        Ok(i) => i,
        Err(e) => {
            diags.push(Diagnostic::new(
                LintCode::InvalidRequest,
                format!("applicability index unavailable: {e}"),
                Vec::new(),
            ));
            return diags;
        }
    };
    let graph = CallGraph::from_index(&index);
    check_unreachable_methods(schema, source, &app, &graph, &mut diags);
    check_dead_attributes(schema, projection, &app, &graph, &mut diags);
    check_interproc_augment(schema, source, projection, &app, &mut diags);
    diags
}

/// TDL203: shadowing + reachability. A surviving general method that (a)
/// loses dispatch to a more specific survivor on its own most-natural
/// argument tuple and (b) is not a candidate of any call chain rooted at
/// an unshadowed survivor can never execute on the derived type.
fn check_unreachable_methods(
    schema: &Schema,
    source: TypeId,
    app: &td_core::applicability::Applicability,
    graph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let _s = td_telemetry::span("analyze", "reachability");
    // Shadowing test per surviving general method: dispatch its gf on the
    // tuple that targets the method most directly (the source where the
    // specializer admits it, the specializer itself elsewhere) and see
    // which projection survivor actually wins.
    let mut shadowed_by: BTreeMap<MethodId, MethodId> = BTreeMap::new();
    for &m in &app.applicable {
        let method = schema.method(m);
        if method.is_accessor() {
            continue;
        }
        let args: Vec<td_model::CallArg> = method
            .specializers
            .iter()
            .map(|s| match s {
                Specializer::Type(t) => {
                    if schema.is_subtype(source, *t) {
                        td_model::CallArg::Object(source)
                    } else {
                        td_model::CallArg::Object(*t)
                    }
                }
                Specializer::Prim(p) => td_model::CallArg::Prim(*p),
            })
            .collect();
        let Ok(ranked) = schema.rank_applicable(method.gf, &args) else {
            continue;
        };
        let winner = ranked.iter().copied().find(|&c| app.is_applicable(c));
        if let Some(w) = winner {
            if w != m {
                shadowed_by.insert(m, w);
            }
        }
    }
    if shadowed_by.is_empty() {
        return;
    }
    // Reachability from the unshadowed survivors over surviving candidate
    // edges (TopDown instance of the framework).
    let surviving: Vec<bool> = graph
        .methods
        .iter()
        .map(|&m| app.is_applicable(m))
        .collect();
    let entries: HashSet<usize> = graph
        .methods
        .iter()
        .enumerate()
        .filter(|&(i, &m)| {
            surviving[i] && !schema.method(m).is_accessor() && !shadowed_by.contains_key(&m)
        })
        .map(|(i, _)| i)
        .collect();
    let reach = solve(graph, &Reachability { entries, surviving });
    for (&m, &winner) in &shadowed_by {
        let reachable = graph.node_of(m).map(|n| reach.facts[n]).unwrap_or(true);
        if reachable {
            continue;
        }
        let label = schema.method_label(m).to_string();
        let winner_label = schema.method_label(winner).to_string();
        diags.push(Diagnostic::new(
            LintCode::UnreachableMethod,
            format!(
                "method `{label}` survives the projection but can never run: \
                 dispatch prefers `{winner_label}` at every direct call, and no \
                 surviving call chain reaches it"
            ),
            vec![Span::method(label), Span::method(winner_label)],
        ));
    }
}

/// TDL204: a projected attribute no surviving method can read. The
/// footprints come from the monotone framework over the index's
/// (precision-refined) candidate edges, so `Semantic` precision prunes
/// spurious reads that `Syntactic` conservatively keeps.
fn check_dead_attributes(
    schema: &Schema,
    projection: &BTreeSet<AttrId>,
    app: &td_core::applicability::Applicability,
    graph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let _s = td_telemetry::span("analyze", "footprints");
    let solution = solve(
        graph,
        &FootprintAnalysis {
            schema,
            n_attrs: schema.n_attrs(),
        },
    );
    for &a in projection {
        let read = app.applicable.iter().any(|&m| {
            graph
                .node_of(m)
                .map(|n| solution.facts[n].contains(a))
                // A survivor outside the graph universe: assume it reads.
                .unwrap_or(true)
        });
        if read {
            continue;
        }
        let name = schema.attr_name(a).to_string();
        diags.push(Diagnostic::new(
            LintCode::DeadAttribute,
            format!(
                "attribute `{name}` is carried by the projection but never \
                 read by any surviving method"
            ),
            vec![Span::attr(name)],
        ));
    }
}

/// TDL205: §6.4's `Y`/`Z` computation with call-boundary def-use edges
/// added (binding actual `v` to a formal specialized on `t` flows a `v`
/// value into a `t` slot). Types in the interprocedural `Z` but not the
/// intraprocedural one are Augment surrogates only this analysis sees.
fn check_interproc_augment(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    app: &td_core::applicability::Applicability,
    diags: &mut Vec<Diagnostic>,
) {
    let _s = td_telemetry::span("analyze", "typeflow");
    let owners: BTreeSet<TypeId> = projection.iter().map(|&a| schema.attr(a).owner).collect();
    let x: BTreeSet<TypeId> = schema
        .live_type_ids()
        .filter(|&u| {
            schema.is_subtype(source, u) && owners.iter().any(|&o| schema.is_subtype(u, o))
        })
        .collect();
    let intra = collect_flow_edges(schema, &app.applicable);
    let (_, z_intra) = compute_y_and_z(&intra, &x);
    let mut edges = intra;
    for &m in &app.applicable {
        let method = schema.method(m);
        let Some(body) = method.body() else { continue };
        body.visit_exprs(&mut |e| {
            let Expr::Call { gf, args } = e else { return };
            for &c in &schema.gf(*gf).methods {
                if !app.is_applicable(c) {
                    continue;
                }
                for (j, spec) in schema.method(c).specializers.iter().enumerate() {
                    let Specializer::Type(t) = spec else { continue };
                    let Some(arg) = args.get(j) else { continue };
                    if let td_model::CallArg::Object(v) = schema.static_expr_type(m, arg) {
                        edges.push((*t, v));
                    }
                }
            }
        });
    }
    let (_, z_inter) = compute_y_and_z(&edges, &x);
    let forced: Vec<TypeId> = z_inter.difference(&z_intra).copied().collect();
    if forced.is_empty() {
        return;
    }
    let names = forced
        .iter()
        .map(|&t| format!("`{}`", schema.type_name(t)))
        .collect::<Vec<_>>()
        .join(", ");
    let spans = forced
        .iter()
        .map(|&t| Span::ty(schema.type_name(t)))
        .collect();
    diags.push(Diagnostic::new(
        LintCode::InterprocAugment,
        format!(
            "call-boundary def-use flow forces Augment (§6.4) surrogates for \
             types the intraprocedural check misses: {names}"
        ),
        spans,
    ));
}
