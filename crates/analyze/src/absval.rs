//! The abstract value domain and the body evaluator.
//!
//! Each value is abstracted on two independent axes:
//!
//! * **nullness** — can the value be the null reference? The model's
//!   dispatch semantics make this dispatch-relevant: null matches any
//!   `Specializer::Type` but never a `Specializer::Prim`, so a provably
//!   null value at an all-primitive position is a guaranteed dispatch
//!   failure (TDL201).
//! * **constness** — is the value a known integer/boolean constant?
//!   Constant booleans decide `if` conditions, which makes the untaken
//!   branch unreachable (TDL202) and any Augment-forcing assignment
//!   inside it moot.
//!
//! Both axes are finite-height join semilattices, so the interprocedural
//! fixpoint over return values converges without widening (the framework
//! hook still guards the ring case).

use td_model::{BinOp, Body, Expr, Literal, Method, MethodId, Schema, Specializer, Stmt};

use crate::framework::CallGraph;

/// Nullness axis: `Bottom < {NonNull, Null} < Top`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Nullness {
    /// No value observed yet (unreachable / uninitialized analysis state).
    Bottom,
    /// Provably never null.
    NonNull,
    /// Provably always null.
    Null,
    /// May or may not be null.
    Top,
}

impl Nullness {
    fn join(self, other: Nullness) -> Nullness {
        use Nullness::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (a, b) if a == b => a,
            _ => Top,
        }
    }
}

/// Constness axis: `Bottom < Int(v) | Bool(b) < Top`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constness {
    /// No value observed yet.
    Bottom,
    /// A known integer constant.
    Int(i64),
    /// A known boolean constant.
    Bool(bool),
    /// Not a known constant.
    Top,
}

impl Constness {
    fn join(self, other: Constness) -> Constness {
        use Constness::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (a, b) if a == b => a,
            _ => Top,
        }
    }
}

/// One abstract value: the product of the two axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsVal {
    /// Nullness of the value.
    pub null: Nullness,
    /// Constness of the value.
    pub cval: Constness,
}

impl AbsVal {
    /// The least element.
    pub const BOTTOM: AbsVal = AbsVal {
        null: Nullness::Bottom,
        cval: Constness::Bottom,
    };

    /// The greatest element (no information).
    pub const TOP: AbsVal = AbsVal {
        null: Nullness::Top,
        cval: Constness::Top,
    };

    /// A definitely-null value.
    pub const NULL: AbsVal = AbsVal {
        null: Nullness::Null,
        cval: Constness::Top,
    };

    /// A non-null, non-constant value.
    pub const NON_NULL: AbsVal = AbsVal {
        null: Nullness::NonNull,
        cval: Constness::Top,
    };

    fn int(v: i64) -> AbsVal {
        AbsVal {
            null: Nullness::NonNull,
            cval: Constness::Int(v),
        }
    }

    fn bool(b: bool) -> AbsVal {
        AbsVal {
            null: Nullness::NonNull,
            cval: Constness::Bool(b),
        }
    }

    /// Joins `other` into `self`; returns true iff `self` changed.
    pub fn join_with(&mut self, other: &AbsVal) -> bool {
        let next = AbsVal {
            null: self.null.join(other.null),
            cval: self.cval.join(other.cval),
        };
        let changed = next != *self;
        *self = next;
        changed
    }

    /// True when the value is provably the null reference.
    pub fn is_definitely_null(&self) -> bool {
        self.null == Nullness::Null
    }
}

/// The abstract value a formal parameter starts with: primitive
/// specializers guarantee a non-null primitive, object specializers admit
/// null (dispatch lets null through any `Type` position).
pub fn param_abstraction(method: &Method, i: usize) -> AbsVal {
    match method.specializers.get(i) {
        Some(Specializer::Prim(_)) => AbsVal::NON_NULL,
        Some(Specializer::Type(_)) | None => AbsVal::TOP,
    }
}

/// One generic-function call observed by the reporting pass.
#[derive(Debug, Clone)]
pub struct CallRecord {
    /// The called generic function.
    pub gf: td_model::GfId,
    /// Abstract value of each actual argument.
    pub args: Vec<AbsVal>,
}

/// One `if` whose condition folded to a constant.
#[derive(Debug, Clone)]
pub struct ConstBranch {
    /// The constant the condition evaluates to.
    pub cond: bool,
    /// Number of statements (recursively) in the untaken branch.
    pub dead_stmts: usize,
}

/// What the reporting pass collects while re-evaluating a body against
/// the converged return-value facts.
#[derive(Debug, Default)]
pub struct EvalRecord {
    /// Every call observed (live branches only).
    pub calls: Vec<CallRecord>,
    /// Every constant-condition `if` observed.
    pub const_branches: Vec<ConstBranch>,
}

/// Evaluates `body` of `method` abstractly. `facts` holds the current
/// per-node return-value assignment (indexed like `graph.methods`);
/// `record`, when present, collects call sites and constant branches.
/// Returns the join over all `return` expressions, or `TOP` when the
/// body can fall through without returning.
pub fn eval_body(
    schema: &Schema,
    method: MethodId,
    body: &Body,
    graph: &CallGraph,
    facts: &[AbsVal],
    mut record: Option<&mut EvalRecord>,
) -> AbsVal {
    let m = schema.method(method);
    // Uninitialized locals read as unknown, not bottom: the IR permits a
    // use before any assignment.
    let mut env: Vec<AbsVal> = vec![AbsVal::TOP; body.locals.len()];
    let mut ret = AbsVal::BOTTOM;
    eval_stmts(
        schema,
        m,
        &body.stmts,
        graph,
        facts,
        &mut env,
        &mut ret,
        &mut record,
    );
    if ret == AbsVal::BOTTOM {
        // No return statement: a declared result would be undefined at
        // runtime; callers get no information.
        AbsVal::TOP
    } else {
        ret
    }
}

#[allow(clippy::too_many_arguments)] // one threaded evaluation context
fn eval_stmts(
    schema: &Schema,
    m: &Method,
    stmts: &[Stmt],
    graph: &CallGraph,
    facts: &[AbsVal],
    env: &mut Vec<AbsVal>,
    ret: &mut AbsVal,
    record: &mut Option<&mut EvalRecord>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => {
                let v = eval_expr(schema, m, value, graph, facts, env, record);
                if let Some(slot) = env.get_mut(var.index()) {
                    *slot = v;
                }
            }
            Stmt::Expr(e) => {
                eval_expr(schema, m, e, graph, facts, env, record);
            }
            Stmt::Return(e) => {
                let v = eval_expr(schema, m, e, graph, facts, env, record);
                ret.join_with(&v);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = eval_expr(schema, m, cond, graph, facts, env, record);
                if let Constness::Bool(b) = c.cval {
                    // The condition is decided: only the live branch
                    // executes (and only it is observed by the record).
                    let dead = if b { else_branch } else { then_branch };
                    if let Some(r) = record.as_deref_mut() {
                        r.const_branches.push(ConstBranch {
                            cond: b,
                            dead_stmts: count_stmts(dead),
                        });
                    }
                    let live = if b { then_branch } else { else_branch };
                    eval_stmts(schema, m, live, graph, facts, env, ret, record);
                } else {
                    // Both branches may run: evaluate each against a copy
                    // of the environment and join the variable states.
                    let mut then_env = env.clone();
                    eval_stmts(
                        schema,
                        m,
                        then_branch,
                        graph,
                        facts,
                        &mut then_env,
                        ret,
                        record,
                    );
                    eval_stmts(schema, m, else_branch, graph, facts, env, ret, record);
                    for (slot, t) in env.iter_mut().zip(then_env.iter()) {
                        slot.join_with(t);
                    }
                }
            }
        }
    }
}

fn eval_expr(
    schema: &Schema,
    m: &Method,
    e: &Expr,
    graph: &CallGraph,
    facts: &[AbsVal],
    env: &[AbsVal],
    record: &mut Option<&mut EvalRecord>,
) -> AbsVal {
    match e {
        Expr::Param(i) => param_abstraction(m, *i),
        Expr::Var(v) => env.get(v.index()).copied().unwrap_or(AbsVal::TOP),
        Expr::Lit(Literal::Int(v)) => AbsVal::int(*v),
        Expr::Lit(Literal::Bool(b)) => AbsVal::bool(*b),
        Expr::Lit(Literal::Float(_)) | Expr::Lit(Literal::Str(_)) => AbsVal::NON_NULL,
        Expr::Lit(Literal::Null) => AbsVal::NULL,
        Expr::Call { gf, args } => {
            let arg_vals: Vec<AbsVal> = args
                .iter()
                .map(|a| eval_expr(schema, m, a, graph, facts, env, record))
                .collect();
            if let Some(r) = record.as_deref_mut() {
                r.calls.push(CallRecord {
                    gf: *gf,
                    args: arg_vals,
                });
            }
            call_result(schema, *gf, graph, facts)
        }
        Expr::BinOp { op, lhs, rhs } => {
            let l = eval_expr(schema, m, lhs, graph, facts, env, record);
            let r = eval_expr(schema, m, rhs, graph, facts, env, record);
            fold_binop(*op, l, r)
        }
    }
}

/// Abstract result of calling `gf`: the declared-no-result case is a
/// definite null (mirroring `Schema::static_expr_type`); otherwise the
/// join over the return-value facts of the function's methods.
fn call_result(schema: &Schema, gf: td_model::GfId, graph: &CallGraph, facts: &[AbsVal]) -> AbsVal {
    let g = schema.gf(gf);
    if g.result.is_none() {
        return AbsVal::NULL;
    }
    let mut out = AbsVal::BOTTOM;
    for &m in &g.methods {
        match graph.node_of(m) {
            Some(node) => {
                out.join_with(&facts[node]);
            }
            None => return AbsVal::TOP,
        }
    }
    if out == AbsVal::BOTTOM {
        // No methods: the call cannot dispatch; claim nothing.
        AbsVal::TOP
    } else {
        out
    }
}

fn fold_binop(op: BinOp, l: AbsVal, r: AbsVal) -> AbsVal {
    use Constness::*;
    let cval = match (op, l.cval, r.cval) {
        (BinOp::Add, Int(a), Int(b)) => a.checked_add(b).map_or(Top, Int),
        (BinOp::Sub, Int(a), Int(b)) => a.checked_sub(b).map_or(Top, Int),
        (BinOp::Mul, Int(a), Int(b)) => a.checked_mul(b).map_or(Top, Int),
        (BinOp::Div, Int(a), Int(b)) => a.checked_div(b).map_or(Top, Int),
        (BinOp::Lt, Int(a), Int(b)) => Bool(a < b),
        (BinOp::Eq, Int(a), Int(b)) => Bool(a == b),
        (BinOp::Eq, Bool(a), Bool(b)) => Bool(a == b),
        (BinOp::And, Bool(a), Bool(b)) => Bool(a && b),
        (BinOp::Or, Bool(a), Bool(b)) => Bool(a || b),
        // Short-circuit absorption: one decided operand can decide the op.
        (BinOp::And, Bool(false), _) | (BinOp::And, _, Bool(false)) => Bool(false),
        (BinOp::Or, Bool(true), _) | (BinOp::Or, _, Bool(true)) => Bool(true),
        _ => Top,
    };
    AbsVal {
        null: Nullness::NonNull,
        cval,
    }
}

fn count_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => 1 + count_stmts(then_branch) + count_stmts(else_branch),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_joins_are_semilattices() {
        use Nullness::*;
        assert_eq!(Null.join(Null), Null);
        assert_eq!(Null.join(NonNull), Top);
        assert_eq!(Bottom.join(Null), Null);
        use Constness as C;
        assert_eq!(C::Int(3).join(C::Int(3)), C::Int(3));
        assert_eq!(C::Int(3).join(C::Int(4)), C::Top);
        assert_eq!(C::Bottom.join(C::Bool(true)), C::Bool(true));
    }

    #[test]
    fn binop_folding_and_poisoning() {
        let three = AbsVal {
            null: Nullness::NonNull,
            cval: Constness::Int(3),
        };
        let four = AbsVal {
            null: Nullness::NonNull,
            cval: Constness::Int(4),
        };
        assert_eq!(fold_binop(BinOp::Add, three, four).cval, Constness::Int(7));
        assert_eq!(
            fold_binop(BinOp::Lt, three, four).cval,
            Constness::Bool(true)
        );
        assert_eq!(
            fold_binop(BinOp::Add, three, AbsVal::TOP).cval,
            Constness::Top
        );
        // Division by zero degrades to Top rather than panicking.
        let zero = AbsVal {
            null: Nullness::NonNull,
            cval: Constness::Int(0),
        };
        assert_eq!(fold_binop(BinOp::Div, three, zero).cval, Constness::Top);
        // Short-circuit: false && anything is false.
        let f = AbsVal::bool(false);
        assert_eq!(
            fold_binop(BinOp::And, f, AbsVal::TOP).cval,
            Constness::Bool(false)
        );
    }

    #[test]
    fn count_stmts_descends() {
        let inner = Stmt::Return(Expr::int(1));
        let outer = Stmt::If {
            cond: Expr::Lit(Literal::Bool(true)),
            then_branch: vec![inner.clone()],
            else_branch: vec![inner],
        };
        assert_eq!(count_stmts(&[outer]), 3);
    }
}
