//! # td-cli — the `tdv` command-line tool
//!
//! A thin, testable command layer over the typederive library. Schemas
//! are read from files in the text DSL ([`td_model::text`]).
//!
//! ```text
//! tdv check     <schema.td>                         parse + validate + stats
//! tdv show      <schema.td>                         hierarchy, methods, stats
//! tdv dot       <schema.td>                         Graphviz DOT export
//! tdv applicable <schema.td> <Type> <a1,a2,…>       IsApplicable classification
//! tdv project   <schema.td> <Type> <a1,a2,…>        derive; print summary + refactored schema
//!                                       (--json: the canonical derivation record)
//! tdv lint      <schema.td> [<Type> <a1,a2,…>]      static schema & projection-safety analysis
//! tdv analyze   <schema.td> [<Type> <a1,a2,…>]      interprocedural abstract interpretation
//! tdv batch     <schema.td> <requests.txt> [N]      derive a request fleet over N threads
//! tdv stats     <schema.td> <Type> <a1,a2,…>        span/metrics telemetry for one derivation
//! tdv explain   <schema.td> <Type> <a1,a2,…> <m>    why did method m (not) survive?
//! tdv audit     <schema.td> <Type> <a1,a2,…>        baseline strategy audit
//! tdv extent    <schema.td> <data.td> <Type>        list the deep extent
//! tdv call      <schema.td> <data.td> <gf> <args>   execute a generic-function call
//! tdv serve     [addr] [flags]                      run the multi-tenant derivation server
//! tdv client    <addr> <METHOD> <path> [body|@file] one HTTP request against a server
//! tdv top       <addr>                              live ops console over /v1/stats
//! tdv trace-verify <trace.json>                     validate a Chrome trace artifact
//! ```
//!
//! Every command accepts `--trace <file>` (write a Chrome trace-event
//! JSON of the run, loadable in Perfetto) and `--metrics` (append the
//! flat span/metrics summary to the output); both turn the `td_telemetry`
//! collection switch on for the duration of the command.
//!
//! Every command is a pure function from arguments to output text, so the
//! test suite drives [`run`] directly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt::Write as _;
use td_baselines::{
    audit_all, DerivationStrategy, LocalEdgeStrategy, PaperStrategy, RootPlacementStrategy,
    StandaloneStrategy,
};
use td_core::{explain, project, Engine, ProjectionOptions};
use td_driver::BatchDeriver;
use td_model::{parse_schema, parse_schema_lenient, AnalysisPrecision, AttrId, Schema, TypeId};
use td_store::{parse_objects, Database, Value};

/// A CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code to use.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 1,
    }
}

/// Usage text.
pub const USAGE: &str = "\
tdv — type derivation using the projection operation

USAGE:
  tdv check      <schema.td>
  tdv show       <schema.td>
  tdv dot        <schema.td>
  tdv applicable <schema.td> <Type> <attr,attr,…> [--engine E]
  tdv project    <schema.td> <Type> <attr,attr,…> [--engine E] [--json]
  tdv lint       <schema.td> [<Type> <attr,attr,…>] [--json] [--sarif]
                 [--deny warnings]
  tdv analyze    <schema.td> [<Type> <attr,attr,…>] [--json] [--sarif]
                 [--precision syntactic|semantic] [--deny warnings]
  tdv batch      <schema.td> <requests.txt> [threads] [--engine E]
  tdv stats      <schema.td> <Type> <attr,attr,…> [--engine E]
  tdv explain    <schema.td> <Type> <attr,attr,…> <method-label>
  tdv audit      <schema.td> <Type> <attr,attr,…>
  tdv extent     <schema.td> <data.td> <Type>
  tdv call       <schema.td> <data.td> <gf> <arg,arg,…>
  tdv serve      [addr] [--port-file F] [--threads N] [--io-threads N]
                 [--queue-slots N] [--snapshot-dir DIR] [--access-log F]
                 [--slow-trace-dir DIR] [--slow-threshold-ms N]
                 [--slo-objective-ms N]
  tdv client     <addr> <METHOD> <path> [body | @bodyfile]
                 [--trace-id HEX32]
  tdv top        <addr> [--interval MS] [--iterations N]
  tdv trace-verify <trace.json>
  tdv watch      <addr> --tenant T --schema S [--type Ty --attrs a,b,…]
                 [--max-events N]
  tdv snapshot   save <schema.td> <out.tds> | load <file.tds>
                 | inspect <file.tds>

call arguments: object names from the data file, or literals
(42, 3.5, true, \"text\", null).

batch request files hold one `Type: attr,attr,…` projection per line
(# starts a comment); threads defaults to the machine's cores.

`applicable`, `project` and `batch` accept --engine {indexed,stack,fixpoint}
to pick the IsApplicable implementation (default: indexed, the
condensation-index engine; stack is the paper's §4.1 algorithm; fixpoint
is the reference oracle). All three classify identically.

`lint` runs the TDL static checks (dispatch ambiguity, precedence
conflicts, optimistic-cycle audit, projection safety, Augment hazards)
over the schema, plus the given projection request when one is supplied.
--json emits a machine-readable report; --sarif emits SARIF 2.1.0 for
code-scanning upload; --deny warnings exits nonzero on warnings as well
as errors.

`analyze` runs the interprocedural abstract-interpretation checks
(TDL201 null-argument dispatch traps, TDL202 constant branches, TDL203
shadowed-unreachable methods, TDL204 dead projected attributes, TDL205
interprocedural Augment flow) over the whole schema, plus the
projection-scoped checks when a view is supplied. --precision semantic
additionally refines the applicability index with semantic attribute
footprints — strictly fewer fallback methods, identical verdicts.
--json/--sarif/--deny work as for `lint`.

Every command accepts --trace <file> (write a Chrome trace-event JSON of
the run — load it at https://ui.perfetto.dev) and --metrics (append the
flat span/metrics summary). `stats` derives the view with telemetry on
and prints only that summary.

`project --json` prints the canonical derivation record — byte-identical
to what `POST /v1/project` on a running `tdv serve` answers for the same
schema and view.

`serve` binds addr (default 127.0.0.1:7171; port 0 picks a free port,
written to --port-file when given) and exposes the derivation pipeline
as a multi-tenant JSON API; SIGTERM drains in-flight requests and exits
cleanly. With --snapshot-dir, registered tenant schemas are persisted
as warm binary snapshots and restored at the next boot — the registry
survives restarts. `client` performs one request against it: a 2xx body
goes to stdout verbatim, anything else exits nonzero with the error
body. With --trace-id, the request carries a `traceparent` header so the
server correlates every span, the flight-recorder record and the
access-log line under your id (the response echoes it back).

Observability flags on `serve`: --access-log appends one JSON line per
request (trace id, tenant, endpoint, status, queue/exec/total µs),
flushed per line and surviving the SIGTERM drain; --slow-trace-dir
dumps a Chrome trace `slow-{trace}.json` for every request slower than
--slow-threshold-ms (default: the SLO objective) — load it at
https://ui.perfetto.dev; --slo-objective-ms sets the latency objective
behind the windowed SLO burn-rate gauge (default 500ms). `/v1/stats`
and `/metrics` expose sliding 60-second p50/p95/p99 and error/429 rates
per endpoint and per tenant alongside the cumulative series.

`top` is a polling ops console over `/v1/stats` and
`/v1/debug/requests`: live windowed throughput, tail latencies,
per-tenant backlog and the most recent requests, redrawn every
--interval ms (default 1000). --iterations N renders N frames to
stdout and exits (scripting/CI mode). `trace-verify` parses a Chrome
trace artifact (e.g. a slow-trace capture) and fails nonzero unless it
is well-formed.

`watch` subscribes to a server's change feed (`GET /v1/watch`): every
re-registration of the named tenant schema streams a `change` event with
the structural diff, the cache entries the delta invalidation carried
across versions, and — when --type/--attrs give a view — the
applicability verdicts, lint findings and dispatch winners that changed.
Events print as they arrive; --max-events N exits after N events
(the initial `hello` counts, so N=2 sees one change).

`snapshot save` parses a schema, warms every derivation cache and
writes a versioned, checksummed binary snapshot; `load` restores it
(O(file) — no parse, no re-derivation); `inspect` prints the section
table, metadata and content counts. `project` accepts --snapshot to
read its schema argument as a .tds snapshot instead of text — the
derivation output is byte-identical either way (CI enforces this).
";

/// Connects to a server's `GET /v1/watch` change feed and streams SSE
/// frames to stdout as they arrive. With `max_events > 0`, returns after
/// that many events (`hello` and `change` lines both count; ping
/// comments do not); with 0 it streams until the server hangs up.
fn watch_stream(addr: &str, query: &str, max_events: u64) -> Result<String, CliError> {
    use std::io::{BufRead, BufReader, Write as IoWrite};

    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| fail(format!("watch: cannot connect to {addr}: {e}")))?;
    // The server pings idle streams every 10s; a 60s ceiling only trips
    // when the peer is truly gone.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(60)));
    stream
        .write_all(
            format!("GET /v1/watch?{query} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| fail(format!("watch: cannot send subscription: {e}")))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| fail(format!("watch: no response: {e}")))?;
    if !line.starts_with("HTTP/1.1 200") {
        let status = line.trim().to_string();
        let mut rest = String::new();
        let _ = std::io::Read::read_to_string(&mut reader, &mut rest);
        let body = rest.rsplit("\r\n\r\n").next().unwrap_or("").trim();
        return Err(fail(format!("watch: server answered {status}: {body}")));
    }
    // Skip the remaining response headers.
    loop {
        line.clear();
        if reader
            .read_line(&mut line)
            .map_err(|e| fail(format!("watch: {e}")))?
            == 0
            || line == "\r\n"
        {
            break;
        }
    }

    let mut seen = 0u64;
    let mut counting = false;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| fail(format!("watch: stream broke: {e}")))?;
        if n == 0 {
            break; // server hung up
        }
        let line = line.trim_end_matches(['\r', '\n']);
        println!("{line}");
        let _ = std::io::stdout().flush();
        if line.starts_with("event: ") {
            seen += 1;
            counting = true;
        }
        // A frame ends at its blank line; only stop on a completed one.
        if line.is_empty() && counting {
            counting = false;
            if max_events > 0 && seen >= max_events {
                break;
            }
        }
    }
    Ok(format!("tdv watch: received {seen} event(s)\n"))
}

/// One rendered frame of the `tdv top` console: windowed throughput and
/// tails from `/v1/stats` plus the newest flight-recorder rows from
/// `/v1/debug/requests`.
fn top_frame(addr: &str) -> Result<String, CliError> {
    use td_server::json::Json;
    let fetch = |path: &str| -> Result<Json, CliError> {
        let (status, body) = td_server::http_call(addr, "GET", path, None)
            .map_err(|e| fail(format!("top: cannot reach {addr}: {e}")))?;
        if status != 200 {
            return Err(fail(format!("top: {path} answered HTTP {status}")));
        }
        Json::parse(&body).map_err(|e| fail(format!("top: {path} answered invalid JSON: {e}")))
    };
    let stats = fetch("/v1/stats")?;
    let debug = fetch("/v1/debug/requests")?;

    let mut out = String::new();
    let stats = stats
        .as_obj()
        .ok_or_else(|| fail("top: /v1/stats is not an object"))?;
    let total = stats
        .get("requests_total")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let _ = writeln!(out, "tdv top — http://{addr} — {total} request(s) served");
    let Some(window) = stats.get("window").and_then(Json::as_obj) else {
        let _ = writeln!(out, "(server exposes no window section in /v1/stats)");
        return Ok(out);
    };
    let num = |key: &str| window.get(key).and_then(Json::as_usize).unwrap_or(0);
    let _ = writeln!(
        out,
        "last {}s: {} request(s), {} error(s), {} throttled (429), queue depth {}",
        num("seconds"),
        num("requests_60s"),
        num("errors_60s"),
        num("throttled_429_60s"),
        num("queue_depth"),
    );
    let _ = writeln!(
        out,
        "SLO: objective {}µs, burn rate {:.2}x, spans dropped {}",
        num("slo_objective_us"),
        num("slo_burn_rate_milli") as f64 / 1000.0,
        num("spans_dropped_total"),
    );
    let render_group = |out: &mut String, title: &str, key: &str| {
        let Some(group) = window.get(key).and_then(Json::as_obj) else {
            return;
        };
        if group.is_empty() {
            return;
        }
        let _ = writeln!(
            out,
            "\n{title:<16} {:>8} {:>9} {:>9} {:>9}",
            "count", "p50µs", "p95µs", "p99µs"
        );
        for (name, stats) in group {
            let Some(stats) = stats.as_obj() else {
                continue;
            };
            let stat = |s: &str| stats.get(s).and_then(Json::as_usize).unwrap_or(0);
            let _ = writeln!(
                out,
                "{name:<16} {:>8} {:>9} {:>9} {:>9}",
                stat("window_count"),
                stat("p50"),
                stat("p95"),
                stat("p99"),
            );
        }
    };
    render_group(&mut out, "ENDPOINT", "endpoints");
    render_group(&mut out, "TENANT", "tenants");
    if let Some(depths) = window.get("queue_depth_by_tenant").and_then(Json::as_obj) {
        let busy: Vec<String> = depths
            .iter()
            .filter_map(|(t, d)| d.as_usize().map(|d| (t, d)))
            .map(|(t, d)| format!("{t}={d}"))
            .collect();
        if !busy.is_empty() {
            let _ = writeln!(out, "\nqueue by tenant: {}", busy.join(" "));
        }
    }
    let recent = debug
        .as_obj()
        .and_then(|o| o.get("requests"))
        .and_then(Json::as_arr)
        .unwrap_or(&[]);
    if !recent.is_empty() {
        let _ = writeln!(
            out,
            "\nRECENT (newest first)  {:<34} {:<10} {:>6} {:>9} {:>9}",
            "trace", "endpoint", "status", "queueµs", "totalµs"
        );
        for row in recent.iter().take(8) {
            let Some(row) = row.as_obj() else { continue };
            let s = |k: &str| row.get(k).and_then(Json::as_str).unwrap_or("?");
            let n = |k: &str| row.get(k).and_then(Json::as_usize).unwrap_or(0);
            let _ = writeln!(
                out,
                "                       {:<34} {:<10} {:>6} {:>9} {:>9}",
                s("trace"),
                s("endpoint"),
                n("status"),
                n("queue_us"),
                n("total_us"),
            );
        }
    }
    Ok(out)
}

/// Strips a `--engine=NAME` / `--engine NAME` flag out of `args`,
/// returning the remaining positional arguments and the chosen engine
/// (default: [`Engine::Indexed`]).
fn extract_engine(args: &[String]) -> Result<(Vec<String>, Engine), CliError> {
    let mut engine = Engine::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--engine=") {
            engine = name.parse().map_err(fail)?;
        } else if a == "--engine" {
            let name = it
                .next()
                .ok_or_else(|| fail("--engine: missing value (indexed, stack or fixpoint)"))?;
            engine = name.parse().map_err(fail)?;
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, engine))
}

/// Strips `--json` and `--deny warnings` / `--deny=warnings` out of
/// `args` for the `lint` command, returning the remaining positional
/// arguments and the two switches.
fn extract_lint_flags(args: &[String]) -> Result<(Vec<String>, bool, bool), CliError> {
    let mut json = false;
    let mut deny_warnings = false;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json = true;
        } else if let Some(level) = a.strip_prefix("--deny=") {
            deny_lint_level(level)?;
            deny_warnings = true;
        } else if a == "--deny" {
            let level = it
                .next()
                .ok_or_else(|| fail("--deny: missing value (warnings)"))?;
            deny_lint_level(level)?;
            deny_warnings = true;
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, json, deny_warnings))
}

/// Telemetry switches shared by every command.
#[derive(Debug, Default)]
struct TelemetryFlags {
    /// `--trace <file>`: write a Chrome trace-event JSON of the run.
    trace: Option<String>,
    /// `--metrics`: append the flat span/metrics summary to the output.
    metrics: bool,
}

impl TelemetryFlags {
    fn active(&self) -> bool {
        self.trace.is_some() || self.metrics
    }
}

/// Strips `--trace <file>` / `--trace=<file>` and `--metrics` out of
/// `args`, returning the remaining positional arguments and the flags.
fn extract_telemetry_flags(args: &[String]) -> Result<(Vec<String>, TelemetryFlags), CliError> {
    let mut flags = TelemetryFlags::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(path) = a.strip_prefix("--trace=") {
            flags.trace = Some(path.to_string());
        } else if a == "--trace" {
            let path = it
                .next()
                .ok_or_else(|| fail("--trace: missing output file"))?;
            flags.trace = Some(path.clone());
        } else if a == "--metrics" {
            flags.metrics = true;
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, flags))
}

/// Strips a boolean `name` switch out of `args`, reporting whether it
/// was present.
fn extract_switch(args: &[String], name: &str) -> (Vec<String>, bool) {
    let mut found = false;
    let rest = args
        .iter()
        .filter(|a| {
            let hit = a.as_str() == name;
            found |= hit;
            !hit
        })
        .cloned()
        .collect();
    (rest, found)
}

/// Strips `--precision <syntactic|semantic>` / `--precision=<p>` out of
/// `args`. Absent means [`AnalysisPrecision::Syntactic`], the default.
fn extract_precision_flag(args: &[String]) -> Result<(Vec<String>, AnalysisPrecision), CliError> {
    let mut precision = AnalysisPrecision::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if let Some(v) = a.strip_prefix("--precision=") {
            Some(v.to_string())
        } else if a == "--precision" {
            Some(
                it.next()
                    .ok_or_else(|| fail("--precision: missing value (syntactic|semantic)"))?
                    .clone(),
            )
        } else {
            rest.push(a.clone());
            None
        };
        if let Some(v) = value {
            precision = v
                .parse()
                .map_err(|e: String| fail(format!("--precision: {e}")))?;
        }
    }
    Ok((rest, precision))
}

fn deny_lint_level(level: &str) -> Result<(), CliError> {
    if level == "warnings" {
        Ok(())
    } else {
        Err(fail(format!(
            "--deny: unknown level `{level}` (only `warnings` is supported)"
        )))
    }
}

/// Runs one command. `args` excludes the program name. Returns the text
/// to print on success.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (args, engine) = extract_engine(args)?;
    let (args, mut telemetry) = extract_telemetry_flags(&args)?;
    // `stats` IS the metrics exporter, so it forces collection on.
    if args.first().is_some_and(|c| c == "stats") {
        telemetry.metrics = true;
    }
    if !telemetry.active() {
        return run_command(&args, engine);
    }
    // Collect from a clean slate, and always restore the disabled default
    // — even when the command fails.
    td_telemetry::set_enabled(true);
    let _ = td_telemetry::drain();
    td_telemetry::metrics::reset();
    let result = run_command(&args, engine);
    td_telemetry::set_enabled(false);
    let events = td_telemetry::drain();
    // Ring overflow is silent at collection time; surface it so a
    // truncated `tdv stats` / `--metrics` summary announces itself.
    let dropped = td_telemetry::dropped_events_total();
    if dropped > 0 {
        td_telemetry::metrics::gauge("telemetry/spans_dropped_total").set(dropped as i64);
    }
    let snapshot = td_telemetry::metrics::snapshot();
    td_telemetry::metrics::reset();
    let mut out = result?;
    if let Some(path) = &telemetry.trace {
        std::fs::write(path, td_telemetry::chrome_trace(&events))
            .map_err(|e| fail(format!("--trace: cannot write `{path}`: {e}")))?;
        let _ = writeln!(out, "trace: {} spans written to {path}", events.len());
    }
    if telemetry.metrics {
        if !out.is_empty() && !out.ends_with("\n\n") {
            out.push('\n');
        }
        out.push_str(&td_telemetry::render_summary(&events, &snapshot));
    }
    Ok(out)
}

fn run_command(args: &[String], engine: Engine) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(fail(USAGE));
    };
    match command.as_str() {
        "check" => {
            let schema = load(args.get(1))?;
            let mut out = String::new();
            let _ = writeln!(out, "schema OK");
            let _ = writeln!(out, "{}", schema.stats());
            Ok(out)
        }
        "show" => {
            let schema = load(args.get(1))?;
            let mut out = String::new();
            let _ = writeln!(out, "{}", schema.render_hierarchy());
            let _ = writeln!(out, "{}", schema.render_methods());
            let _ = writeln!(out, "{}", schema.stats());
            Ok(out)
        }
        "dot" => {
            let schema = load(args.get(1))?;
            Ok(schema.render_dot())
        }
        "applicable" => {
            let schema = load(args.get(1))?;
            let (source, projection) = view_args(&schema, args.get(2), args.get(3))?;
            let r = match engine {
                Engine::Indexed => {
                    td_core::compute_applicability_indexed(&schema, source, &projection, false)
                }
                Engine::Stack => {
                    td_core::compute_applicability(&schema, source, &projection, false)
                }
                Engine::Fixpoint => {
                    td_core::compute_applicability_fixpoint(&schema, source, &projection)
                }
            }
            .map_err(|e| fail(e.to_string()))?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "applicable:     {}",
                r.applicable
                    .iter()
                    .map(|&m| schema.method_label(m).to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = writeln!(
                out,
                "not applicable: {}",
                r.not_applicable
                    .iter()
                    .map(|&m| schema.method_label(m).to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            Ok(out)
        }
        "project" => {
            let (args, json) = extract_switch(args, "--json");
            let (args, from_snapshot) = extract_switch(&args, "--snapshot");
            let mut schema = if from_snapshot {
                load_snapshot_file(args.get(1))?.0
            } else {
                load(args.get(1))?
            };
            let (source, projection) = view_args(&schema, args.get(2), args.get(3))?;
            let opts = ProjectionOptions {
                engine,
                ..ProjectionOptions::default()
            };
            let d = project(&mut schema, source, &projection, &opts)
                .map_err(|e| fail(e.to_string()))?;
            schema.dispatch_cache_stats().publish();
            if json {
                // The canonical machine-readable record — the same
                // renderer the server's /v1/project endpoint uses, so
                // the two outputs compare byte for byte (the CI smoke
                // job holds us to that). Invariant violations are
                // reported in-band as `"invariants_ok": false`.
                return Ok(td_server::derivation_json(&schema, &d));
            }
            let mut out = String::new();
            let _ = writeln!(out, "{}", d.summary(&schema));
            let _ = writeln!(out, "{}", schema.render_hierarchy());
            if !d.invariants_ok() {
                return Err(fail(format!(
                    "{out}\nINVARIANT VIOLATIONS: {:#?}",
                    d.invariants
                )));
            }
            Ok(out)
        }
        "lint" => {
            let (args, sarif) = extract_switch(args, "--sarif");
            let (args, json, deny_warnings) = extract_lint_flags(&args)?;
            let path = args
                .get(1)
                .ok_or_else(|| fail("missing schema file argument"))?;
            let src = std::fs::read_to_string(path)
                .map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
            // Lenient parse: structural problems (precedence conflicts,
            // dangling references, …) become TDL diagnostics instead of a
            // load failure. Lex/syntax errors still fail here.
            let schema = parse_schema_lenient(&src).map_err(|e| fail(format!("{path}: {e}")))?;
            let request = if args.get(2).is_some() {
                Some(view_args(&schema, args.get(2), args.get(3))?)
            } else {
                None
            };
            let report = td_core::lint(&schema, request.as_ref().map(|(t, a)| (*t, a)));
            schema.dispatch_cache_stats().publish();
            let out = if sarif {
                report.render_sarif("td-lint")
            } else if json {
                report.render_json()
            } else {
                report.render_text()
            };
            if report.fails(deny_warnings) {
                Err(CliError {
                    message: out,
                    code: 1,
                })
            } else {
                Ok(out)
            }
        }
        "analyze" => {
            let (args, sarif) = extract_switch(args, "--sarif");
            let (args, precision) = extract_precision_flag(&args)?;
            let (args, json, deny_warnings) = extract_lint_flags(&args)?;
            let path = args
                .get(1)
                .ok_or_else(|| fail("missing schema file argument"))?;
            let src = std::fs::read_to_string(path)
                .map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
            let schema = parse_schema_lenient(&src).map_err(|e| fail(format!("{path}: {e}")))?;
            let request = if args.get(2).is_some() {
                Some(view_args(&schema, args.get(2), args.get(3))?)
            } else {
                None
            };
            let outcome =
                td_analyze::analyze(&schema, request.as_ref().map(|(t, a)| (*t, a)), precision);
            schema.dispatch_cache_stats().publish();
            let mut out = if sarif {
                outcome.report.render_sarif("td-analyze")
            } else if json {
                outcome.report.render_json()
            } else {
                outcome.report.render_text()
            };
            if !sarif && !json {
                let stats = &outcome.stats;
                let _ = writeln!(
                    out,
                    "analysis: precision {}, schema pass {} µs{}, request pass {} µs{}",
                    stats.precision,
                    stats.schema_micros,
                    if stats.schema_cached { " (cached)" } else { "" },
                    stats.request_micros,
                    if stats.request_cached {
                        " (cached)"
                    } else {
                        ""
                    },
                );
                if let Some(ratio) = stats.demotion_ratio() {
                    let _ = writeln!(
                        out,
                        "semantic footprints: {} of {} fallback method(s) demoted ({:.0}%)",
                        stats.fallback_syntactic - stats.fallback_semantic,
                        stats.fallback_syntactic,
                        ratio * 100.0,
                    );
                }
            }
            if outcome.report.fails(deny_warnings) {
                Err(CliError {
                    message: out,
                    code: 1,
                })
            } else {
                Ok(out)
            }
        }
        "batch" => {
            let schema = load(args.get(1))?;
            let path = args
                .get(2)
                .ok_or_else(|| fail("batch: missing requests file argument"))?;
            let threads = args
                .get(3)
                .map(|t| {
                    t.parse::<usize>()
                        .map_err(|_| fail(format!("batch: `{t}` is not a thread count")))
                })
                .transpose()?;
            let src = std::fs::read_to_string(path)
                .map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
            let requests = td_driver::parse_requests(&schema, &src)
                .map_err(|e| fail(format!("{path}: {e}")))?;
            let mut deriver = BatchDeriver::new(&schema)
                .options(ProjectionOptions {
                    engine,
                    ..ProjectionOptions::default()
                })
                .lint(true);
            if let Some(threads) = threads {
                deriver = deriver.threads(threads);
            }
            deriver.warm();
            let outcome = deriver.run(&requests);
            let mut out = outcome.render(&schema);
            let _ = writeln!(out, "{}", outcome.stats);
            if outcome.all_ok() {
                Ok(out)
            } else {
                Err(CliError {
                    message: out,
                    code: 1,
                })
            }
        }
        "stats" => {
            let mut schema = load(args.get(1))?;
            let (source, projection) = view_args(&schema, args.get(2), args.get(3))?;
            let opts = ProjectionOptions {
                engine,
                ..ProjectionOptions::default()
            };
            let d = project(&mut schema, source, &projection, &opts)
                .map_err(|e| fail(e.to_string()))?;
            schema.dispatch_cache_stats().publish();
            Ok(format!(
                "derived {} — telemetry for one derivation:\n",
                schema.type_name(d.derived)
            ))
        }
        "explain" => {
            let schema = load(args.get(1))?;
            let (source, projection) = view_args(&schema, args.get(2), args.get(3))?;
            let label = args
                .get(4)
                .ok_or_else(|| fail("explain: missing method label"))?;
            let method = schema
                .method_by_label(label)
                .map_err(|e| fail(e.to_string()))?;
            let e =
                explain(&schema, source, &projection, method).map_err(|e| fail(e.to_string()))?;
            let mut out = e.render(&schema);
            if !out.ends_with('\n') {
                out.push('\n');
            }
            // Flag verdicts that rest on the §4 optimistic cycle
            // assumption: the method sits on a call ring, so its fate was
            // assumed before it was proven.
            if let Some(ring) = td_core::optimistic_cycle_ring(&schema, source, method) {
                let members = ring
                    .iter()
                    .map(|&m| format!("`{}`", schema.method_label(m)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let wording = if e.is_applicable() {
                    "this verdict relied on the §4 optimistic cycle assumption"
                } else {
                    "this verdict assumed the ring applicable, then retracted it (§4)"
                };
                let _ = writeln!(out, "note[TDL003]: {wording} (call ring: {members})");
            }
            // The explanation replays dispatch through td-model's cache;
            // show how warm the run was.
            let _ = writeln!(out, "{}", schema.dispatch_cache_stats());
            Ok(out)
        }
        "serve" => {
            let mut config = td_server::ServerConfig {
                addr: "127.0.0.1:7171".to_string(),
                ..Default::default()
            };
            let mut port_file: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| fail(format!("serve: {flag} needs a value")))
                };
                match a.as_str() {
                    "--port-file" => port_file = Some(value("--port-file")?),
                    "--snapshot-dir" => {
                        config.snapshot_dir = Some(value("--snapshot-dir")?);
                    }
                    "--threads" => {
                        config.exec_threads = value("--threads")?
                            .parse()
                            .map_err(|_| fail("serve: --threads must be a number"))?;
                    }
                    "--io-threads" => {
                        config.io_threads = value("--io-threads")?
                            .parse()
                            .map_err(|_| fail("serve: --io-threads must be a number"))?;
                    }
                    "--queue-slots" => {
                        config.queue_slots = value("--queue-slots")?
                            .parse()
                            .map_err(|_| fail("serve: --queue-slots must be a number"))?;
                    }
                    "--access-log" => {
                        config.access_log = Some(value("--access-log")?);
                    }
                    "--slow-trace-dir" => {
                        config.slow_trace_dir = Some(value("--slow-trace-dir")?);
                    }
                    "--slow-threshold-ms" => {
                        let ms: u64 = value("--slow-threshold-ms")?
                            .parse()
                            .map_err(|_| fail("serve: --slow-threshold-ms must be a number"))?;
                        config.slow_threshold_us = Some(ms.saturating_mul(1_000));
                    }
                    "--slo-objective-ms" => {
                        let ms: u64 = value("--slo-objective-ms")?
                            .parse()
                            .map_err(|_| fail("serve: --slo-objective-ms must be a number"))?;
                        config.slo_objective_us = ms.saturating_mul(1_000).max(1);
                    }
                    flag if flag.starts_with("--") => {
                        return Err(fail(format!("serve: unknown flag {flag}")));
                    }
                    addr => config.addr = addr.to_string(),
                }
            }
            let server = td_server::Server::bind(config)
                .map_err(|e| fail(format!("serve: cannot bind: {e}")))?;
            let addr = server
                .local_addr()
                .map_err(|e| fail(format!("serve: {e}")))?;
            if let Some(path) = &port_file {
                std::fs::write(path, addr.to_string())
                    .map_err(|e| fail(format!("serve: cannot write --port-file `{path}`: {e}")))?;
            }
            // Stderr, so stdout stays clean for scripted use.
            eprintln!("tdv serve: listening on http://{addr} (SIGTERM drains and exits)");
            let shutdown = td_server::install_shutdown_handler();
            server
                .run(shutdown)
                .map_err(|e| fail(format!("serve: {e}")))?;
            Ok("tdv serve: drained in-flight requests and stopped\n".to_string())
        }
        "client" => {
            let mut trace_arg: Option<String> = None;
            let mut positional: Vec<&String> = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--trace-id" => {
                        trace_arg = Some(
                            it.next()
                                .cloned()
                                .ok_or_else(|| fail("client: --trace-id needs a value"))?,
                        );
                    }
                    flag if flag.starts_with("--") => {
                        return Err(fail(format!("client: unknown flag {flag}")));
                    }
                    _ => positional.push(a),
                }
            }
            let addr = positional
                .first()
                .ok_or_else(|| fail("client: missing server address (host:port)"))?;
            let method = positional
                .get(1)
                .ok_or_else(|| fail("client: missing HTTP method"))?
                .to_ascii_uppercase();
            let path = positional
                .get(2)
                .ok_or_else(|| fail("client: missing request path"))?;
            let body = match positional.get(3) {
                None => None,
                Some(arg) => match arg.strip_prefix('@') {
                    Some(file) => Some(
                        std::fs::read(file)
                            .map_err(|e| fail(format!("client: cannot read `{file}`: {e}")))?,
                    ),
                    None => Some(arg.as_bytes().to_vec()),
                },
            };
            let trace = match &trace_arg {
                Some(s) => Some(td_telemetry::TraceId::parse(s).ok_or_else(|| {
                    fail("client: --trace-id must be 32 hex digits (or a traceparent header)")
                })?),
                None => None,
            };
            let traceparent = trace.map(|t| t.traceparent());
            let headers: Vec<(&str, &str)> = traceparent
                .iter()
                .map(|v| ("traceparent", v.as_str()))
                .collect();
            let reply = td_server::http_request(addr, &method, path, &headers, body.as_deref())
                .map_err(|e| fail(format!("client: {e}")))?;
            if let (Some(t), Some(echo)) = (trace, reply.header("traceparent")) {
                // Stderr: stdout stays the verbatim response body.
                eprintln!("tdv client: trace {t} (server echoed {echo})");
            }
            if reply.status < 400 {
                Ok(reply.body)
            } else {
                Err(CliError {
                    message: format!("HTTP {}\n{}", reply.status, reply.body),
                    code: 2,
                })
            }
        }
        "top" => {
            let mut addr: Option<String> = None;
            let mut interval_ms: u64 = 1_000;
            let mut iterations: u64 = 0;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--interval" | "--iterations" => {
                        let v: u64 = it
                            .next()
                            .ok_or_else(|| fail(format!("top: {a} needs a value")))?
                            .parse()
                            .map_err(|_| fail(format!("top: {a} must be a number")))?;
                        if a == "--interval" {
                            interval_ms = v.max(50);
                        } else {
                            iterations = v;
                        }
                    }
                    flag if flag.starts_with("--") => {
                        return Err(fail(format!("top: unknown flag {flag}")));
                    }
                    positional => {
                        if addr.is_some() {
                            return Err(fail(format!("top: unexpected argument `{positional}`")));
                        }
                        addr = Some(positional.to_string());
                    }
                }
            }
            let addr = addr.ok_or_else(|| fail("top: missing server address (host:port)"))?;
            // --iterations N: render N frames to stdout and return
            // (scripting/CI). Without it, redraw in place until the
            // server goes away.
            let mut out = String::new();
            let mut frame_no: u64 = 0;
            loop {
                let frame = top_frame(&addr)?;
                frame_no += 1;
                if iterations > 0 {
                    if frame_no > 1 {
                        out.push('\n');
                    }
                    out.push_str(&frame);
                    if frame_no >= iterations {
                        return Ok(out);
                    }
                } else {
                    use std::io::Write as IoWrite;
                    // ANSI clear-and-home keeps the console in place.
                    print!("\x1b[2J\x1b[H{frame}");
                    let _ = std::io::stdout().flush();
                }
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
        }
        "trace-verify" => {
            let path = args
                .get(1)
                .ok_or_else(|| fail("trace-verify: missing trace file"))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| fail(format!("trace-verify: cannot read `{path}`: {e}")))?;
            let spans = td_telemetry::parse_chrome_trace(&text)
                .map_err(|e| fail(format!("trace-verify: `{path}` is not a Chrome trace: {e}")))?;
            if spans.is_empty() {
                return Err(fail(format!("trace-verify: `{path}` holds no spans")));
            }
            let traces: BTreeSet<&str> = spans
                .iter()
                .filter_map(|s| s.args.get("trace").map(String::as_str))
                .collect();
            let stamped = spans
                .iter()
                .filter(|s| s.args.contains_key("trace"))
                .count();
            Ok(format!(
                "trace-verify: {path}: {} span(s), {} stamped with {} trace id(s): OK\n",
                spans.len(),
                stamped,
                traces.len(),
            ))
        }
        "watch" => {
            let mut addr = None;
            let mut tenant = None;
            let mut schema = None;
            let mut type_name = None;
            let mut attrs = None;
            let mut max_events: u64 = 0;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--tenant" | "--schema" | "--type" | "--attrs" | "--max-events" => {
                        let v = it
                            .next()
                            .ok_or_else(|| fail(format!("watch: {a} needs a value")))?;
                        match a.as_str() {
                            "--tenant" => tenant = Some(v.clone()),
                            "--schema" => schema = Some(v.clone()),
                            "--type" => type_name = Some(v.clone()),
                            "--attrs" => attrs = Some(v.clone()),
                            _ => {
                                max_events = v
                                    .parse()
                                    .map_err(|_| fail("watch: --max-events must be a number"))?;
                            }
                        }
                    }
                    flag if flag.starts_with("--") => {
                        return Err(fail(format!("watch: unknown flag {flag}")));
                    }
                    positional => {
                        if addr.is_some() {
                            return Err(fail(format!("watch: unexpected argument `{positional}`")));
                        }
                        addr = Some(positional.to_string());
                    }
                }
            }
            let addr = addr.ok_or_else(|| fail("watch: missing server address (host:port)"))?;
            let tenant = tenant.ok_or_else(|| fail("watch: --tenant is required"))?;
            let schema = schema.ok_or_else(|| fail("watch: --schema is required"))?;
            let mut query = format!("tenant={tenant}&schema={schema}");
            if let Some(t) = &type_name {
                let _ = write!(query, "&type={t}");
            }
            if let Some(a) = &attrs {
                let _ = write!(query, "&attrs={a}");
            }
            watch_stream(&addr, &query, max_events)
        }
        "audit" => {
            let schema = load(args.get(1))?;
            let (source, projection) = view_args(&schema, args.get(2), args.get(3))?;
            let strategies: Vec<&dyn DerivationStrategy> = vec![
                &PaperStrategy,
                &StandaloneStrategy,
                &RootPlacementStrategy,
                &LocalEdgeStrategy,
            ];
            let mut out = String::new();
            for result in audit_all(&strategies, &schema, source, &projection) {
                let _ = writeln!(out, "{}", result.row());
            }
            Ok(out)
        }
        "extent" => {
            let (db, names) = load_db(args.get(1), args.get(2))?;
            let ty = args.get(3).ok_or_else(|| fail("missing type argument"))?;
            let ty = db.schema().type_id(ty).map_err(|e| fail(e.to_string()))?;
            let mut out = String::new();
            for obj in db.deep_extent(ty) {
                let o = db.object(obj).map_err(|e| fail(e.to_string()))?;
                let display_name = names
                    .iter()
                    .find(|(_, &id)| id == obj)
                    .map(|(n, _)| n.as_str())
                    .unwrap_or("<anonymous>");
                let mut fields: Vec<String> = o
                    .fields()
                    .map(|(a, v)| (db.schema().attr_name(a).to_string(), v))
                    .map(|(n, v)| format!("{n} = {v}"))
                    .collect();
                fields.sort();
                let _ = writeln!(
                    out,
                    "{display_name}: {} {{ {} }}",
                    db.schema().type_name(o.ty),
                    fields.join(", ")
                );
            }
            Ok(out)
        }
        "call" => {
            let (mut db, names) = load_db(args.get(1), args.get(2))?;
            let gf_name = args
                .get(3)
                .ok_or_else(|| fail("missing generic-function argument"))?;
            let gf = db
                .schema()
                .gf_id(gf_name)
                .map_err(|e| fail(e.to_string()))?;
            let raw = args.get(4).map(String::as_str).unwrap_or("");
            let values = raw
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|tok| parse_value(tok.trim(), &names))
                .collect::<Result<Vec<Value>, CliError>>()?;
            let result = db.call(gf, &values).map_err(|e| fail(e.to_string()))?;
            Ok(format!("{result}\n"))
        }
        "snapshot" => match args.get(1).map(String::as_str) {
            Some("save") => {
                let path = args
                    .get(2)
                    .ok_or_else(|| fail("snapshot save: missing schema file argument"))?;
                let out_path = args
                    .get(3)
                    .ok_or_else(|| fail("snapshot save: missing output file argument"))?;
                let schema = load(Some(path))?;
                // Warm every derivation cache first: the point of a
                // snapshot is that loading it skips both the parse and
                // the derivation warm-up.
                schema.warm_caches();
                let meta = [("source".to_string(), path.clone())];
                td_model::write_snapshot_file(&schema, &meta, out_path)
                    .map_err(|e| fail(e.to_string()))?;
                let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
                Ok(format!(
                    "wrote {out_path}: {bytes} bytes, format v{}, {} types, {} methods\n",
                    td_model::SNAPSHOT_VERSION,
                    schema.n_types(),
                    schema.n_methods()
                ))
            }
            Some("load") => {
                let (schema, _) = load_snapshot_file(args.get(2))?;
                let stats = schema.dispatch_cache_stats();
                let mut out = String::new();
                let _ = writeln!(out, "snapshot OK");
                let _ = writeln!(out, "{}", schema.stats());
                let _ = writeln!(
                    out,
                    "warm caches: {} cpl/rank entries, {} dispatch entries, {} indexes",
                    stats.cpl_entries, stats.dispatch_entries, stats.index_entries
                );
                Ok(out)
            }
            Some("inspect") => {
                let path = args
                    .get(2)
                    .ok_or_else(|| fail("snapshot inspect: missing snapshot file argument"))?;
                let bytes =
                    std::fs::read(path).map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
                let info = td_model::snapshot_info(&bytes).map_err(|e| fail(e.to_string()))?;
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{path}: format v{}, {} bytes",
                    info.version, info.file_bytes
                );
                for (key, value) in &info.meta {
                    let _ = writeln!(out, "  meta {key} = {value:?}");
                }
                for (name, len, checksum) in &info.sections {
                    let _ = writeln!(
                        out,
                        "  section {name:<9} {len:>9} bytes  fnv1a {checksum:016x}"
                    );
                }
                let _ = writeln!(
                    out,
                    "  {} names, {} types, {} attrs, {} gfs, {} methods",
                    info.n_names, info.n_types, info.n_attrs, info.n_gfs, info.n_methods
                );
                let _ = writeln!(
                    out,
                    "  warm: {} cpl/rank entries, {} dispatch entries, {} indexes",
                    info.cpl_entries, info.dispatch_entries, info.index_entries
                );
                Ok(out)
            }
            _ => Err(fail(
                "snapshot: expected a subcommand\n\n\
                 USAGE:\n  tdv snapshot save    <schema.td> <out.tds>\n  \
                 tdv snapshot load    <file.tds>\n  \
                 tdv snapshot inspect <file.tds>",
            )),
        },
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(fail(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

/// Loads a binary snapshot file as (schema, metadata).
fn load_snapshot_file(path: Option<&String>) -> Result<(Schema, Vec<(String, String)>), CliError> {
    let path = path.ok_or_else(|| fail("missing snapshot file argument"))?;
    td_model::read_snapshot_file(path).map_err(|e| fail(format!("{path}: {e}")))
}

fn load_db(
    schema_path: Option<&String>,
    data_path: Option<&String>,
) -> Result<(Database, std::collections::HashMap<String, td_store::ObjId>), CliError> {
    let schema = load(schema_path)?;
    let mut db = Database::new(schema);
    let path = data_path.ok_or_else(|| fail("missing data file argument"))?;
    let src =
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
    let names = parse_objects(&mut db, &src).map_err(|e| fail(format!("{path}: {e}")))?;
    Ok((db, names))
}

fn parse_value(
    token: &str,
    names: &std::collections::HashMap<String, td_store::ObjId>,
) -> Result<Value, CliError> {
    if let Some(&id) = names.get(token) {
        return Ok(Value::Ref(id));
    }
    if token == "true" {
        return Ok(Value::Bool(true));
    }
    if token == "false" {
        return Ok(Value::Bool(false));
    }
    if token == "null" {
        return Ok(Value::Null);
    }
    if token.starts_with('"') && token.ends_with('"') && token.len() >= 2 {
        return Ok(Value::Str(token[1..token.len() - 1].to_string()));
    }
    if let Ok(i) = token.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = token.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(fail(format!(
        "`{token}` is neither a known object name nor a literal"
    )))
}

fn load(path: Option<&String>) -> Result<Schema, CliError> {
    let path = path.ok_or_else(|| fail("missing schema file argument"))?;
    let src =
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read `{path}`: {e}")))?;
    parse_schema(&src).map_err(|e| fail(format!("{path}: {e}")))
}

fn view_args(
    schema: &Schema,
    ty: Option<&String>,
    attrs: Option<&String>,
) -> Result<(TypeId, BTreeSet<AttrId>), CliError> {
    let ty = ty.ok_or_else(|| fail("missing source type argument"))?;
    let attrs = attrs.ok_or_else(|| fail("missing attribute list argument"))?;
    let source = schema.type_id(ty).map_err(|e| fail(e.to_string()))?;
    let projection = attrs
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|n| schema.attr_id(n.trim()).map_err(|e| fail(e.to_string())))
        .collect::<Result<BTreeSet<AttrId>, CliError>>()?;
    Ok((source, projection))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    const FIG1: &str = r#"
        type Person { SSN: int  name: str  date_of_birth: int }
        type Employee : Person { pay_rate: float  hrs_worked: float }
        accessors SSN
        accessors date_of_birth
        accessors pay_rate
        accessors hrs_worked
        method age(Person) -> int { return 2026 - get_date_of_birth($0); }
        method income(Employee) -> float { return get_pay_rate($0) * get_hrs_worked($0); }
    "#;

    fn fixture(name: &str, contents: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("td_cli_test_{}_{name}.td", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    /// Runs a command that must succeed. On failure the captured stderr
    /// (message + exit code) goes to the test log first, so a CI failure
    /// shows what `tdv` actually emitted instead of a bare panic.
    fn run_ok(args: &[&str]) -> String {
        let result = run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        if let Err(e) = &result {
            eprintln!(
                "--- tdv {args:?} captured stderr (exit code {}) ---\n{}\n---",
                e.code, e.message
            );
        }
        assert!(
            result.is_ok(),
            "command {args:?} failed; captured stderr is above"
        );
        result.unwrap()
    }

    /// Runs a command that must fail. On unexpected success the captured
    /// stdout goes to the test log first, for the same reason.
    fn run_err(args: &[&str]) -> CliError {
        let result = run(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        if let Ok(out) = &result {
            eprintln!("--- tdv {args:?} captured stdout ---\n{out}\n---");
        }
        assert!(
            result.is_err(),
            "command {args:?} unexpectedly succeeded; captured stdout is above"
        );
        result.err().unwrap()
    }

    #[test]
    fn project_json_is_byte_identical_to_the_server_endpoint() {
        let f = fixture("project_json", FIG1);
        let out = run_ok(&[
            "project",
            f.to_str().unwrap(),
            "Employee",
            "SSN,pay_rate,hrs_worked",
            "--json",
        ]);
        let api = td_server::Api::new();
        let body = format!(
            "{{\"schema_text\": {}, \"type\": \"Employee\", \"attrs\": [\"SSN\", \"pay_rate\", \"hrs_worked\"]}}",
            td_server::json::quote(FIG1)
        );
        let resp = api.handle("POST", "/v1/project", "", body.as_bytes());
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(out, resp.body);
        assert!(out.contains("\"invariants_ok\": true"), "{out}");
    }

    #[test]
    fn client_round_trips_against_a_live_server() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let server = Arc::new(
            td_server::Server::bind(td_server::ServerConfig::default())
                .expect("bind a loopback port"),
        );
        let addr = server.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let runner = {
            let (server, shutdown) = (Arc::clone(&server), Arc::clone(&shutdown));
            std::thread::spawn(move || server.run(&shutdown))
        };
        let out = run_ok(&["client", &addr, "GET", "/healthz"]);
        assert_eq!(out, "ok\n");
        let e = run_err(&["client", &addr, "get", "/v1/nope"]);
        assert!(e.message.contains("HTTP 404"), "{}", e.message);
        assert_eq!(e.code, 2);
        shutdown.store(true, Ordering::SeqCst);
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn watch_streams_a_change_event_for_a_schema_edit() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let server = Arc::new(
            td_server::Server::bind(td_server::ServerConfig::default())
                .expect("bind a loopback port"),
        );
        let addr = server.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let runner = {
            let (server, shutdown) = (Arc::clone(&server), Arc::clone(&shutdown));
            std::thread::spawn(move || server.run(&shutdown))
        };

        let base = "type A { x: int }\ntype B : A { z: int }\naccessors x\naccessors z\n";
        let out = run_ok(&["client", &addr, "PUT", "/v1/tenants/acme/schemas/s", base]);
        assert!(out.contains("\"version\": 1"), "{out}");

        // hello + one change = 2 events, then the subcommand returns.
        let watcher = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_ok(&[
                    "watch",
                    &addr,
                    "--tenant",
                    "acme",
                    "--schema",
                    "s",
                    "--type",
                    "B",
                    "--attrs",
                    "x,z",
                    "--max-events",
                    "2",
                ])
            })
        };
        // The PUT must not race the subscription: wait until the hub
        // has the watcher registered.
        for _ in 0..200 {
            if !server.api().watch.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(!server.api().watch.is_empty(), "watcher never subscribed");

        let edited = format!("{base}method f(B) -> int {{ return get_x($0); }}\n");
        let out = run_ok(&[
            "client",
            &addr,
            "PUT",
            "/v1/tenants/acme/schemas/s",
            &edited,
        ]);
        assert!(out.contains("\"version\": 2"), "{out}");

        let summary = watcher.join().unwrap();
        assert_eq!(summary, "tdv watch: received 2 event(s)\n");

        let e = run_err(&["watch", &addr, "--tenant", "acme"]);
        assert!(e.message.contains("--schema is required"), "{}", e.message);

        shutdown.store(true, Ordering::SeqCst);
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn snapshot_save_load_inspect_and_project() {
        let f = fixture("snapshot", FIG1);
        let mut tds = std::env::temp_dir();
        tds.push(format!("td_cli_test_{}_snapshot.tds", std::process::id()));
        let tds = tds.to_str().unwrap().to_string();

        let out = run_ok(&["snapshot", "save", f.to_str().unwrap(), &tds]);
        assert!(out.contains("format v1"), "{out}");

        let out = run_ok(&["snapshot", "load", &tds]);
        assert!(out.contains("snapshot OK"), "{out}");
        assert!(!out.contains(" 0 cpl/rank entries"), "{out}");

        let out = run_ok(&["snapshot", "inspect", &tds]);
        assert!(out.contains("section names"), "{out}");
        assert!(out.contains("meta source"), "{out}");

        // The snapshot path and the text path derive byte-identically.
        let view = ["Employee", "SSN,pay_rate,hrs_worked"];
        let from_text = run_ok(&["project", f.to_str().unwrap(), view[0], view[1], "--json"]);
        let from_snap = run_ok(&["project", &tds, view[0], view[1], "--json", "--snapshot"]);
        assert_eq!(from_text, from_snap);

        let e = run_err(&["snapshot", "inspect", f.to_str().unwrap()]);
        assert!(e.message.contains("bad magic"), "{}", e.message);
        std::fs::remove_file(&tds).unwrap();
    }

    #[test]
    fn check_and_show() {
        let f = fixture("check", FIG1);
        let out = run_ok(&["check", f.to_str().unwrap()]);
        assert!(out.contains("schema OK"));
        assert!(out.contains("types: 2"));
        let out = run_ok(&["show", f.to_str().unwrap()]);
        assert!(out.contains("Employee {pay_rate, hrs_worked} <- Person(1)"));
        assert!(out.contains("age(Person)"));
    }

    #[test]
    fn dot_export() {
        let f = fixture("dot", FIG1);
        let out = run_ok(&["dot", f.to_str().unwrap()]);
        assert!(out.starts_with("digraph"));
        assert!(out.contains("\"Employee\" -> \"Person\""));
    }

    #[test]
    fn applicable_and_project() {
        let f = fixture("proj", FIG1);
        let out = run_ok(&[
            "applicable",
            f.to_str().unwrap(),
            "Employee",
            "SSN,date_of_birth,pay_rate",
        ]);
        assert!(out.contains("age"));
        assert!(out.lines().next().unwrap().contains("age"));
        assert!(out.lines().nth(1).unwrap().contains("income"));

        let out = run_ok(&[
            "project",
            f.to_str().unwrap(),
            "Employee",
            "SSN,date_of_birth,pay_rate",
        ]);
        assert!(out.contains("derived ^Employee"));
        assert!(out.contains("all hold"));
        assert!(out.contains("^Person [surrogate of Person]"));
    }

    const FIG1_BATCH: &str = r#"
        # badge view, payroll view, and a person-only view
        Employee: SSN, date_of_birth
        Employee: pay_rate, hrs_worked
        Person:   SSN   # trailing comment
    "#;

    #[test]
    fn batch_derives_every_request() {
        let s = fixture("batch_s", FIG1);
        let r = fixture("batch_r", FIG1_BATCH);
        let out = run_ok(&["batch", s.to_str().unwrap(), r.to_str().unwrap()]);
        assert!(out.contains("#0 Π_{SSN, date_of_birth}(Employee)"), "{out}");
        assert!(out.contains("#2 Π_{SSN}(Person)"), "{out}");
        assert!(out.contains("3 requests, 3 ok, 0 errors"), "{out}");
        assert!(out.contains("invariants hold"), "{out}");
        assert!(out.contains("wall"), "{out}");
        // An explicit thread count is accepted; the report shows the
        // effective worker count (the request clamps to the host's
        // available parallelism, so a 1-core machine reports 1).
        let out = run_ok(&["batch", s.to_str().unwrap(), r.to_str().unwrap(), "2"]);
        let effective = 2.min(std::thread::available_parallelism().map_or(1, |n| n.get()));
        assert!(out.contains(&format!("over {effective} threads")), "{out}");
    }

    #[test]
    fn batch_reports_per_request_errors() {
        let s = fixture("batch_err_s", FIG1);
        // pay_rate is not available at Person: resolves, then fails in
        // the pipeline — a per-request error, not a parse error.
        let r = fixture("batch_err_r", "Person: pay_rate\nEmployee: SSN\n");
        let e = run_err(&["batch", s.to_str().unwrap(), r.to_str().unwrap()]);
        assert!(e.message.contains("→ error:"), "{}", e.message);
        assert!(
            e.message.contains("2 requests, 1 ok, 1 errors"),
            "{}",
            e.message
        );
    }

    #[test]
    fn batch_rejects_malformed_input() {
        let s = fixture("batch_bad_s", FIG1);
        let r = fixture("batch_bad_r", "Employee SSN\n");
        let e = run_err(&["batch", s.to_str().unwrap(), r.to_str().unwrap()]);
        assert!(e.message.contains("line 1"), "{}", e.message);
        let r = fixture("batch_bad_r2", "Nope: SSN\n");
        let e = run_err(&["batch", s.to_str().unwrap(), r.to_str().unwrap()]);
        assert!(e.message.contains("unknown type name"), "{}", e.message);
        let e = run_err(&["batch", s.to_str().unwrap(), r.to_str().unwrap(), "zero?"]);
        assert!(e.message.contains("not a thread count"), "{}", e.message);
    }

    #[test]
    fn explain_names_the_attribute() {
        let f = fixture("explain", FIG1);
        let out = run_ok(&[
            "explain",
            f.to_str().unwrap(),
            "Employee",
            "SSN,date_of_birth",
            "income",
        ]);
        assert!(out.contains("income"));
        assert!(
            out.contains("pay_rate") || out.contains("get_pay_rate"),
            "{out}"
        );
    }

    #[test]
    fn explain_reports_dispatch_cache_counters() {
        let f = fixture("explain-cache", FIG1);
        let out = run_ok(&[
            "explain",
            f.to_str().unwrap(),
            "Employee",
            "SSN,date_of_birth",
            "income",
        ]);
        assert!(out.contains("dispatch cache: gen"), "{out}");
    }

    #[test]
    fn audit_ranks_strategies() {
        let f = fixture("audit", FIG1);
        let out = run_ok(&["audit", f.to_str().unwrap(), "Employee", "SSN"]);
        assert!(out.contains("paper"));
        assert!(out.contains("standalone"));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn errors_are_reported() {
        let e = run_err(&["project", "/nonexistent/file.td", "A", "x"]);
        assert!(e.message.contains("cannot read"));
        let f = fixture("err", FIG1);
        let e = run_err(&["project", f.to_str().unwrap(), "Nope", "SSN"]);
        assert!(e.message.contains("unknown type name"));
        let e = run_err(&["project", f.to_str().unwrap(), "Employee", "nope"]);
        assert!(e.message.contains("unknown attribute"));
        let e = run_err(&["frobnicate"]);
        assert!(e.message.contains("unknown command"));
        let e = run_err(&[]);
        assert!(e.message.contains("USAGE"));
    }

    #[test]
    fn bad_schema_file_reports_position() {
        let f = fixture("bad", "type A : Missing { }");
        let e = run_err(&["check", f.to_str().unwrap()]);
        assert!(e.message.contains("Missing"));
    }

    const FIG1_DATA: &str = r#"
        obj alice = Employee {
            SSN = 1
            name = "Alice"
            date_of_birth = 1990
            pay_rate = 55.0
            hrs_worked = 38.0
        }
        obj bob = Person { SSN = 2  name = "Bob"  date_of_birth = 2000 }
    "#;

    #[test]
    fn extent_lists_objects() {
        let s = fixture("extent_s", FIG1);
        let d = fixture("extent_d", FIG1_DATA);
        let out = run_ok(&["extent", s.to_str().unwrap(), d.to_str().unwrap(), "Person"]);
        assert!(out.contains("alice: Employee"));
        assert!(out.contains("bob: Person"));
        let out = run_ok(&[
            "extent",
            s.to_str().unwrap(),
            d.to_str().unwrap(),
            "Employee",
        ]);
        assert!(out.contains("alice"));
        assert!(!out.contains("bob"));
    }

    #[test]
    fn call_executes_methods() {
        let s = fixture("call_s", FIG1);
        let d = fixture("call_d", FIG1_DATA);
        let out = run_ok(&[
            "call",
            s.to_str().unwrap(),
            d.to_str().unwrap(),
            "age",
            "alice",
        ]);
        assert_eq!(out.trim(), "36");
        let out = run_ok(&[
            "call",
            s.to_str().unwrap(),
            d.to_str().unwrap(),
            "income",
            "alice",
        ]);
        assert_eq!(out.trim(), "2090");
        // Writers take literal second arguments.
        let out = run_ok(&[
            "call",
            s.to_str().unwrap(),
            d.to_str().unwrap(),
            "set_SSN",
            "alice,9",
        ]);
        assert_eq!(out.trim(), "null");
        let e = run_err(&[
            "call",
            s.to_str().unwrap(),
            d.to_str().unwrap(),
            "income",
            "bob",
        ]);
        assert!(e.message.contains("no applicable method"));
        let e = run_err(&[
            "call",
            s.to_str().unwrap(),
            d.to_str().unwrap(),
            "age",
            "whoops",
        ]);
        assert!(e.message.contains("neither a known object"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
        assert!(run_ok(&["help"]).contains("--engine"));
    }

    #[test]
    fn engine_flag_selects_the_engine() {
        let f = fixture("engine", FIG1);
        let path = f.to_str().unwrap();
        // All three engines classify identically; the flag parses in both
        // `--engine X` and `--engine=X` spellings, anywhere in the line.
        let default_out = run_ok(&["applicable", path, "Employee", "SSN,pay_rate"]);
        for flagged in [
            vec![
                "applicable",
                path,
                "Employee",
                "SSN,pay_rate",
                "--engine",
                "indexed",
            ],
            vec![
                "applicable",
                path,
                "Employee",
                "SSN,pay_rate",
                "--engine=stack",
            ],
            vec![
                "--engine",
                "fixpoint",
                "applicable",
                path,
                "Employee",
                "SSN,pay_rate",
            ],
        ] {
            assert_eq!(run_ok(&flagged), default_out, "{flagged:?}");
        }
        // project and batch accept it too.
        let out = run_ok(&[
            "project",
            path,
            "Employee",
            "SSN,pay_rate",
            "--engine=stack",
        ]);
        assert!(out.contains("derived ^Employee"));
        let r = fixture("engine_b", "Employee: SSN\n");
        let out = run_ok(&["batch", path, r.to_str().unwrap(), "--engine=fixpoint"]);
        assert!(out.contains("1 requests, 1 ok"), "{out}");
        // `batch` lints every request; the stats block reports the counts.
        assert!(out.contains("lint:"), "{out}");
        // Unknown engines fail with a parse error, not a panic.
        let e = run_err(&["applicable", path, "Employee", "SSN", "--engine=warp"]);
        assert!(e.message.contains("unknown engine"), "{}", e.message);
        let e = run_err(&["applicable", path, "Employee", "SSN", "--engine"]);
        assert!(e.message.contains("missing value"), "{}", e.message);
    }

    /// The shipped Figure 3 schema (with Example 4's `z1`), reused so the
    /// CLI tests cover exactly what `examples/` ships.
    const FIG3: &str = include_str!("../../../examples/schemas/fig3.td");

    /// A CLOS-style precedence diamond: X and Y order {P, Q} oppositely,
    /// so Z has no consistent linearization.
    const CONFLICT: &str = "
        type P { }
        type Q { }
        type X : P(1), Q(2) { }
        type Y : Q(1), P(2) { }
        type Z : X(1), Y(2) { }
    ";

    /// Two multi-methods neither of which is most specific at `g(C, C)`.
    const AMBIGUOUS: &str = "
        type P { }
        type A : P(1) { }
        type B : P(1) { }
        type C : A(1), B(2) { }
        gf g(2)
        method g1 = g(A, B) { }
        method g2 = g(B, A) { }
    ";

    #[test]
    fn lint_fig3_schema_and_request() {
        let f = fixture("lint_fig3", FIG3);
        // Schema-wide: clean, even under --deny warnings.
        let out = run_ok(&["lint", f.to_str().unwrap(), "--deny", "warnings"]);
        assert!(out.contains("0 errors, 0 warnings"), "{out}");

        // The FIG4 request reports the x1/y1 call ring (TDL003) and z1's
        // Augment hazard (TDL005) as notes — informative, never fatal.
        let out = run_ok(&[
            "lint",
            f.to_str().unwrap(),
            "A",
            "a2,e2,h2",
            "--json",
            "--deny",
            "warnings",
        ]);
        assert!(out.contains("\"TDL003\""), "{out}");
        assert!(out.contains("\"TDL005\""), "{out}");
        assert!(out.contains("\"paper_section\""), "{out}");
    }

    #[test]
    fn lint_conflict_schema_fails() {
        let f = fixture("lint_conflict", CONFLICT);
        // Lenient parsing loads the broken schema; lint reports TDL002 and
        // exits nonzero even without --deny.
        let e = run_err(&["lint", f.to_str().unwrap()]);
        assert_eq!(e.code, 1);
        assert!(e.message.contains("TDL002"), "{}", e.message);
    }

    #[test]
    fn lint_ambiguous_schema_warns_and_deny_fails() {
        let f = fixture("lint_ambig", AMBIGUOUS);
        let out = run_ok(&["lint", f.to_str().unwrap()]);
        assert!(out.contains("TDL001"), "{out}");
        let e = run_err(&["lint", f.to_str().unwrap(), "--deny=warnings"]);
        assert_eq!(e.code, 1);
        assert!(e.message.contains("TDL001"), "{}", e.message);
    }

    #[test]
    fn lint_bad_request_is_tdl006() {
        let f = fixture("lint_req", FIG3);
        let e = run_err(&["lint", f.to_str().unwrap(), "A", ""]);
        assert!(e.message.contains("TDL006"), "{}", e.message);
        let e = run_err(&["lint", f.to_str().unwrap(), "C", "a1"]);
        assert!(e.message.contains("not available"), "{}", e.message);
    }

    #[test]
    fn lint_rejects_unknown_deny_level() {
        let f = fixture("lint_deny", FIG3);
        let e = run_err(&["lint", f.to_str().unwrap(), "--deny", "errors"]);
        assert!(e.message.contains("unknown level"), "{}", e.message);
        let e = run_err(&["lint", f.to_str().unwrap(), "--deny"]);
        assert!(e.message.contains("missing value"), "{}", e.message);
    }

    #[test]
    fn lint_sarif_round_trips() {
        let f = fixture("lint_sarif", FIG3);
        let out = run_ok(&["lint", f.to_str().unwrap(), "A", "a2,e2,h2", "--sarif"]);
        assert!(out.contains("\"td-lint\""), "{out}");
        assert!(out.contains("\"2.1.0\""), "{out}");
        let back = td_model::LintReport::from_sarif(&out).unwrap();
        assert!(back.diagnostics.iter().any(|d| d.code.as_str() == "TDL003"));
    }

    /// A schema with one interprocedural trap per whole-schema analysis:
    /// `trap` calls `f` with a definitely-null argument into an int-only
    /// candidate set (TDL201), and `constbr` branches on `1 < 2` (TDL202).
    const ANALYZE: &str = "
        type A { x: int }
        accessors x
        gf f(1)
        method f_int = f(int) -> int { return 1; }
        gf t(1)
        method trap = t(A) { f(null); }
        gf c(1)
        method constbr = c(A) -> int {
            if (1 < 2) {
                return 1;
            } else {
                set_x($0, 0);
            }
            return 0;
        }
    ";

    #[test]
    fn analyze_reports_null_trap_and_const_branch() {
        let f = fixture("analyze_traps", ANALYZE);
        // TDL2xx warnings are not fatal without --deny.
        let out = run_ok(&["analyze", f.to_str().unwrap()]);
        assert!(out.contains("TDL201"), "{out}");
        assert!(out.contains("TDL202"), "{out}");
        assert!(out.contains("analysis: precision syntactic"), "{out}");
        let e = run_err(&["analyze", f.to_str().unwrap(), "--deny", "warnings"]);
        assert_eq!(e.code, 1);
    }

    #[test]
    fn analyze_sarif_round_trips() {
        let f = fixture("analyze_sarif", ANALYZE);
        let out = run_ok(&["analyze", f.to_str().unwrap(), "--sarif"]);
        assert!(out.contains("\"td-analyze\""), "{out}");
        let back = td_model::LintReport::from_sarif(&out).unwrap();
        assert!(back.diagnostics.iter().any(|d| d.code.as_str() == "TDL201"));
        assert!(back.diagnostics.iter().any(|d| d.code.as_str() == "TDL202"));
    }

    #[test]
    fn analyze_request_findings_are_precision_stable() {
        let f = fixture("analyze_fig3", FIG3);
        // The FIG4 projection has no readers for a2/e2 anywhere in the
        // schema: the footprint analysis reports them as dead (TDL204).
        let syn = run_ok(&[
            "analyze",
            f.to_str().unwrap(),
            "A",
            "a2,e2,h2",
            "--json",
            "--precision",
            "syntactic",
        ]);
        let sem = run_ok(&[
            "analyze",
            f.to_str().unwrap(),
            "A",
            "a2,e2,h2",
            "--json",
            "--precision=semantic",
        ]);
        assert!(syn.contains("\"TDL204\""), "{syn}");
        assert_eq!(syn, sem, "precision must not change the findings");
        let e = run_err(&["analyze", f.to_str().unwrap(), "--precision", "sharp"]);
        assert!(e.message.contains("unknown precision"), "{}", e.message);
    }

    /// Telemetry collection is process-global; tests that turn it on
    /// serialize here so the parallel test runner cannot interleave their
    /// drains.
    static TELEMETRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn trace_fixture(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("td_cli_trace_{}_{name}.json", std::process::id()));
        p
    }

    #[test]
    fn stats_command_prints_span_and_metrics_summary() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let f = fixture("stats", FIG1);
        let out = run_ok(&[
            "stats",
            f.to_str().unwrap(),
            "Employee",
            "SSN,date_of_birth,pay_rate",
        ]);
        assert!(out.contains("derived ^Employee"), "{out}");
        // Span aggregation rows for the projection stages…
        for stage in ["applicability", "factor_state", "augment", "retype"] {
            assert!(out.contains(&format!("project/{stage}")), "{out}");
        }
        // …and the bridged cache metrics.
        assert!(out.contains("cache/index_misses"), "{out}");
        assert!(out.contains("cache/generation"), "{out}");
        assert!(!td_telemetry::enabled(), "stats must restore the default");
    }

    #[test]
    fn trace_flag_writes_a_perfetto_loadable_chrome_trace() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let f = fixture("trace_proj", FIG1);
        let trace = trace_fixture("project");
        let out = run_ok(&[
            "project",
            f.to_str().unwrap(),
            "Employee",
            "SSN,date_of_birth,pay_rate",
            "--trace",
            trace.to_str().unwrap(),
        ]);
        assert!(out.contains("derived ^Employee"), "{out}");
        assert!(out.contains("spans written to"), "{out}");
        let text = std::fs::read_to_string(&trace).unwrap();
        let spans = td_telemetry::parse_chrome_trace(&text).unwrap();
        let names: Vec<&str> = spans.iter().map(|sp| sp.name.as_str()).collect();
        for stage in [
            "applicability",
            "factor_state",
            "flow_analysis",
            "augment",
            "factor_methods",
            "retype",
            "invariants",
        ] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        assert!(names.contains(&"project/Employee"), "{names:?}");
        let _ = std::fs::remove_file(&trace);
        assert!(!td_telemetry::enabled(), "--trace must restore the default");
    }

    #[test]
    fn metrics_flag_appends_summary_to_batch_output() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let schema = fixture("metrics_s", FIG1);
        let reqs = fixture("metrics_r", FIG1_BATCH);
        let out = run_ok(&[
            "batch",
            schema.to_str().unwrap(),
            reqs.to_str().unwrap(),
            "2",
            "--metrics",
        ]);
        assert!(out.contains("3 requests, 3 ok"), "{out}");
        assert!(out.contains("batch/request"), "{out}");
        assert!(out.contains("batch/run"), "{out}");
        assert!(out.contains("counter"), "{out}");
        assert!(!td_telemetry::enabled());
    }

    #[test]
    fn telemetry_flag_errors() {
        let e = run_err(&["project", "x.td", "T", "a", "--trace"]);
        assert!(
            e.message.contains("--trace: missing output file"),
            "{}",
            e.message
        );
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let f = fixture("trace_badpath", FIG1);
        let e = run_err(&[
            "project",
            f.to_str().unwrap(),
            "Employee",
            "SSN",
            "--trace=/nonexistent-dir/out.json",
        ]);
        assert!(e.message.contains("cannot write"), "{}", e.message);
        assert!(
            !td_telemetry::enabled(),
            "a failed write must still disable"
        );
    }

    #[test]
    fn explain_annotates_optimistic_cycles() {
        let f = fixture("explain_ring", FIG3);
        // x1 sits on the x1 <-> y1 call ring: annotated.
        let out = run_ok(&["explain", f.to_str().unwrap(), "A", "a2,e2,h2", "x1"]);
        assert!(out.contains("note[TDL003]"), "{out}");
        assert!(out.contains("y1"), "{out}");
        // u1 is ring-free: no annotation.
        let out = run_ok(&["explain", f.to_str().unwrap(), "A", "a2,e2,h2", "u1"]);
        assert!(!out.contains("TDL003"), "{out}");
    }

    #[test]
    fn trace_verify_round_trips_a_recorded_trace() {
        let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let f = fixture("trace_verify", FIG1);
        let mut trace_path = std::env::temp_dir();
        trace_path.push(format!("td_cli_test_{}_trace.json", std::process::id()));
        let trace_arg = format!("--trace={}", trace_path.to_str().unwrap());
        run_ok(&[
            "project",
            f.to_str().unwrap(),
            "Employee",
            "SSN",
            &trace_arg,
        ]);
        let out = run_ok(&["trace-verify", trace_path.to_str().unwrap()]);
        assert!(out.contains("OK"), "{out}");
        assert!(out.contains("span(s)"), "{out}");

        // Garbage is rejected, not summarized.
        let bad = fixture("trace_verify_bad", "this is not json");
        let e = run_err(&["trace-verify", bad.to_str().unwrap()]);
        assert!(e.message.contains("not a Chrome trace"), "{}", e.message);
        let _ = std::fs::remove_file(&trace_path);
    }

    #[test]
    fn observability_command_flag_errors() {
        let e = run_err(&["top"]);
        assert!(
            e.message.contains("missing server address"),
            "{}",
            e.message
        );
        let e = run_err(&["top", "127.0.0.1:1", "--interval"]);
        assert!(e.message.contains("needs a value"), "{}", e.message);
        let e = run_err(&[
            "client",
            "127.0.0.1:1",
            "GET",
            "/healthz",
            "--trace-id",
            "zz",
        ]);
        assert!(e.message.contains("--trace-id must be"), "{}", e.message);
        let e = run_err(&["trace-verify"]);
        assert!(e.message.contains("missing trace file"), "{}", e.message);
        let e = run_err(&["serve", "--slow-threshold-ms", "abc"]);
        assert!(e.message.contains("must be a number"), "{}", e.message);
    }
}
