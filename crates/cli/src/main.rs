//! `tdv` entry point: parse arguments, run, print, exit.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match td_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
