//! # td-driver — the parallel batch derivation engine
//!
//! The paper's algorithms derive **one** view type at a time; a
//! production deployment derives *fleets* of them — rebuilding every
//! materialized view after a schema migration, serving per-tenant view
//! families, or sweeping a workload generator in the benchmarks. This
//! crate turns the single-shot `td_core::project` pipeline into a bulk
//! engine:
//!
//! * the base [`Schema`] is frozen once into a copy-on-write
//!   [`SchemaSnapshot`] — every worker shares the same read-only schema
//!   (and its warm dispatch cache) and takes a private fork only for the
//!   mutating derivation itself;
//! * requests fan out over `std::thread::scope` workers pulling indices
//!   from a shared atomic cursor (no per-request thread spawn, no
//!   channels, no external dependencies);
//! * every request runs the full pipeline in isolation — projection →
//!   applicability → factor-state → factor-methods → invariant check —
//!   so one request's failure or invariant violation cannot poison its
//!   siblings;
//! * results merge deterministically in request order: the output for N
//!   worker threads is byte-identical to the sequential run
//!   ([`BatchOutcome::render`] is the canonical comparison form).
//!
//! ```
//! use td_model::Schema;
//! use td_driver::{BatchDeriver, BatchRequest};
//!
//! let mut s = Schema::new();
//! let person = s.add_type("Person", &[]).unwrap();
//! for name in ["SSN", "name"] {
//!     let a = s.add_attr(name, td_model::ValueType::INT, person).unwrap();
//!     s.add_accessors(a).unwrap();
//! }
//! let requests = vec![
//!     BatchRequest::by_names(&s, "Person", &["SSN"]).unwrap(),
//!     BatchRequest::by_names(&s, "Person", &["name"]).unwrap(),
//! ];
//! let outcome = BatchDeriver::new(&s).threads(2).run(&requests);
//! assert!(outcome.all_ok());
//! assert_eq!(outcome.results.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use td_core::{project, CoreError, Derivation, Engine, ProjectionOptions, StageTimings};
use td_model::{
    AttrId, DispatchCacheStats, LintReport, ModelError, Schema, SchemaSnapshot, TypeId,
};

/// One projection request: derive `Π_projection(source)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// The projection's source type.
    pub source: TypeId,
    /// The attributes the view keeps.
    pub projection: BTreeSet<AttrId>,
}

impl BatchRequest {
    /// Builds a request from ids.
    pub fn new(source: TypeId, projection: BTreeSet<AttrId>) -> BatchRequest {
        BatchRequest { source, projection }
    }

    /// Resolves a request from a type name and attribute names.
    pub fn by_names(
        schema: &Schema,
        source: &str,
        attrs: &[&str],
    ) -> td_model::Result<BatchRequest> {
        let source = schema.type_id(source)?;
        let projection = attrs
            .iter()
            .map(|n| schema.attr_id(n))
            .collect::<td_model::Result<_>>()?;
        Ok(BatchRequest { source, projection })
    }

    /// `Π_{a, b}(T)` rendering against the base schema.
    pub fn describe(&self, schema: &Schema) -> String {
        let attrs = self
            .projection
            .iter()
            .map(|&a| {
                if a.index() < schema.n_attrs() {
                    schema.attr_name(a).to_string()
                } else {
                    a.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        let source = if schema.is_live(self.source) {
            schema.type_name(self.source).to_string()
        } else {
            self.source.to_string()
        };
        format!("Π_{{{attrs}}}({source})")
    }
}

impl From<(TypeId, BTreeSet<AttrId>)> for BatchRequest {
    fn from((source, projection): (TypeId, BTreeSet<AttrId>)) -> Self {
        BatchRequest { source, projection }
    }
}

/// A located error from [`parse_requests`]: every failure names the
/// 1-based line of the request file (or request body) it came from, so
/// both the `tdv batch` CLI path and the server's `/v1/batch` endpoint
/// point at the offending request instead of surfacing a bare error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestParseError {
    /// 1-based line number of the malformed request.
    pub line: usize,
    /// What went wrong on that line.
    pub message: String,
}

impl std::fmt::Display for RequestParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RequestParseError {}

/// Parses a batch request listing: one `Type: attr,attr,…` projection per
/// line, blank lines and `#` comments ignored. Both syntax failures and
/// name-resolution failures report the 1-based line number.
pub fn parse_requests(schema: &Schema, src: &str) -> Result<Vec<BatchRequest>, RequestParseError> {
    let err = |line: usize, message: String| RequestParseError {
        line: line + 1,
        message,
    };
    let mut requests = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (ty, attrs) = line
            .split_once(':')
            .ok_or_else(|| err(lineno, "expected `Type: attr,…`".to_string()))?;
        let ty = ty.trim();
        if ty.is_empty() {
            return Err(err(lineno, "expected a type name before `:`".to_string()));
        }
        let attrs: Vec<&str> = attrs
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let request =
            BatchRequest::by_names(schema, ty, &attrs).map_err(|e| err(lineno, e.to_string()))?;
        requests.push(request);
    }
    Ok(requests)
}

/// The outcome of one request within a batch.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Position of the request in the submitted list.
    pub index: usize,
    /// The request itself.
    pub request: BatchRequest,
    /// The derivation record, or the pipeline error.
    pub result: Result<Derivation, CoreError>,
    /// The refactored fork of the schema (`Some` on success) — callers
    /// use it to resolve surrogate names or materialize the view.
    pub schema: Option<Schema>,
    /// Dispatch-cache activity attributable to this request alone (the
    /// fork's final counters minus the snapshot's counters at fork time).
    pub cache: DispatchCacheStats,
    /// The TDL lint report for this request (schema checks plus
    /// projection-safety checks), when [`BatchDeriver::lint`] was enabled.
    /// `None` when linting was off or the request failed id validation.
    pub lint: Option<LintReport>,
    /// Wall-clock time this request spent on its worker.
    pub duration: Duration,
}

impl RequestOutcome {
    /// True when the derivation succeeded.
    pub fn ok(&self) -> bool {
        self.result.is_ok()
    }

    /// True when invariants were checked and all hold (false on error or
    /// when checking was disabled).
    pub fn invariants_ok(&self) -> bool {
        self.result
            .as_ref()
            .map(|d| d.invariants_ok())
            .unwrap_or(false)
    }

    /// One deterministic report line (no timings), in terms of the base
    /// schema the batch ran against.
    fn render_line(&self, base: &Schema) -> String {
        let head = format!("#{} {}", self.index, self.request.describe(base));
        match &self.result {
            Ok(d) => {
                let invariants = match &d.invariants {
                    Some(r) if r.ok() => ", invariants hold",
                    Some(_) => ", INVARIANTS VIOLATED",
                    None => "",
                };
                let derived = self
                    .schema
                    .as_ref()
                    .map(|s| s.type_name(d.derived).to_string())
                    .unwrap_or_else(|| d.derived.to_string());
                format!(
                    "{head} → {derived}: {} applicable, {} not, {} surrogates{invariants}",
                    d.applicable().len(),
                    d.not_applicable().len(),
                    d.factor_surrogates.len() + d.augment_surrogates.len(),
                )
            }
            Err(e) => format!("{head} → error: {e}"),
        }
    }
}

/// Aggregate statistics for one batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Requests submitted.
    pub requests: usize,
    /// Requests that derived successfully.
    pub succeeded: usize,
    /// Requests that failed with a pipeline error.
    pub failed: usize,
    /// Successful requests whose invariant report found a violation.
    pub invariant_violations: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time of [`BatchDeriver::run`].
    pub wall_clock: Duration,
    /// Sum of per-request worker time (≈ CPU time; exceeds `wall_clock`
    /// when threads run in parallel).
    pub cpu_time: Duration,
    /// Per-stage timings summed across all successful requests.
    pub stages: StageTimings,
    /// Dispatch-cache hit/miss rollup summed across requests.
    pub cache: DispatchCacheStats,
    /// True when the batch ran with linting enabled.
    pub linted: bool,
    /// Error-severity lint diagnostics summed across requests.
    pub lint_errors: usize,
    /// Warning-severity lint diagnostics summed across requests.
    pub lint_warnings: usize,
    /// Note-severity lint diagnostics summed across requests.
    pub lint_notes: usize,
}

impl std::fmt::Display for BatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        writeln!(
            f,
            "batch: {} requests over {} threads — {} ok, {} errors, {} invariant violations",
            self.requests, self.threads, self.succeeded, self.failed, self.invariant_violations
        )?;
        writeln!(
            f,
            "time:  wall {:.2}ms, cpu {:.2}ms ({:.2}× utilization)",
            ms(self.wall_clock),
            ms(self.cpu_time),
            self.cpu_time.as_secs_f64() / self.wall_clock.as_secs_f64().max(1e-9)
        )?;
        writeln!(f, "stages: {}", self.stages)?;
        if self.linted {
            writeln!(
                f,
                "lint:  {} errors, {} warnings, {} notes",
                self.lint_errors, self.lint_warnings, self.lint_notes
            )?;
        }
        write!(
            f,
            "cache: cpl {}/{} hits, dispatch {}/{} hits",
            self.cache.cpl_hits,
            self.cache.cpl_hits + self.cache.cpl_misses,
            self.cache.dispatch_hits,
            self.cache.dispatch_hits + self.cache.dispatch_misses
        )
    }
}

/// Everything a batch run produced: per-request outcomes in submission
/// order plus aggregate stats.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One outcome per request, ordered by request index.
    pub results: Vec<RequestOutcome>,
    /// Aggregate statistics.
    pub stats: BatchStats,
}

impl BatchOutcome {
    /// True when every request derived successfully.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(|r| r.ok())
    }

    /// The canonical deterministic report: one line per request, in
    /// request order, with no timing data. Two runs of the same batch
    /// over the same base schema render identically regardless of thread
    /// count — this is the byte-comparison form the concurrency tests
    /// (and the determinism guarantee in DESIGN.md) rely on.
    pub fn render(&self, base: &Schema) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.render_line(base));
            out.push('\n');
        }
        out.push_str(&format!(
            "batch: {} requests, {} ok, {} errors, {} invariant violations\n",
            self.stats.requests,
            self.stats.succeeded,
            self.stats.failed,
            self.stats.invariant_violations
        ));
        out
    }
}

/// The parallel batch derivation engine.
///
/// Construction freezes a copy-on-write snapshot of the base schema;
/// [`run`](BatchDeriver::run) fans requests out over scoped worker
/// threads, each deriving on a private fork, and merges the outcomes in
/// request order. See the crate docs for the full contract.
#[derive(Debug, Clone)]
pub struct BatchDeriver {
    snapshot: SchemaSnapshot,
    threads: usize,
    options: ProjectionOptions,
    lint: bool,
}

impl BatchDeriver {
    /// Snapshots `schema` and configures default parallelism (the
    /// machine's available cores) and default [`ProjectionOptions`]
    /// (invariant checking on).
    pub fn new(schema: &Schema) -> BatchDeriver {
        BatchDeriver::from_snapshot(schema.snapshot())
    }

    /// Builds the engine around an existing snapshot (no extra clone).
    pub fn from_snapshot(snapshot: SchemaSnapshot) -> BatchDeriver {
        BatchDeriver {
            snapshot,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            options: ProjectionOptions::default(),
            lint: false,
        }
    }

    /// Sets the worker-thread count (clamped to ≥ 1). At run time the
    /// effective count is further clamped to the request count and to
    /// the machine's available parallelism — oversubscribing a small
    /// container buys context switches, not throughput (a 1-core box
    /// ran 4-thread batches ~1.8× *slower* than sequential before the
    /// clamp). `threads(1)` is the sequential reference run.
    pub fn threads(mut self, threads: usize) -> BatchDeriver {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-request projection options.
    pub fn options(mut self, options: ProjectionOptions) -> BatchDeriver {
        self.options = options;
        self
    }

    /// Enables (or disables) per-request TDL linting. Off by default:
    /// linting adds an applicability pass per request, and throughput
    /// benchmarks measure the bare pipeline. When enabled, the schema-wide
    /// report is computed once on the shared snapshot and every fork
    /// answers it from the inherited cache; only the per-request
    /// projection-safety part is computed per fork.
    pub fn lint(mut self, lint: bool) -> BatchDeriver {
        self.lint = lint;
        self
    }

    /// The shared snapshot the engine derives against.
    pub fn snapshot(&self) -> &SchemaSnapshot {
        &self.snapshot
    }

    /// Pre-warms the snapshot's shared CPL memo by linearizing every
    /// live type once. Every fork taken afterwards starts with the warm
    /// entries instead of recomputing them per request.
    pub fn warm(&self) {
        for t in self.snapshot.live_type_ids() {
            // Cycles in a malformed hierarchy surface as errors later,
            // during derivation; warming must not fail the batch.
            let _ = self.snapshot.cpl(t);
        }
    }

    /// Pre-warms the snapshot's shared applicability index for every
    /// distinct valid source among `requests`, so each fork starts with
    /// the condensation index already built instead of rebuilding it per
    /// request. No-op unless the configured engine is [`Engine::Indexed`].
    /// [`run`](BatchDeriver::run) calls this automatically.
    pub fn warm_applicability_index(&self, requests: &[BatchRequest]) {
        if self.options.engine != Engine::Indexed || self.options.record_trace {
            return;
        }
        let mut seen = BTreeSet::new();
        for r in requests {
            if self.validate(r).is_ok() && seen.insert(r.source) {
                // A build failure (e.g. a dataflow error) surfaces as the
                // per-request pipeline error instead; warming never fails
                // the batch.
                let _ = self.snapshot.cached_applicability_index(r.source);
            }
        }
    }

    /// Runs the batch: every request is derived exactly once, in
    /// isolation, and the outcomes are returned in request order.
    pub fn run(&self, requests: &[BatchRequest]) -> BatchOutcome {
        let _span = td_telemetry::span_with_args(
            "batch",
            "run",
            vec![
                ("requests", requests.len().into()),
                ("threads", self.threads.into()),
            ],
        );
        let started = Instant::now();
        // Build the applicability index once per distinct source on the
        // shared snapshot; every fork below inherits the warm Arc instead
        // of condensing the call graph per request.
        {
            let _s = td_telemetry::span("batch", "warm");
            self.warm_applicability_index(requests);
            // Likewise the schema-wide lint report: computed once here,
            // every fork answers the schema part from the inherited cache.
            if self.lint {
                let _ = td_core::lint(self.snapshot.schema(), None);
            }
        }
        let n = requests.len();
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let threads = self.threads.min(n.max(1)).min(cores);
        // Trace scopes are thread-local; capture the ambient trace here
        // so worker threads can re-establish it per request. Each item
        // gets a child id sharing the parent's 16-hex family prefix —
        // one grep over a drained trace finds the whole batch.
        let parent_trace = td_telemetry::current_trace();

        let per_worker: Vec<Vec<RequestOutcome>> = if threads == 1 {
            // Spawn-free sequential fast path: one worker would only
            // add a scope, a spawn and a join around the same loop.
            vec![(0..n)
                .map(|i| self.run_one(i, &requests[i], parent_trace))
                .collect()]
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut mine = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                mine.push(self.run_one(i, &requests[i], parent_trace));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("batch worker panicked"))
                    .collect()
            })
        };

        // Deterministic merge: slot every outcome at its request index.
        let mut slots: Vec<Option<RequestOutcome>> = (0..n).map(|_| None).collect();
        for outcome in per_worker.into_iter().flatten() {
            let i = outcome.index;
            debug_assert!(slots[i].is_none(), "request {i} processed twice");
            slots[i] = Some(outcome);
        }
        let results: Vec<RequestOutcome> = slots
            .into_iter()
            .map(|s| s.expect("work queue covered every request"))
            .collect();

        let mut stats = BatchStats {
            requests: n,
            threads,
            wall_clock: started.elapsed(),
            ..BatchStats::default()
        };
        stats.linted = self.lint;
        for r in &results {
            stats.cpu_time += r.duration;
            stats.cache = stats.cache.merge(&r.cache);
            if let Some(lint) = &r.lint {
                stats.lint_errors += lint.errors();
                stats.lint_warnings += lint.warnings();
                stats.lint_notes += lint.notes();
            }
            match &r.result {
                Ok(d) => {
                    stats.succeeded += 1;
                    stats.stages.accumulate(&d.stage_times);
                    if matches!(&d.invariants, Some(rep) if !rep.ok()) {
                        stats.invariant_violations += 1;
                    }
                }
                Err(_) => stats.failed += 1,
            }
        }
        // Bridge the rolled-up cache counters into the metrics registry
        // (a no-op while telemetry is off).
        stats.cache.publish();
        BatchOutcome { results, stats }
    }

    /// Validates a request's ids against the snapshot, so malformed
    /// requests become per-request errors instead of worker panics.
    fn validate(&self, request: &BatchRequest) -> Result<(), CoreError> {
        if !self.snapshot.is_live(request.source) {
            return Err(CoreError::Model(ModelError::BadTypeId(request.source)));
        }
        for &a in &request.projection {
            if a.index() >= self.snapshot.n_attrs() {
                return Err(CoreError::Model(ModelError::BadAttrId(a)));
            }
        }
        Ok(())
    }

    fn run_one(
        &self,
        index: usize,
        request: &BatchRequest,
        parent_trace: Option<td_telemetry::TraceId>,
    ) -> RequestOutcome {
        let started = Instant::now();
        if let Err(e) = self.validate(request) {
            return RequestOutcome {
                index,
                request: request.clone(),
                result: Err(e),
                schema: None,
                cache: DispatchCacheStats::default(),
                lint: None,
                duration: started.elapsed(),
            };
        }
        // Only under an ambient trace (a traced server request): the
        // untraced path must emit byte-identical spans regardless of
        // thread count, which per-item ids would break.
        let _trace = parent_trace.map(|p| td_telemetry::trace_scope(p.child(index)));
        let _span = td_telemetry::span_with_args(
            "batch",
            "request",
            vec![
                ("index", index.into()),
                ("source", self.snapshot.type_name(request.source).into()),
                ("attrs", request.projection.len().into()),
            ],
        );
        let mut fork = self.snapshot.fork();
        let at_fork = fork.dispatch_cache_stats();
        // Lint before projecting: the derivation mutates the fork, which
        // bumps its generation and would flush the inherited lint cache.
        let lint = self
            .lint
            .then(|| td_core::lint(&fork, Some((request.source, &request.projection))));
        let result = project(
            &mut fork,
            request.source,
            &request.projection,
            &self.options,
        );
        let cache = fork.dispatch_cache_stats().delta(&at_fork);
        let schema = result.is_ok().then_some(fork);
        RequestOutcome {
            index,
            request: request.clone(),
            result,
            schema,
            cache,
            lint,
            duration: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::ValueType;

    /// Person <- Employee with accessors and one computed method, enough
    /// to exercise applicability and factoring.
    fn base_schema() -> Schema {
        use td_model::{BodyBuilder, Expr, MethodKind, Specializer};
        let mut s = Schema::new();
        let person = s.add_type("Person", &[]).unwrap();
        let employee = s.add_type("Employee", &[person]).unwrap();
        for (name, owner) in [
            ("SSN", person),
            ("date_of_birth", person),
            ("pay_rate", employee),
        ] {
            let a = s.add_attr(name, ValueType::INT, owner).unwrap();
            s.add_accessors(a).unwrap();
        }
        let get_dob = s.gf_id("get_date_of_birth").unwrap();
        let age = s.add_gf("age", 1, Some(ValueType::INT)).unwrap();
        let mut bb = BodyBuilder::new();
        bb.ret(Expr::call(get_dob, vec![Expr::Param(0)]));
        s.add_method(
            age,
            "age",
            vec![Specializer::Type(person)],
            MethodKind::General(bb.finish()),
            Some(ValueType::INT),
        )
        .unwrap();
        s
    }

    fn requests(s: &Schema) -> Vec<BatchRequest> {
        vec![
            BatchRequest::by_names(s, "Employee", &["SSN", "date_of_birth"]).unwrap(),
            BatchRequest::by_names(s, "Employee", &["pay_rate"]).unwrap(),
            BatchRequest::by_names(s, "Person", &["SSN"]).unwrap(),
        ]
    }

    #[test]
    fn batch_derives_every_request_in_order() {
        let s = base_schema();
        let outcome = BatchDeriver::new(&s).threads(3).run(&requests(&s));
        assert!(outcome.all_ok());
        assert_eq!(outcome.stats.succeeded, 3);
        assert_eq!(outcome.stats.failed, 0);
        assert_eq!(outcome.stats.invariant_violations, 0);
        for (i, r) in outcome.results.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.invariants_ok());
            assert!(r.schema.is_some());
            assert!(r.duration > Duration::ZERO);
        }
        // Requests ran in isolation: the base schema is untouched.
        assert_eq!(s.n_types(), 2);
        // Each successful fork contains its own derived surrogate.
        let d0 = outcome.results[0].result.as_ref().unwrap();
        let fork0 = outcome.results[0].schema.as_ref().unwrap();
        assert_eq!(fork0.type_name(d0.derived), "^Employee");
    }

    #[test]
    fn bad_requests_become_per_request_errors() {
        let s = base_schema();
        let mut reqs = requests(&s);
        // Unavailable attribute (pay_rate is not available at Person).
        reqs.push(BatchRequest {
            source: s.type_id("Person").unwrap(),
            projection: [s.attr_id("pay_rate").unwrap()].into_iter().collect(),
        });
        // Out-of-range ids must not panic a worker.
        reqs.push(BatchRequest {
            source: TypeId::from_index(999),
            projection: BTreeSet::new(),
        });
        reqs.push(BatchRequest {
            source: s.type_id("Person").unwrap(),
            projection: [AttrId::from_index(999)].into_iter().collect(),
        });
        let outcome = BatchDeriver::new(&s).threads(2).run(&reqs);
        assert_eq!(outcome.stats.succeeded, 3);
        assert_eq!(outcome.stats.failed, 3);
        assert!(!outcome.all_ok());
        assert!(outcome.results[3].result.is_err());
        assert!(outcome.results[4].result.is_err());
        assert!(outcome.results[5].result.is_err());
        // The deterministic report names each failure.
        let report = outcome.render(&s);
        assert_eq!(report.matches("→ error:").count(), 3);
        assert!(report.contains("6 requests, 3 ok, 3 errors"));
    }

    #[test]
    fn thread_counts_do_not_change_the_report() {
        let s = base_schema();
        let reqs = requests(&s);
        let sequential = BatchDeriver::new(&s).threads(1).run(&reqs).render(&s);
        for threads in [2, 3, 8] {
            let parallel = BatchDeriver::new(&s).threads(threads).run(&reqs).render(&s);
            assert_eq!(sequential, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let s = base_schema();
        let outcome = BatchDeriver::new(&s).run(&[]);
        assert!(outcome.all_ok());
        assert_eq!(outcome.stats.requests, 0);
        assert!(outcome.render(&s).contains("0 requests"));
    }

    #[test]
    fn warm_populates_the_shared_snapshot() {
        let s = base_schema();
        let deriver = BatchDeriver::new(&s);
        assert_eq!(deriver.snapshot().dispatch_cache_stats().cpl_entries, 0);
        deriver.warm();
        assert!(deriver.snapshot().dispatch_cache_stats().cpl_entries > 0);
        // Forks taken after warming carry the entries.
        assert!(deriver.snapshot().fork().dispatch_cache_stats().cpl_entries > 0);
    }

    #[test]
    fn run_warms_the_applicability_index_per_distinct_source() {
        let s = base_schema();
        let deriver = BatchDeriver::new(&s);
        assert_eq!(deriver.snapshot().dispatch_cache_stats().index_entries, 0);
        let outcome = deriver.threads(2).run(&requests(&s));
        assert!(outcome.all_ok());
        // Two distinct sources (Employee, Person) → two resident indexes
        // on the shared snapshot, built exactly once each.
        let stats = outcome
            .results
            .iter()
            .fold(DispatchCacheStats::default(), |acc, r| acc.merge(&r.cache));
        assert_eq!(stats.index_misses, 0, "forks must reuse the warm index");
        assert!(stats.index_hits >= 3, "each request hits the shared index");
    }

    #[test]
    fn engines_produce_identical_batch_reports() {
        let s = base_schema();
        let reqs = requests(&s);
        let render_with = |engine: Engine| {
            let opts = ProjectionOptions {
                engine,
                ..ProjectionOptions::default()
            };
            BatchDeriver::new(&s)
                .threads(2)
                .options(opts)
                .run(&reqs)
                .render(&s)
        };
        let indexed = render_with(Engine::Indexed);
        assert_eq!(indexed, render_with(Engine::Stack));
        assert_eq!(indexed, render_with(Engine::Fixpoint));
    }

    #[test]
    fn lint_reports_surface_in_outcomes_and_stats() {
        let s = base_schema();
        let outcome = BatchDeriver::new(&s)
            .threads(2)
            .lint(true)
            .run(&requests(&s));
        assert!(outcome.all_ok());
        assert!(outcome.results.iter().all(|r| r.lint.is_some()));
        assert!(outcome.stats.linted);
        assert_eq!(outcome.stats.lint_errors, 0);
        // Π_{pay_rate}(Employee) and Π_{SSN}(Person) both strand `age`
        // (its body needs date_of_birth): behavior-free warnings (TDL004).
        assert_eq!(outcome.stats.lint_warnings, 2);
        assert!(
            outcome.stats.to_string().contains("lint:"),
            "{}",
            outcome.stats
        );

        // The schema-wide part was computed once on the shared snapshot;
        // every fork answers it from the inherited cache, paying only the
        // per-request projection-safety miss.
        let merged = outcome
            .results
            .iter()
            .fold(DispatchCacheStats::default(), |acc, r| acc.merge(&r.cache));
        assert_eq!(
            merged.lint_hits, 3,
            "each fork reuses the schema-part report"
        );
        assert_eq!(merged.lint_misses, 3, "one request-part computation each");
    }

    #[test]
    fn lint_is_off_by_default() {
        let s = base_schema();
        let outcome = BatchDeriver::new(&s).run(&requests(&s));
        assert!(outcome.results.iter().all(|r| r.lint.is_none()));
        assert!(!outcome.stats.linted);
        assert!(!outcome.stats.to_string().contains("lint:"));
    }

    #[test]
    fn parse_requests_resolves_and_locates_errors() {
        let s = base_schema();
        let reqs = parse_requests(
            &s,
            "# views\nEmployee: SSN, date_of_birth\n\nPerson: SSN # badge\n",
        )
        .unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(
            reqs[0],
            BatchRequest::by_names(&s, "Employee", &["SSN", "date_of_birth"]).unwrap()
        );
        assert_eq!(
            reqs[1],
            BatchRequest::by_names(&s, "Person", &["SSN"]).unwrap()
        );

        // Every failure mode carries its 1-based line number.
        let e = parse_requests(&s, "Employee: SSN\nEmployee SSN\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected `Type:"), "{e}");
        let e = parse_requests(&s, "\n\nNope: SSN\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown type name"), "{e}");
        let e = parse_requests(&s, "Person: whoops\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown attribute"), "{e}");
        let e = parse_requests(&s, ": SSN\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("type name before"), "{e}");
        assert_eq!(e.to_string(), format!("line 1: {}", e.message));
    }

    #[test]
    fn stats_roll_up_stage_times_and_cache_counters() {
        let s = base_schema();
        let outcome = BatchDeriver::new(&s).threads(1).run(&requests(&s));
        assert!(outcome.stats.stages.total() > Duration::ZERO);
        assert!(outcome.stats.cpu_time >= outcome.stats.stages.total());
        assert!(outcome.stats.wall_clock > Duration::ZERO);
        // The invariant replay dispatches plenty; the rollup must see it.
        assert!(outcome.stats.cache.dispatch_hits + outcome.stats.cache.dispatch_misses > 0);
        let text = outcome.stats.to_string();
        assert!(text.contains("3 requests"));
        assert!(text.contains("stages:"));
        assert!(text.contains("cache:"));
    }
}
