//! The schema change feed: subscriptions over registered schemas that
//! stream **incremental re-derivation results** when a tenant PUTs a new
//! schema version.
//!
//! A subscriber names a `(tenant, schema)` pair and, optionally, a view
//! (`type` + `attrs` — the same shape a `/v1/project` request takes).
//! Every successful re-registration produces a [`PutOutcome`] carrying
//! the structured diff and both snapshots; the hub re-derives the
//! subscriber's view against the old and the new schema and emits only
//! what *changed*:
//!
//! * **verdicts** — methods whose `IsApplicable` classification for the
//!   view flipped (applicable ⇄ not applicable ⇄ absent);
//! * **lint** — findings added or resolved by the edit;
//! * **dispatch** — generic functions whose most-specific winner at the
//!   view's source type changed.
//!
//! Methods and functions are identified by *label*, never id — the two
//! sides are different schemas, and labels are the only identity that
//! crosses that boundary (ids do too under an append-only edit, but the
//! feed must stay meaningful when stability breaks).
//!
//! The hub is transport-free: it hands events to subscribers over plain
//! channels as pre-rendered SSE frames. The socket side (the dedicated
//! streaming thread per `GET /v1/watch` connection) lives in `lib.rs`;
//! the CLI's `tdv watch` is a line-oriented client of that endpoint.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use td_core::{compute_applicability, lint};
use td_model::{CallArg, Schema};

use crate::json::{quote, str_array};
use crate::registry::PutOutcome;

/// A subscriber's optional view: derivations are re-run for this
/// projection on every matching schema change.
#[derive(Debug, Clone)]
pub struct WatchView {
    /// Source type name, resolved independently on each schema version.
    pub type_name: String,
    /// Projection attribute names.
    pub attrs: Vec<String>,
}

struct Watcher {
    id: u64,
    tenant: String,
    schema: String,
    view: Option<WatchView>,
    tx: Sender<String>,
}

/// Fan-out point between the registry's PUT path and the streaming
/// connections. One per [`crate::Api`].
#[derive(Default)]
pub struct WatchHub {
    watchers: Mutex<Vec<Watcher>>,
    next_id: AtomicU64,
}

impl WatchHub {
    /// Registers a subscriber and returns its id plus the event stream.
    /// The first frame is always a `hello` event echoing the
    /// subscription, so clients can confirm registration before
    /// triggering the edit they want to observe.
    pub fn subscribe(
        &self,
        tenant: &str,
        schema: &str,
        view: Option<WatchView>,
    ) -> (u64, Receiver<String>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = channel();
        let hello = format!(
            "event: hello\ndata: {{\"tenant\": {}, \"schema\": {}, \"watching\": {}}}\n\n",
            quote(tenant),
            quote(schema),
            match &view {
                Some(v) => format!(
                    "{{\"type\": {}, \"attrs\": {}}}",
                    quote(&v.type_name),
                    str_array(v.attrs.iter().map(String::as_str))
                ),
                None => "null".to_string(),
            }
        );
        let _ = tx.send(hello);
        self.watchers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Watcher {
                id,
                tenant: tenant.to_string(),
                schema: schema.to_string(),
                view,
                tx,
            });
        td_telemetry::metrics::counter("server/watch/subscribed").add(1);
        (id, rx)
    }

    /// Drops a subscriber (streaming side hung up).
    pub fn unsubscribe(&self, id: u64) {
        self.watchers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|w| w.id != id);
    }

    /// Number of live subscribers (drives the skip-fast path in the PUT
    /// handler and the tests).
    pub fn len(&self) -> usize {
        self.watchers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True when nobody is watching.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fans a successful PUT out to every matching subscriber as a
    /// `change` event with the incremental re-derivation results.
    /// Subscribers whose channel is gone are dropped.
    pub fn notify_put(&self, tenant: &str, name: &str, outcome: &PutOutcome) {
        let mut watchers = self.watchers.lock().unwrap_or_else(|e| e.into_inner());
        if watchers.is_empty() {
            return;
        }
        let mut delivered = 0u64;
        watchers.retain(|w| {
            if w.tenant != tenant || w.schema != name {
                return true;
            }
            let event = change_event(tenant, name, outcome, w.view.as_ref());
            let alive = w.tx.send(event).is_ok();
            if alive {
                delivered += 1;
            }
            alive
        });
        if delivered > 0 {
            td_telemetry::metrics::counter("server/watch/events").add(delivered);
        }
    }
}

/// Renders one `change` SSE frame: version, diff summary, carry tally,
/// and — when the subscriber registered a view — the changed
/// applicability verdicts, lint findings and dispatch winners.
fn change_event(
    tenant: &str,
    name: &str,
    outcome: &PutOutcome,
    view: Option<&WatchView>,
) -> String {
    let new = outcome.snapshot.schema();
    let old = outcome.previous.as_ref().map(|p| p.snapshot.schema());
    let summary = outcome
        .diff
        .as_ref()
        .map(|d| d.summary())
        .unwrap_or_else(|| "first registration".to_string());
    let mut fields = vec![
        format!("\"tenant\": {}", quote(tenant)),
        format!("\"schema\": {}", quote(name)),
        format!("\"version\": {}", outcome.version),
        format!("\"summary\": {}", quote(&summary)),
        format!(
            "\"carried\": {{\"cpl\": {}, \"dispatch\": {}, \"indexes\": {}}}",
            outcome.carried.cpl, outcome.carried.dispatch, outcome.carried.indexes
        ),
    ];
    if let Some(view) = view {
        let old_verdicts = old.map(|s| view_verdicts(s, view)).unwrap_or_default();
        let new_verdicts = view_verdicts(new, view);
        fields.push(render_verdict_changes(&old_verdicts, &new_verdicts));

        let old_lint = old.map(|s| lint_lines(s, view)).unwrap_or_default();
        let new_lint = lint_lines(new, view);
        fields.push(format!(
            "\"lint_added\": {}",
            str_array(new_lint.difference(&old_lint).map(String::as_str))
        ));
        fields.push(format!(
            "\"lint_resolved\": {}",
            str_array(old_lint.difference(&new_lint).map(String::as_str))
        ));

        let old_winners = old.map(|s| dispatch_winners(s, view)).unwrap_or_default();
        let new_winners = dispatch_winners(new, view);
        fields.push(render_dispatch_changes(&old_winners, &new_winners));
    }
    format!("event: change\ndata: {{{}}}\n\n", fields.join(", "))
}

/// `IsApplicable` classification of every method in the view's universe,
/// keyed by method label. Unresolvable views (the type or an attribute
/// does not exist on this side) classify as the empty map — every method
/// then reads as `absent`, which is exactly what a subscriber should see
/// when the edit removed its view's source.
fn view_verdicts(schema: &Schema, view: &WatchView) -> BTreeSet<(String, bool)> {
    let Ok(source) = schema.type_id(&view.type_name) else {
        return BTreeSet::new();
    };
    let mut projection = BTreeSet::new();
    for attr in &view.attrs {
        match schema.attr_id(attr) {
            Ok(a) => {
                projection.insert(a);
            }
            Err(_) => return BTreeSet::new(),
        }
    }
    let Ok(app) = compute_applicability(schema, source, &projection, false) else {
        return BTreeSet::new();
    };
    app.universe
        .iter()
        .map(|&m| (schema.method_label(m).to_string(), app.is_applicable(m)))
        .collect()
}

fn verdict_name(applicable: bool) -> &'static str {
    if applicable {
        "applicable"
    } else {
        "not_applicable"
    }
}

fn render_verdict_changes(
    old: &BTreeSet<(String, bool)>,
    new: &BTreeSet<(String, bool)>,
) -> String {
    let old_by_label: std::collections::BTreeMap<&str, bool> =
        old.iter().map(|(l, a)| (l.as_str(), *a)).collect();
    let new_by_label: std::collections::BTreeMap<&str, bool> =
        new.iter().map(|(l, a)| (l.as_str(), *a)).collect();
    let mut changes = Vec::new();
    for (label, &now) in &new_by_label {
        match old_by_label.get(label) {
            Some(&was) if was == now => {}
            Some(&was) => changes.push(format!(
                "{{\"method\": {}, \"was\": \"{}\", \"now\": \"{}\"}}",
                quote(label),
                verdict_name(was),
                verdict_name(now)
            )),
            None => changes.push(format!(
                "{{\"method\": {}, \"was\": \"absent\", \"now\": \"{}\"}}",
                quote(label),
                verdict_name(now)
            )),
        }
    }
    for (label, &was) in &old_by_label {
        if !new_by_label.contains_key(label) {
            changes.push(format!(
                "{{\"method\": {}, \"was\": \"{}\", \"now\": \"absent\"}}",
                quote(label),
                verdict_name(was)
            ));
        }
    }
    format!("\"changed_verdicts\": [{}]", changes.join(", "))
}

/// One stable line per lint finding, independent of either schema's ids.
fn lint_lines(schema: &Schema, view: &WatchView) -> BTreeSet<String> {
    let request = schema.type_id(&view.type_name).ok().and_then(|source| {
        let mut projection = BTreeSet::new();
        for attr in &view.attrs {
            projection.insert(schema.attr_id(attr).ok()?);
        }
        Some((source, projection))
    });
    let report = match &request {
        Some((source, projection)) => lint(schema, Some((*source, projection))),
        None => lint(schema, None),
    };
    report
        .diagnostics
        .iter()
        .map(|d| format!("{} {}: {}", d.severity, d.code.as_str(), d.message))
        .collect()
}

/// Most-specific winner (by label) per unary generic function at the
/// view's source type. Errors (ambiguity) and no-winner both render as
/// distinguished strings so a flip into ambiguity is itself a change.
fn dispatch_winners(
    schema: &Schema,
    view: &WatchView,
) -> std::collections::BTreeMap<String, String> {
    let Ok(source) = schema.type_id(&view.type_name) else {
        return Default::default();
    };
    let mut winners = std::collections::BTreeMap::new();
    for g in schema.gf_ids() {
        if schema.gf(g).arity != 1 {
            continue;
        }
        let winner = match schema.most_specific(g, &[CallArg::Object(source)]) {
            Ok(Some(m)) => schema.method_label(m).to_string(),
            Ok(None) => "(none)".to_string(),
            Err(_) => "(ambiguous)".to_string(),
        };
        winners.insert(schema.gf_name(g).to_string(), winner);
    }
    winners
}

fn render_dispatch_changes(
    old: &std::collections::BTreeMap<String, String>,
    new: &std::collections::BTreeMap<String, String>,
) -> String {
    let mut changes = Vec::new();
    for (gf, now) in new {
        let was = old.get(gf).map(String::as_str).unwrap_or("(absent)");
        if was != now {
            changes.push(format!(
                "{{\"gf\": {}, \"was\": {}, \"now\": {}}}",
                quote(gf),
                quote(was),
                quote(now)
            ));
        }
    }
    for (gf, was) in old {
        if !new.contains_key(gf) {
            changes.push(format!(
                "{{\"gf\": {}, \"was\": {}, \"now\": \"(absent)\"}}",
                quote(gf),
                quote(was)
            ));
        }
    }
    format!("\"changed_dispatch\": [{}]", changes.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    const BASE: &str = "type A { x: int  y: int }\ntype B : A { z: int }\n\
                        accessors x\naccessors y\naccessors z\n";

    fn hub_with_view() -> (WatchHub, Receiver<String>) {
        let hub = WatchHub::default();
        let (_id, rx) = hub.subscribe(
            "acme",
            "s",
            Some(WatchView {
                type_name: "B".to_string(),
                attrs: vec!["x".to_string(), "z".to_string()],
            }),
        );
        // Drain the hello frame.
        let hello = rx.recv().unwrap();
        assert!(hello.starts_with("event: hello\n"), "{hello}");
        (hub, rx)
    }

    #[test]
    fn change_event_reports_flipped_verdicts_and_dispatch() {
        let (hub, rx) = hub_with_view();
        let r = Registry::new();
        r.put("acme", "s", BASE).unwrap();

        // Edit: y's accessors stay, but a new general method appears
        // specialized on B — its verdict and dispatch winner are new.
        let edited = format!("{BASE}method f(B) -> int {{ return get_x($0); }}\n");
        let outcome = r.put("acme", "s", &edited).unwrap();
        hub.notify_put("acme", "s", &outcome);

        let event = rx.recv().unwrap();
        assert!(event.starts_with("event: change\n"), "{event}");
        assert!(event.contains("\"version\": 2"), "{event}");
        assert!(event.contains("\"summary\""), "{event}");
        // The new method enters the view's universe as applicable (it
        // only needs x, which the projection keeps).
        assert!(
            event.contains("\"method\": \"f\", \"was\": \"absent\", \"now\": \"applicable\""),
            "{event}"
        );
        // And it becomes the winner of its (new) generic function.
        assert!(
            event.contains("\"gf\": \"f\", \"was\": \"(absent)\", \"now\": \"f\""),
            "{event}"
        );
    }

    #[test]
    fn unrelated_tenants_receive_nothing_and_dead_watchers_are_dropped() {
        let (hub, rx) = hub_with_view();
        let r = Registry::new();
        let outcome = r.put("globex", "other", BASE).unwrap();
        hub.notify_put("globex", "other", &outcome);
        assert!(
            rx.try_recv().is_err(),
            "a watcher of acme/s must not see globex/other"
        );
        assert_eq!(hub.len(), 1);

        // Dropping the receiver kills the watcher on next delivery.
        drop(rx);
        let outcome = r.put("acme", "s", BASE).unwrap();
        hub.notify_put("acme", "s", &outcome);
        assert_eq!(hub.len(), 0, "dead subscriber must be dropped");
    }

    #[test]
    fn lint_changes_are_reported() {
        let (hub, rx) = hub_with_view();
        let r = Registry::new();
        r.put("acme", "s", BASE).unwrap();
        // Projecting x and z away from y: y's accessors lose their only
        // attribute — the request-part lint flags change shape when the
        // method set changes. Easiest observable delta: a method whose
        // body calls an accessor that the projection breaks.
        let edited = format!("{BASE}method g(B) -> int {{ return get_y($0); }}\n");
        let outcome = r.put("acme", "s", &edited).unwrap();
        hub.notify_put("acme", "s", &outcome);
        let event = rx.recv().unwrap();
        assert!(event.contains("\"lint_added\""), "{event}");
        assert!(event.contains("\"lint_resolved\""), "{event}");
        // g depends on y, which the view drops: not applicable.
        assert!(
            event.contains("\"method\": \"g\", \"was\": \"absent\", \"now\": \"not_applicable\""),
            "{event}"
        );
    }
}
