//! Endpoint dispatch: pure compute from `(method, path, query, body)` to
//! a [`Response`].
//!
//! The listener in `lib.rs` deliberately does no thinking — it parses
//! HTTP and feeds this table. Keeping [`Api::handle`] socket-free means
//! the loopback tests, the CI smoke client and the `serve_warm_vs_cold`
//! repro experiment all exercise the exact handlers production traffic
//! hits, without flaky socket timing in the measurement loop.
//!
//! | Endpoint | Body | Answer |
//! |---|---|---|
//! | `GET /healthz` | — | `ok` |
//! | `GET /metrics` | — | Prometheus text (`?format=json` for JSON) |
//! | `GET /v1/stats` | — | request counts + schema inventory |
//! | `PUT /v1/tenants/{t}/schemas/{n}` | schema text | `{version}` |
//! | `GET /v1/tenants/{t}/schemas/{n}` | — | registered text + version |
//! | `POST /v1/project` | view request | canonical derivation JSON |
//! | `POST /v1/applicable` | view request | method partition |
//! | `POST /v1/lint` | view request (view optional) | TDL report JSON |
//! | `POST /v1/analyze` | view request (view optional) + `precision`, `format` | TDL2xx report + stats |
//! | `POST /v1/explain` | view request + `method` | proof tree |
//! | `POST /v1/batch` | request-file text + `threads` | batch report |
//! | `GET /v1/watch?tenant=&schema=` | — | SSE change feed (served in `lib.rs`) |
//!
//! A view request names its schema one of two ways: `"schema"` — a name
//! registered under `"tenant"`, served from the warm shared snapshot —
//! or `"schema_text"` — inline text, parsed fresh per request (the cold
//! path). The warm/cold split is the registry's reason to exist; the
//! gated `ratio_serve_warm_vs_cold` metric keeps it honest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use td_core::{explain, project, Derivation, Engine, ProjectionOptions};
use td_model::{parse_schema_lenient, AnalysisPrecision, AttrId, Schema, TypeId};
use td_telemetry::TraceId;

use crate::http::Response;
use crate::json::{quote, str_array, Json};
use crate::registry::{Registry, SchemaEntry};
use crate::watch::WatchHub;

/// Longest artificial delay honored from a request's `delay_ms` field —
/// a load-testing aid (it keeps a queue slot provably occupied for the
/// admission-control tests), not a production feature.
pub const MAX_DELAY_MS: u64 = 1_000;

/// Completed-request records the flight recorder retains (oldest evicted
/// first). Sized so `GET /v1/debug/requests` covers the last few minutes
/// of moderate traffic while the ring stays a few tens of KiB.
pub const FLIGHT_RECORDER_CAPACITY: usize = 256;

/// Default latency objective for the SLO burn-rate gauge: 99% of
/// requests complete within this many microseconds (500 ms).
pub const DEFAULT_SLO_OBJECTIVE_US: u64 = 500_000;

/// Request-scoped context the connection layer hands to
/// [`Api::handle_with`]: the trace id assigned at admission (or adopted
/// from the client's `traceparent`), the tenant charged, and the time
/// the job spent queued before an exec worker picked it up.
#[derive(Debug, Clone, Default)]
pub struct RequestCtx {
    /// The request's trace id. `None` on the bare [`Api::handle`] path
    /// (unit tests, the repro harness) — those requests skip the flight
    /// recorder and response-header correlation.
    pub trace: Option<TraceId>,
    /// The admission-control tenant, when the connection layer resolved
    /// one (queued compute jobs).
    pub tenant: Option<String>,
    /// Microseconds spent in the fair queue before execution.
    pub queue_us: u64,
}

/// One completed request, as retained by the flight recorder and served
/// from `GET /v1/debug/requests`.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// 32-hex trace id.
    pub trace: String,
    /// Admission-control tenant.
    pub tenant: String,
    /// Endpoint bucket (same key as the metrics).
    pub endpoint: String,
    /// HTTP method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Microseconds queued before execution.
    pub queue_us: u64,
    /// Microseconds executing the handler.
    pub exec_us: u64,
    /// End-to-end microseconds (queue + exec).
    pub total_us: u64,
    /// Dispatch/lint/analysis cache hits charged while the request ran
    /// (registry `cache/*_hits` counter movement; zero while telemetry
    /// is off, since cache stats publish through the telemetry switch).
    pub cache_hits: u64,
    /// Cache misses charged while the request ran.
    pub cache_misses: u64,
}

impl RequestRecord {
    fn render_json(&self) -> String {
        format!(
            "{{\"trace\": {}, \"tenant\": {}, \"endpoint\": {}, \"method\": {}, \
             \"path\": {}, \"status\": {}, \"queue_us\": {}, \"exec_us\": {}, \
             \"total_us\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            quote(&self.trace),
            quote(&self.tenant),
            quote(&self.endpoint),
            quote(&self.method),
            quote(&self.path),
            self.status,
            self.queue_us,
            self.exec_us,
            self.total_us,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

/// Sum of the registry's `cache/*` hit and miss counters — the
/// before/after pair the flight recorder charges a request with.
fn cache_counts() -> (u64, u64) {
    use td_telemetry::metrics::counter;
    let hits = ["cpl", "dispatch", "index", "lint", "analysis"]
        .iter()
        .map(|k| counter(&format!("cache/{k}_hits")).get())
        .sum();
    let misses = ["cpl", "dispatch", "index", "lint", "analysis"]
        .iter()
        .map(|k| counter(&format!("cache/{k}_misses")).get())
        .sum();
    (hits, misses)
}

/// The server's request-independent state: the tenant registry plus
/// request accounting for `/v1/stats`.
pub struct Api {
    /// The tenant-scoped schema registry.
    pub registry: Registry,
    /// Live change-feed subscriptions; every successful schema PUT fans
    /// its [`crate::registry::PutOutcome`] out through here. Shared so
    /// each streaming connection's dedicated thread can outlive the io
    /// pool's borrow of the [`Api`].
    pub watch: Arc<WatchHub>,
    counts: Mutex<BTreeMap<String, u64>>,
    /// Fixed-size ring of recently completed trace-correlated requests.
    recorder: Mutex<VecDeque<RequestRecord>>,
    /// Latency objective (µs) the SLO burn-rate gauge measures against.
    slo_objective_us: AtomicU64,
}

/// A request-level failure: HTTP status plus message.
struct ApiError {
    status: u16,
    message: String,
}

fn bad(message: impl Into<String>) -> ApiError {
    ApiError {
        status: 400,
        message: message.into(),
    }
}

impl Default for Api {
    fn default() -> Api {
        Api::new()
    }
}

impl Api {
    /// A fresh API over an empty registry.
    pub fn new() -> Api {
        Api::with_registry(Registry::new())
    }

    /// An API over a pre-built registry (e.g. one restored from a
    /// snapshot directory).
    pub fn with_registry(registry: Registry) -> Api {
        Api {
            registry,
            watch: Arc::new(WatchHub::default()),
            counts: Mutex::new(BTreeMap::new()),
            recorder: Mutex::new(VecDeque::with_capacity(FLIGHT_RECORDER_CAPACITY)),
            slo_objective_us: AtomicU64::new(DEFAULT_SLO_OBJECTIVE_US),
        }
    }

    /// Sets the latency objective (µs) the SLO burn-rate gauge measures
    /// against: 99% of windowed requests must finish within it.
    pub fn set_slo_objective_us(&self, us: u64) {
        self.slo_objective_us.store(us.max(1), Ordering::Relaxed);
    }

    /// Dispatches one request with no connection context — unit tests
    /// and the repro harness. Equivalent to [`Api::handle_with`] under a
    /// default [`RequestCtx`]: no trace correlation, no flight-recorder
    /// entry.
    pub fn handle(&self, method: &str, path: &str, query: &str, body: &[u8]) -> Response {
        self.handle_with(method, path, query, body, &RequestCtx::default())
    }

    /// Dispatches one request. Never panics on malformed input — every
    /// failure maps to a status code and a JSON error envelope.
    ///
    /// When `ctx` carries a trace id, the whole dispatch runs under a
    /// [`td_telemetry::trace_scope`] (every pipeline span is stamped
    /// with the id), an umbrella `server/{endpoint}` span covering the
    /// handler is emitted, the response echoes a `Traceparent` header,
    /// and the completed request lands in the flight recorder.
    pub fn handle_with(
        &self,
        method: &str,
        path: &str,
        query: &str,
        body: &[u8],
        ctx: &RequestCtx,
    ) -> Response {
        let started = Instant::now();
        let start_ns = td_telemetry::now_ns();
        let endpoint = endpoint_key(method, path);
        let scope = ctx.trace.map(td_telemetry::trace_scope);
        let cache_before = cache_counts();
        let result = self.route(method, path, query, body);
        let end_ns = td_telemetry::now_ns();
        let elapsed_us = started.elapsed().as_micros() as u64;
        let total_us = ctx.queue_us + elapsed_us;
        let status = match &result {
            Ok(r) => r.status,
            Err(e) => e.status,
        };
        // Per-endpoint traffic and latency; `/metrics` scrapes render
        // these as Prometheus histograms.
        td_telemetry::metrics::counter(&format!("server/requests/{endpoint}")).add(1);
        td_telemetry::metrics::histogram(&format!("server/latency_us/{endpoint}"))
            .record(elapsed_us);
        // Sliding-window tails and rates (queue wait included — the SLO
        // is end-to-end), per endpoint, per tenant, and overall.
        {
            use td_telemetry::metrics::{windowed_counter, windowed_histogram};
            windowed_histogram(&format!("server/window_us/{endpoint}")).record_at(total_us, end_ns);
            windowed_histogram("server/window_us/all").record_at(total_us, end_ns);
            windowed_counter(&format!("server/window_requests/{endpoint}")).add_at(1, end_ns);
            if status >= 400 {
                windowed_counter(&format!("server/window_errors/{endpoint}")).add_at(1, end_ns);
            }
            if let Some(tenant) = &ctx.tenant {
                windowed_histogram(&format!("server/window_us/tenant/{tenant}"))
                    .record_at(total_us, end_ns);
            }
        }
        {
            let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
            *counts.entry(endpoint.clone()).or_insert(0) += 1;
        }
        let mut response = match result {
            Ok(response) => response,
            Err(e) => {
                td_telemetry::metrics::counter(&format!("server/errors/{}", e.status)).add(1);
                Response::error(e.status, &e.message)
            }
        };
        if let Some(trace) = ctx.trace {
            // The umbrella span must be pushed while the scope is still
            // alive so it carries the trace stamp like its children.
            td_telemetry::emit_span(
                "server",
                endpoint.clone(),
                start_ns,
                end_ns.saturating_sub(start_ns),
                vec![("status", i64::from(status).into())],
            );
            let cache_after = cache_counts();
            let record = RequestRecord {
                trace: trace.to_string(),
                tenant: ctx.tenant.clone().unwrap_or_else(|| "default".to_string()),
                endpoint: endpoint.clone(),
                method: method.to_string(),
                path: path.to_string(),
                status,
                queue_us: ctx.queue_us,
                exec_us: elapsed_us,
                total_us,
                cache_hits: cache_after.0.saturating_sub(cache_before.0),
                cache_misses: cache_after.1.saturating_sub(cache_before.1),
            };
            let mut recorder = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
            if recorder.len() >= FLIGHT_RECORDER_CAPACITY {
                recorder.pop_front();
            }
            recorder.push_back(record);
            drop(recorder);
            response
                .extra_headers
                .push(("Traceparent".to_string(), trace.traceparent()));
        }
        drop(scope);
        response
    }

    /// Accounts a request rejected before dispatch (429 admission
    /// backpressure, 503 shutdown): windowed request/error rates plus
    /// the per-tenant 429 rate the `tdv top` dashboard watches.
    pub fn record_rejection(&self, endpoint: &str, tenant: &str, status: u16) {
        use td_telemetry::metrics::windowed_counter;
        let now = td_telemetry::now_ns();
        windowed_counter(&format!("server/window_requests/{endpoint}")).add_at(1, now);
        windowed_counter(&format!("server/window_errors/{endpoint}")).add_at(1, now);
        if status == 429 {
            windowed_counter("server/window_429").add_at(1, now);
            windowed_counter(&format!("server/window_429/tenant/{tenant}")).add_at(1, now);
        }
    }

    fn route(
        &self,
        method: &str,
        path: &str,
        query: &str,
        body: &[u8],
    ) -> Result<Response, ApiError> {
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (method, segments.as_slice()) {
            ("GET", ["healthz"]) => Ok(Response::text(200, "ok\n")),
            ("GET", ["metrics"]) => Ok(self.metrics(query)),
            ("GET", ["v1", "stats"]) => Ok(self.stats()),
            ("GET", ["v1", "debug", "requests"]) => Ok(self.debug_requests()),
            (m, ["v1", "tenants", tenant, "schemas", name]) => self.schemas(m, tenant, name, body),
            ("POST", ["v1", verb]) => self.compute(verb, body),
            (_, ["healthz" | "metrics"])
            | (_, ["v1", "stats"])
            | (_, ["v1", "debug", "requests"]) => Err(ApiError {
                status: 405,
                message: format!("{path} only answers GET"),
            }),
            ("GET" | "PUT" | "POST" | "DELETE", _) => Err(ApiError {
                status: 404,
                message: format!("no such endpoint: {method} {path}"),
            }),
            _ => Err(ApiError {
                status: 405,
                message: format!("method {method} is not supported"),
            }),
        }
    }

    /// Refreshes the gauges derived from non-registry sources so every
    /// scrape (`/metrics`, `/v1/stats`) sees current values: the
    /// cumulative dropped-span total, the SLO objective and its windowed
    /// burn rate. The burn rate is the share of windowed requests over
    /// the latency objective divided by the 1% error budget (99% of
    /// requests must meet the objective); 1000 ‰ means the budget is
    /// being consumed exactly as fast as it accrues.
    fn refresh_derived_gauges(&self, now_ns: u64) {
        use td_telemetry::metrics::{gauge, windowed_histogram};
        gauge("telemetry/spans_dropped_total").set(td_telemetry::dropped_events_total() as i64);
        let objective = self.slo_objective_us.load(Ordering::Relaxed);
        gauge("server/slo_objective_us").set(objective as i64);
        let over = windowed_histogram("server/window_us/all").share_over_at(objective, now_ns);
        gauge("server/slo_burn_rate_milli").set((over / 0.01 * 1000.0) as i64);
    }

    fn metrics(&self, query: &str) -> Response {
        let now_ns = td_telemetry::now_ns();
        self.refresh_derived_gauges(now_ns);
        let snapshot = td_telemetry::metrics::snapshot_at(now_ns);
        if query.split('&').any(|p| p == "format=json") {
            Response::json(200, snapshot.render_json())
        } else {
            Response::text(200, td_telemetry::render_prometheus(&snapshot))
        }
    }

    fn stats(&self) -> Response {
        use std::fmt::Write as _;
        let counts = self
            .counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let total: u64 = counts.values().sum();
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"requests_total\": {total},");
        let _ = writeln!(out, "  \"requests\": {{");
        let n = counts.len();
        for (i, (endpoint, count)) in counts.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    {}: {count}{comma}", quote(endpoint));
        }
        let _ = writeln!(out, "  }},");
        let _ = write!(out, "{}", self.window_stats_json());
        let _ = writeln!(out, "  \"schemas\": [");
        let inventory = self.registry.inventory();
        let n = inventory.len();
        for (i, (tenant, name, version)) in inventory.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"tenant\": {}, \"name\": {}, \"version\": {version}}}{comma}",
                quote(tenant),
                quote(name)
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        Response::json(200, out)
    }

    /// The `"window"` section of `/v1/stats`: 60 s-windowed tails per
    /// endpoint and per tenant, windowed request/error/429 rates, the
    /// SLO burn gauge, queue depths and the dropped-span total —
    /// everything `tdv top` renders in one poll.
    fn window_stats_json(&self) -> String {
        use std::fmt::Write as _;
        let now_ns = td_telemetry::now_ns();
        self.refresh_derived_gauges(now_ns);
        let snap = td_telemetry::metrics::snapshot_at(now_ns);
        // Regroup the materialized `server/window_us/...` gauges into
        // per-endpoint / per-tenant objects.
        let mut endpoints: BTreeMap<&str, BTreeMap<&str, i64>> = BTreeMap::new();
        let mut tenants: BTreeMap<&str, BTreeMap<&str, i64>> = BTreeMap::new();
        let mut requests_60s = 0i64;
        let mut errors_60s = 0i64;
        for (name, &value) in &snap.gauges {
            if let Some(rest) = name.strip_prefix("server/window_us/") {
                let Some((key, stat)) = rest.rsplit_once('/') else {
                    continue;
                };
                match key.strip_prefix("tenant/") {
                    Some(tenant) => tenants.entry(tenant).or_default().insert(stat, value),
                    None => endpoints.entry(key).or_default().insert(stat, value),
                };
            } else if name.starts_with("server/window_requests/") && name.ends_with("/60s") {
                requests_60s += value;
            } else if name.starts_with("server/window_errors/") && name.ends_with("/60s") {
                errors_60s += value;
            }
        }
        let group = |m: &BTreeMap<&str, BTreeMap<&str, i64>>| -> String {
            m.iter()
                .map(|(key, stats)| {
                    let fields = stats
                        .iter()
                        .map(|(s, v)| format!("{}: {v}", quote(s)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("      {}: {{{fields}}}", quote(key))
                })
                .collect::<Vec<_>>()
                .join(",\n")
        };
        let gauge = |name: &str| snap.gauges.get(name).copied().unwrap_or(0);
        let mut queue_depths = String::new();
        for (name, &value) in &snap.gauges {
            if let Some(tenant) = name.strip_prefix("server/queue_depth/tenant/") {
                if !queue_depths.is_empty() {
                    queue_depths.push_str(", ");
                }
                let _ = write!(queue_depths, "{}: {value}", quote(tenant));
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "  \"window\": {{");
        let _ = writeln!(out, "    \"seconds\": {},", td_telemetry::WINDOW_SECONDS);
        let _ = writeln!(out, "    \"requests_60s\": {requests_60s},");
        let _ = writeln!(out, "    \"errors_60s\": {errors_60s},");
        let _ = writeln!(
            out,
            "    \"throttled_429_60s\": {},",
            gauge("server/window_429/60s")
        );
        let _ = writeln!(
            out,
            "    \"slo_objective_us\": {},",
            gauge("server/slo_objective_us")
        );
        let _ = writeln!(
            out,
            "    \"slo_burn_rate_milli\": {},",
            gauge("server/slo_burn_rate_milli")
        );
        let _ = writeln!(
            out,
            "    \"spans_dropped_total\": {},",
            gauge("telemetry/spans_dropped_total")
        );
        let _ = writeln!(out, "    \"queue_depth\": {},", gauge("server/queue_depth"));
        let _ = writeln!(out, "    \"queue_depth_by_tenant\": {{{queue_depths}}},");
        let _ = writeln!(out, "    \"endpoints\": {{");
        let _ = writeln!(out, "{}", group(&endpoints));
        let _ = writeln!(out, "    }},");
        let _ = writeln!(out, "    \"tenants\": {{");
        let _ = writeln!(out, "{}", group(&tenants));
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }},");
        out
    }

    /// `GET /v1/debug/requests`: the flight recorder, most recent first.
    fn debug_requests(&self) -> Response {
        let recorder = self.recorder.lock().unwrap_or_else(|e| e.into_inner());
        let rows = recorder
            .iter()
            .rev()
            .map(|r| format!("    {}", r.render_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        drop(recorder);
        Response::json(
            200,
            format!(
                "{{\n  \"capacity\": {FLIGHT_RECORDER_CAPACITY},\n  \"requests\": [\n{rows}\n  ]\n}}\n"
            ),
        )
    }

    fn schemas(
        &self,
        method: &str,
        tenant: &str,
        name: &str,
        body: &[u8],
    ) -> Result<Response, ApiError> {
        if !Registry::valid_name(tenant) || !Registry::valid_name(name) {
            return Err(bad(
                "tenant and schema names are 1-64 chars of [A-Za-z0-9._-]",
            ));
        }
        match method {
            "PUT" => {
                let text =
                    std::str::from_utf8(body).map_err(|_| bad("schema text must be UTF-8"))?;
                if text.trim().is_empty() {
                    return Err(bad("refusing to register an empty schema"));
                }
                let outcome = self
                    .registry
                    .put(tenant, name, text)
                    .map_err(|e| bad(format!("schema does not parse: {e}")))?;
                self.watch.notify_put(tenant, name, &outcome);
                let version = outcome.version;
                let status = if version == 1 { 201 } else { 200 };
                let summary = outcome
                    .diff
                    .as_ref()
                    .map(|d| d.summary())
                    .unwrap_or_else(|| "first registration".to_string());
                Ok(Response::json(
                    status,
                    format!(
                        "{{\"tenant\": {}, \"name\": {}, \"version\": {version}, \
                         \"diff\": {}, \"carried\": {}}}\n",
                        quote(tenant),
                        quote(name),
                        quote(&summary),
                        outcome.carried.total()
                    ),
                ))
            }
            "GET" => {
                let entry = self.lookup(tenant, name)?;
                Ok(Response::json(
                    200,
                    format!(
                        "{{\"tenant\": {}, \"name\": {}, \"version\": {}, \"schema\": {}}}\n",
                        quote(tenant),
                        quote(name),
                        entry.version,
                        quote(&entry.text)
                    ),
                ))
            }
            other => Err(ApiError {
                status: 405,
                message: format!("schemas endpoint answers PUT and GET, not {other}"),
            }),
        }
    }

    fn lookup(&self, tenant: &str, name: &str) -> Result<std::sync::Arc<SchemaEntry>, ApiError> {
        self.registry.get(tenant, name).ok_or(ApiError {
            status: 404,
            message: format!("tenant `{tenant}` has no schema named `{name}`"),
        })
    }

    fn compute(&self, verb: &str, body: &[u8]) -> Result<Response, ApiError> {
        let req = ComputeRequest::parse(verb, body)?;
        if req.delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                req.delay_ms.min(MAX_DELAY_MS),
            ));
        }
        match verb {
            "project" => self.project(&req),
            "applicable" => self.applicable(&req),
            "lint" => self.lint(&req),
            "analyze" => self.analyze(&req),
            "explain" => self.explain(&req),
            "batch" => self.batch(&req),
            other => Err(ApiError {
                status: 404,
                message: format!("no such endpoint: POST /v1/{other}"),
            }),
        }
    }

    /// The schema a compute request runs against: a fork of the warm
    /// registered snapshot, or a freshly parsed inline text. `warm_for`
    /// charges the shared snapshot's caches before forking so the next
    /// request over the same registered schema starts warm.
    fn resolve(&self, req: &ComputeRequest, source_name: Option<&str>) -> Result<Schema, ApiError> {
        match (&req.schema, &req.schema_text) {
            (Some(name), None) => {
                let entry = self.lookup(&req.tenant, name)?;
                if let Some(source_name) = source_name {
                    if let Ok(source) = entry.snapshot.schema().type_id(source_name) {
                        entry.warm_for(source);
                    }
                }
                Ok(entry.snapshot.fork())
            }
            (None, Some(text)) => if req.lenient {
                parse_schema_lenient(text)
            } else {
                td_model::parse_schema(text)
            }
            .map_err(|e| bad(format!("schema_text does not parse: {e}"))),
            (Some(_), Some(_)) => Err(bad("give `schema` or `schema_text`, not both")),
            (None, None) => Err(bad("missing schema: give `schema` or `schema_text`")),
        }
    }

    fn view(
        &self,
        schema: &Schema,
        req: &ComputeRequest,
    ) -> Result<(TypeId, BTreeSet<AttrId>), ApiError> {
        let ty = req.ty.as_deref().ok_or_else(|| bad("missing `type`"))?;
        let source = schema.type_id(ty).map_err(|e| bad(e.to_string()))?;
        let projection = req
            .attrs
            .iter()
            .map(|n| schema.attr_id(n).map_err(|e| bad(e.to_string())))
            .collect::<Result<BTreeSet<AttrId>, ApiError>>()?;
        Ok((source, projection))
    }

    fn project(&self, req: &ComputeRequest) -> Result<Response, ApiError> {
        let mut schema = self.resolve(req, req.ty.as_deref())?;
        let (source, projection) = self.view(&schema, req)?;
        let opts = ProjectionOptions {
            engine: req.engine,
            ..ProjectionOptions::default()
        };
        let d = project(&mut schema, source, &projection, &opts).map_err(|e| bad(e.to_string()))?;
        Ok(Response::json(200, derivation_json(&schema, &d)))
    }

    fn applicable(&self, req: &ComputeRequest) -> Result<Response, ApiError> {
        let schema = self.resolve(req, req.ty.as_deref())?;
        let (source, projection) = self.view(&schema, req)?;
        let r = match req.engine {
            Engine::Indexed => {
                td_core::compute_applicability_indexed(&schema, source, &projection, false)
            }
            Engine::Stack => td_core::compute_applicability(&schema, source, &projection, false),
            Engine::Fixpoint => {
                td_core::compute_applicability_fixpoint(&schema, source, &projection)
            }
        }
        .map_err(|e| bad(e.to_string()))?;
        let labels = |ms: &[td_model::MethodId]| {
            str_array(ms.iter().map(|&m| schema.method_label(m).to_string()))
        };
        Ok(Response::json(
            200,
            format!(
                "{{\"applicable\": {}, \"not_applicable\": {}}}\n",
                labels(&r.applicable),
                labels(&r.not_applicable)
            ),
        ))
    }

    fn lint(&self, req: &ComputeRequest) -> Result<Response, ApiError> {
        let schema = self.resolve(req, req.ty.as_deref())?;
        let view = if req.ty.is_some() {
            Some(self.view(&schema, req)?)
        } else {
            None
        };
        let report = td_core::lint(&schema, view.as_ref().map(|(t, a)| (*t, a)));
        Ok(Response::json(200, report.render_json()))
    }

    fn analyze(&self, req: &ComputeRequest) -> Result<Response, ApiError> {
        // Unlike the derivation endpoints, analysis never mutates the
        // schema — only its interior-mutability caches. Registered
        // schemas therefore run against the shared warm snapshot itself
        // (not a fork), so the analysis reports persist across requests
        // and a delta re-registration carries whatever stays valid.
        let shared;
        let fresh;
        let schema: &Schema = if let (Some(name), None) = (&req.schema, &req.schema_text) {
            shared = self.lookup(&req.tenant, name)?;
            shared.snapshot.schema()
        } else {
            fresh = self.resolve(req, req.ty.as_deref())?;
            &fresh
        };
        let view = if req.ty.is_some() {
            Some(self.view(schema, req)?)
        } else {
            None
        };
        let outcome =
            td_analyze::analyze(schema, view.as_ref().map(|(t, a)| (*t, a)), req.precision);
        if req.format.as_deref() == Some("sarif") {
            return Ok(Response::json(
                200,
                outcome.report.render_sarif("td-analyze"),
            ));
        }
        // Registered schemas answer from the warm shared snapshot whose
        // dispatch cache holds the analysis reports, so repeat requests —
        // and requests after a delta re-registration — report
        // `schema_cached`/`request_cached` truthfully.
        let s = &outcome.stats;
        Ok(Response::json(
            200,
            format!(
                "{{\"precision\": {}, \"schema_cached\": {}, \"request_cached\": {}, \
                 \"fallback_syntactic\": {}, \"fallback_semantic\": {}, \"report\": {}}}\n",
                quote(s.precision.as_str()),
                s.schema_cached,
                s.request_cached,
                s.fallback_syntactic,
                s.fallback_semantic,
                outcome.report.render_json().trim_end(),
            ),
        ))
    }

    fn explain(&self, req: &ComputeRequest) -> Result<Response, ApiError> {
        let schema = self.resolve(req, req.ty.as_deref())?;
        let (source, projection) = self.view(&schema, req)?;
        let label = req
            .method
            .as_deref()
            .ok_or_else(|| bad("missing `method` (a method label to explain)"))?;
        let method = schema
            .method_by_label(label)
            .map_err(|e| bad(e.to_string()))?;
        let e = explain(&schema, source, &projection, method).map_err(|e| bad(e.to_string()))?;
        Ok(Response::json(
            200,
            format!(
                "{{\"method\": {}, \"applicable\": {}, \"explanation\": {}}}\n",
                quote(label),
                e.is_applicable(),
                quote(&e.render(&schema))
            ),
        ))
    }

    fn batch(&self, req: &ComputeRequest) -> Result<Response, ApiError> {
        let requests_text = req.requests.as_deref().ok_or_else(|| {
            bad("missing `requests` (request-file text, one `Type: attrs` per line)")
        })?;
        // Registered schemas batch from the shared warm snapshot; inline
        // texts build a throwaway deriver.
        let deriver = match (&req.schema, &req.schema_text) {
            (Some(name), None) => {
                let entry = self.lookup(&req.tenant, name)?;
                td_driver::BatchDeriver::from_snapshot(entry.snapshot.clone())
            }
            _ => td_driver::BatchDeriver::new(&self.resolve(req, None)?),
        };
        let base = deriver.snapshot().clone();
        // The same located-error parser `tdv batch` uses: a bad line
        // comes back as `line N: message`.
        let requests = td_driver::parse_requests(base.schema(), requests_text)
            .map_err(|e| bad(format!("requests: {e}")))?;
        let mut deriver = deriver
            .options(ProjectionOptions {
                engine: req.engine,
                ..ProjectionOptions::default()
            })
            .lint(true);
        if let Some(threads) = req.threads {
            if threads == 0 || threads > 64 {
                return Err(bad("`threads` must be between 1 and 64"));
            }
            deriver = deriver.threads(threads);
        }
        deriver.warm();
        let outcome = deriver.run(&requests);
        let s = &outcome.stats;
        Ok(Response::json(
            200,
            format!(
                "{{\"report\": {}, \"requests\": {}, \"ok\": {}, \"errors\": {}, \"invariant_violations\": {}}}\n",
                quote(&outcome.render(base.schema())),
                s.requests,
                s.succeeded,
                s.failed,
                s.invariant_violations
            ),
        ))
    }
}

/// The parsed body of a `POST /v1/{verb}` request.
struct ComputeRequest {
    tenant: String,
    schema: Option<String>,
    schema_text: Option<String>,
    ty: Option<String>,
    attrs: Vec<String>,
    engine: Engine,
    method: Option<String>,
    requests: Option<String>,
    threads: Option<usize>,
    delay_ms: u64,
    /// Lint parses inline text leniently so structural problems become
    /// diagnostics instead of a 400.
    lenient: bool,
    /// Applicability-index precision for `analyze` (`syntactic` default).
    precision: AnalysisPrecision,
    /// Output shape for `analyze`: `"json"` (default) or `"sarif"`.
    format: Option<String>,
}

impl ComputeRequest {
    fn parse(verb: &str, body: &[u8]) -> Result<ComputeRequest, ApiError> {
        let text = std::str::from_utf8(body).map_err(|_| bad("body must be UTF-8 JSON"))?;
        let doc = Json::parse(text).map_err(|e| bad(format!("body is not valid JSON: {e}")))?;
        let obj = doc
            .as_obj()
            .ok_or_else(|| bad("body must be a JSON object"))?;

        // Reject unknown fields by name: a typo like "atrs" fails loudly
        // instead of deriving the unprojected view.
        let allowed: &[&str] = match verb {
            "batch" => &[
                "tenant",
                "schema",
                "schema_text",
                "requests",
                "threads",
                "engine",
                "delay_ms",
            ],
            "explain" => &[
                "tenant",
                "schema",
                "schema_text",
                "type",
                "attrs",
                "engine",
                "method",
                "delay_ms",
            ],
            "analyze" => &[
                "tenant",
                "schema",
                "schema_text",
                "type",
                "attrs",
                "engine",
                "precision",
                "format",
                "delay_ms",
            ],
            _ => &[
                "tenant",
                "schema",
                "schema_text",
                "type",
                "attrs",
                "engine",
                "delay_ms",
            ],
        };
        if let Some(unknown) = obj.keys().find(|k| !allowed.contains(&k.as_str())) {
            return Err(bad(format!(
                "unknown field `{unknown}` (expected one of: {})",
                allowed.join(", ")
            )));
        }

        let get_str = |key: &str| -> Result<Option<String>, ApiError> {
            match obj.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| bad(format!("`{key}` must be a string"))),
            }
        };

        let tenant = get_str("tenant")?.unwrap_or_else(|| "default".to_string());
        if !Registry::valid_name(&tenant) {
            return Err(bad("`tenant` must be 1-64 chars of [A-Za-z0-9._-]"));
        }
        let attrs = match obj.get("attrs") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| bad("`attrs` must be an array of attribute names"))?
                .iter()
                .map(|a| {
                    a.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("`attrs` entries must be strings"))
                })
                .collect::<Result<Vec<String>, ApiError>>()?,
        };
        let engine = match get_str("engine")? {
            None => Engine::default(),
            Some(name) => name.parse().map_err(|e: String| bad(e))?,
        };
        let threads = match obj.get("threads") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_usize()
                    .ok_or_else(|| bad("`threads` must be a non-negative integer"))?,
            ),
        };
        let delay_ms = match obj.get("delay_ms") {
            None | Some(Json::Null) => 0,
            Some(v) => v
                .as_usize()
                .ok_or_else(|| bad("`delay_ms` must be a non-negative integer"))?
                as u64,
        };

        let precision = match get_str("precision")? {
            None => AnalysisPrecision::default(),
            Some(p) => p
                .parse()
                .map_err(|e: String| bad(format!("`precision`: {e}")))?,
        };
        let format = get_str("format")?;
        if let Some(f) = &format {
            if f != "json" && f != "sarif" {
                return Err(bad(format!(
                    "`format` must be `json` or `sarif`, not `{f}`"
                )));
            }
        }

        Ok(ComputeRequest {
            tenant,
            schema: get_str("schema")?,
            schema_text: get_str("schema_text")?,
            ty: get_str("type")?,
            attrs,
            engine,
            method: get_str("method")?,
            requests: get_str("requests")?,
            threads,
            delay_ms,
            lenient: verb == "lint" || verb == "analyze",
            precision,
            format,
        })
    }
}

/// The admission-control tenant of a request body: its `tenant` field,
/// or `default`. Tolerant by design — a malformed body still needs a
/// queue slot so the worker can answer 400.
pub fn tenant_of(body: &[u8]) -> String {
    std::str::from_utf8(body)
        .ok()
        .and_then(|t| Json::parse(t).ok())
        .and_then(|d| {
            d.as_obj()
                .and_then(|o| o.get("tenant").and_then(|v| v.as_str().map(str::to_string)))
        })
        .unwrap_or_else(|| "default".to_string())
}

/// The endpoint bucket a request charges in metrics and `/v1/stats`.
pub(crate) fn endpoint_key(method: &str, path: &str) -> String {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => "healthz".to_string(),
        ["metrics"] => "metrics".to_string(),
        ["v1", "stats"] => "stats".to_string(),
        ["v1", "debug", ..] => "debug".to_string(),
        ["v1", "tenants", ..] => format!("schemas_{}", method.to_ascii_lowercase()),
        ["v1", verb] => (*verb).to_string(),
        _ => "other".to_string(),
    }
}

/// The canonical derivation record as JSON. `tdv project --json` and
/// `POST /v1/project` both emit exactly this string for the same schema
/// and view, so the CI smoke test can compare them byte for byte.
///
/// `schema` is the post-projection schema (the fork the derivation
/// refactored) — it resolves both the original and the surrogate names.
pub fn derivation_json(schema: &Schema, d: &Derivation) -> String {
    use std::fmt::Write as _;
    let ty = |t: TypeId| quote(schema.type_name(t));
    let pairs = |ps: &[(TypeId, TypeId)]| {
        let inner = ps
            .iter()
            .map(|&(a, b)| format!("[{}, {}]", ty(a), ty(b)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("[{inner}]")
    };
    let labels = |ms: &[td_model::MethodId]| {
        str_array(ms.iter().map(|&m| schema.method_label(m).to_string()))
    };
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"source\": {},", ty(d.source));
    let _ = writeln!(out, "  \"derived\": {},", ty(d.derived));
    let _ = writeln!(
        out,
        "  \"projection\": {},",
        str_array(
            d.projection
                .iter()
                .map(|&a| schema.attr_name(a).to_string())
        )
    );
    let _ = writeln!(out, "  \"applicable\": {},", labels(d.applicable()));
    let _ = writeln!(out, "  \"not_applicable\": {},", labels(d.not_applicable()));
    let _ = writeln!(
        out,
        "  \"factor_surrogates\": {},",
        pairs(&d.factor_surrogates)
    );
    let _ = writeln!(
        out,
        "  \"augment_surrogates\": {},",
        pairs(&d.augment_surrogates)
    );
    let moved = d
        .moved_attrs
        .iter()
        .map(|&(a, from, to)| format!("[{}, {}, {}]", quote(schema.attr_name(a)), ty(from), ty(to)))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "  \"moved_attrs\": [{moved}],");
    let _ = writeln!(
        out,
        "  \"z_types\": {},",
        str_array(d.z_types.iter().map(|&t| schema.type_name(t).to_string()))
    );
    let invariants = match &d.invariants {
        Some(r) if r.ok() => "true",
        Some(_) => "false",
        None => "null",
    };
    let _ = writeln!(out, "  \"invariants_ok\": {invariants}");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3, Example 1 of the paper — the schema the CI smoke test
    /// drives through every endpoint.
    const FIG: &str = r#"
        type Person { SSN: int  name: str  date_of_birth: int }
        type Employee : Person { pay_rate: float  hrs_worked: float }
        accessors SSN
        accessors date_of_birth
        accessors pay_rate
        accessors hrs_worked
        method age(Person) -> int { return 2026 - get_date_of_birth($0); }
        method pay(Employee) -> float { return get_pay_rate($0) * get_hrs_worked($0); }
    "#;

    fn project_body(schema_field: &str) -> String {
        format!(
            "{{{schema_field}, \"type\": \"Employee\", \"attrs\": [\"SSN\", \"pay_rate\", \"hrs_worked\"]}}"
        )
    }

    fn inline_schema_field() -> String {
        format!("\"schema_text\": {}", quote(FIG))
    }

    #[test]
    fn project_inline_and_registered_agree_byte_for_byte() {
        let api = Api::new();
        let cold = api.handle(
            "POST",
            "/v1/project",
            "",
            project_body(&inline_schema_field()).as_bytes(),
        );
        assert_eq!(cold.status, 200, "{}", cold.body);
        assert!(cold.body.contains("\"derived\""));

        let put = api.handle("PUT", "/v1/tenants/acme/schemas/fig3", "", FIG.as_bytes());
        assert_eq!(put.status, 201, "{}", put.body);
        let warm_body = project_body("\"tenant\": \"acme\", \"schema\": \"fig3\"");
        let warm = api.handle("POST", "/v1/project", "", warm_body.as_bytes());
        assert_eq!(warm.status, 200, "{}", warm.body);
        assert_eq!(cold.body, warm.body);
        // Second warm request: same bytes again (the shared snapshot's
        // caches must not change answers).
        let again = api.handle("POST", "/v1/project", "", warm_body.as_bytes());
        assert_eq!(again.body, warm.body);
    }

    #[test]
    fn applicable_partitions_methods() {
        let api = Api::new();
        let body = format!(
            "{{{}, \"type\": \"Employee\", \"attrs\": [\"SSN\", \"pay_rate\", \"hrs_worked\"]}}",
            inline_schema_field()
        );
        let r = api.handle("POST", "/v1/applicable", "", body.as_bytes());
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = Json::parse(&r.body).unwrap();
        let applicable: Vec<&str> = doc.as_obj().unwrap()["applicable"]
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert!(applicable.iter().any(|l| l.contains("pay")));
        let not: Vec<&str> = doc.as_obj().unwrap()["not_applicable"]
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert!(not.iter().any(|l| l.contains("age")));
    }

    #[test]
    fn explain_lint_and_batch_answer() {
        let api = Api::new();
        api.handle("PUT", "/v1/tenants/t/schemas/s", "", FIG.as_bytes());
        let explain = api.handle(
            "POST",
            "/v1/explain",
            "",
            concat!(
                "{\"tenant\": \"t\", \"schema\": \"s\", \"type\": \"Employee\", ",
                "\"attrs\": [\"SSN\"], \"method\": \"age\"}"
            )
            .as_bytes(),
        );
        assert_eq!(explain.status, 200, "{}", explain.body);
        assert!(explain.body.contains("\"applicable\": false"));

        let lint = api.handle(
            "POST",
            "/v1/lint",
            "",
            "{\"tenant\": \"t\", \"schema\": \"s\"}".as_bytes(),
        );
        assert_eq!(lint.status, 200, "{}", lint.body);

        let batch = api.handle(
            "POST",
            "/v1/batch",
            "",
            format!(
                "{{\"tenant\": \"t\", \"schema\": \"s\", \"threads\": 2, \"requests\": {}}}",
                quote("Employee: SSN, pay_rate, hrs_worked\nPerson: SSN\n")
            )
            .as_bytes(),
        );
        assert_eq!(batch.status, 200, "{}", batch.body);
        let doc = Json::parse(&batch.body).unwrap();
        assert_eq!(doc.as_obj().unwrap()["ok"].as_usize(), Some(2));
    }

    #[test]
    fn analyze_answers_with_stats_and_sarif() {
        let api = Api::new();
        api.handle("PUT", "/v1/tenants/t/schemas/s", "", FIG.as_bytes());
        let body = "{\"tenant\": \"t\", \"schema\": \"s\"}";
        let cold = api.handle("POST", "/v1/analyze", "", body.as_bytes());
        assert_eq!(cold.status, 200, "{}", cold.body);
        let doc = Json::parse(&cold.body).unwrap();
        assert_eq!(
            doc.as_obj().unwrap()["precision"].as_str(),
            Some("syntactic")
        );
        assert!(doc.as_obj().unwrap()["report"].as_obj().is_some());

        // Second request over the same registered schema answers from the
        // warm shared snapshot's analysis cache.
        let warm = api.handle("POST", "/v1/analyze", "", body.as_bytes());
        let doc = Json::parse(&warm.body).unwrap();
        assert_eq!(
            doc.as_obj().unwrap()["schema_cached"],
            Json::Bool(true),
            "{}",
            warm.body
        );

        // A projection-scoped request at semantic precision, as SARIF.
        let sarif = api.handle(
            "POST",
            "/v1/analyze",
            "",
            concat!(
                "{\"tenant\": \"t\", \"schema\": \"s\", \"type\": \"Employee\", ",
                "\"attrs\": [\"SSN\"], \"precision\": \"semantic\", \"format\": \"sarif\"}"
            )
            .as_bytes(),
        );
        assert_eq!(sarif.status, 200, "{}", sarif.body);
        assert!(sarif.body.contains("\"td-analyze\""), "{}", sarif.body);

        // Bad knobs are 400s, not silent defaults.
        let bad = api.handle(
            "POST",
            "/v1/analyze",
            "",
            "{\"tenant\": \"t\", \"schema\": \"s\", \"precision\": \"sharp\"}".as_bytes(),
        );
        assert_eq!(bad.status, 400, "{}", bad.body);
        let bad = api.handle(
            "POST",
            "/v1/analyze",
            "",
            "{\"tenant\": \"t\", \"schema\": \"s\", \"format\": \"xml\"}".as_bytes(),
        );
        assert_eq!(bad.status, 400, "{}", bad.body);
    }

    #[test]
    fn batch_reports_located_request_errors() {
        let api = Api::new();
        let r = api.handle(
            "POST",
            "/v1/batch",
            "",
            format!(
                "{{{}, \"requests\": {}}}",
                inline_schema_field(),
                quote("Employee: SSN\nno-colon-here\n")
            )
            .as_bytes(),
        );
        assert_eq!(r.status, 400, "{}", r.body);
        assert!(r.body.contains("line 2"), "{}", r.body);
    }

    #[test]
    fn error_paths_have_stable_statuses() {
        let api = Api::new();
        // Unknown endpoint and wrong method.
        assert_eq!(api.handle("GET", "/v1/nope", "", b"").status, 404);
        assert_eq!(api.handle("POST", "/metrics", "", b"").status, 405);
        // Bad JSON, unknown field, missing schema, unknown names.
        assert_eq!(api.handle("POST", "/v1/project", "", b"{oops").status, 400);
        let r = api.handle(
            "POST",
            "/v1/project",
            "",
            format!(
                "{{{}, \"type\": \"Employee\", \"atrs\": []}}",
                inline_schema_field()
            )
            .as_bytes(),
        );
        assert_eq!(r.status, 400);
        assert!(r.body.contains("atrs"), "{}", r.body);
        assert_eq!(
            api.handle("POST", "/v1/project", "", b"{\"type\": \"T\"}")
                .status,
            400
        );
        let r = api.handle(
            "POST",
            "/v1/project",
            "",
            format!(
                "{{{}, \"type\": \"Nope\", \"attrs\": []}}",
                inline_schema_field()
            )
            .as_bytes(),
        );
        assert_eq!(r.status, 400);
        // Unregistered schema name.
        assert_eq!(
            api.handle(
                "POST",
                "/v1/project",
                "",
                b"{\"schema\": \"ghost\", \"type\": \"T\", \"attrs\": []}"
            )
            .status,
            404
        );
        assert_eq!(
            api.handle("GET", "/v1/tenants/t/schemas/ghost", "", b"")
                .status,
            404
        );
        assert_eq!(
            api.handle("PUT", "/v1/tenants/bad name/schemas/s", "", FIG.as_bytes())
                .status,
            400
        );
    }

    #[test]
    fn stats_and_metrics_reflect_traffic() {
        let api = Api::new();
        api.handle("GET", "/healthz", "", b"");
        api.handle("GET", "/healthz", "", b"");
        api.handle("PUT", "/v1/tenants/t/schemas/s", "", FIG.as_bytes());
        let stats = api.handle("GET", "/v1/stats", "", b"");
        assert_eq!(stats.status, 200);
        let doc = Json::parse(&stats.body).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(
            obj["requests"].as_obj().unwrap()["healthz"].as_usize(),
            Some(2)
        );
        let schemas = obj["schemas"].as_arr().unwrap();
        assert_eq!(schemas[0].as_obj().unwrap()["name"].as_str(), Some("s"));
        // The Prometheus exposition answers regardless of format.
        let prom = api.handle("GET", "/metrics", "", b"");
        assert_eq!(prom.status, 200);
        let js = api.handle("GET", "/metrics", "format=json", b"");
        assert_eq!(js.status, 200);
        assert!(Json::parse(&js.body).is_ok(), "{}", js.body);
    }

    #[test]
    fn tenant_of_reads_the_field_tolerantly() {
        assert_eq!(tenant_of(b"{\"tenant\": \"acme\"}"), "acme");
        assert_eq!(tenant_of(b"{}"), "default");
        assert_eq!(tenant_of(b"not json"), "default");
    }

    #[test]
    fn traced_requests_echo_traceparent_and_land_in_the_flight_recorder() {
        let api = Api::new();
        let trace = TraceId::parse_hex("4bf92f3577b34da6a3ce929d0e0e4736").unwrap();
        let ctx = RequestCtx {
            trace: Some(trace),
            tenant: Some("acme".to_string()),
            queue_us: 7,
        };
        let r = api.handle_with("GET", "/healthz", "", b"", &ctx);
        assert_eq!(r.status, 200);
        let echoed = r
            .extra_headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("traceparent"))
            .map(|(_, v)| v.clone())
            .expect("traced response must echo a Traceparent header");
        assert_eq!(echoed, trace.traceparent());

        // A later traced request; the recorder serves most recent first.
        let trace2 = TraceId::generate();
        let ctx2 = RequestCtx {
            trace: Some(trace2),
            tenant: None,
            queue_us: 0,
        };
        api.handle_with("GET", "/v1/stats", "", b"", &ctx2);

        let dbg = api.handle("GET", "/v1/debug/requests", "", b"");
        assert_eq!(dbg.status, 200, "{}", dbg.body);
        let doc = Json::parse(&dbg.body).unwrap();
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["capacity"].as_usize(), Some(FLIGHT_RECORDER_CAPACITY));
        let rows = obj["requests"].as_arr().unwrap();
        assert!(rows.len() >= 2);
        let newest = rows[0].as_obj().unwrap();
        assert_eq!(
            newest["trace"].as_str(),
            Some(trace2.to_string()).as_deref()
        );
        let older = rows[1].as_obj().unwrap();
        assert_eq!(
            older["trace"].as_str(),
            Some("4bf92f3577b34da6a3ce929d0e0e4736")
        );
        assert_eq!(older["tenant"].as_str(), Some("acme"));
        assert_eq!(older["endpoint"].as_str(), Some("healthz"));
        assert_eq!(older["queue_us"].as_usize(), Some(7));
        let total = older["total_us"].as_usize().unwrap();
        let exec = older["exec_us"].as_usize().unwrap();
        assert_eq!(total, exec + 7);

        // Untraced dispatches never enter the recorder.
        let before = rows.len();
        api.handle("GET", "/healthz", "", b"");
        let dbg = api.handle("GET", "/v1/debug/requests", "", b"");
        let doc = Json::parse(&dbg.body).unwrap();
        let after = doc.as_obj().unwrap()["requests"].as_arr().unwrap().len();
        // The debug GET above was itself untraced too.
        assert_eq!(after, before);
    }

    #[test]
    fn flight_recorder_evicts_oldest_beyond_capacity() {
        let api = Api::new();
        let first = TraceId::generate();
        let ctx = RequestCtx {
            trace: Some(first),
            tenant: None,
            queue_us: 0,
        };
        api.handle_with("GET", "/healthz", "", b"", &ctx);
        for _ in 0..FLIGHT_RECORDER_CAPACITY {
            let ctx = RequestCtx {
                trace: Some(TraceId::generate()),
                tenant: None,
                queue_us: 0,
            };
            api.handle_with("GET", "/healthz", "", b"", &ctx);
        }
        let recorder = api.recorder.lock().unwrap();
        assert_eq!(recorder.len(), FLIGHT_RECORDER_CAPACITY);
        assert!(recorder.iter().all(|r| r.trace != first.to_string()));
    }

    #[test]
    fn stats_window_section_tracks_endpoints_tenants_and_rejections() {
        let api = Api::new();
        api.set_slo_objective_us(250_000);
        let ctx = RequestCtx {
            trace: None,
            tenant: Some("acme".to_string()),
            queue_us: 3,
        };
        api.handle_with("GET", "/healthz", "", b"", &ctx);
        api.record_rejection("project", "acme", 429);

        let stats = api.handle("GET", "/v1/stats", "", b"");
        assert_eq!(stats.status, 200, "{}", stats.body);
        let doc = Json::parse(&stats.body).unwrap();
        let window = doc.as_obj().unwrap()["window"].as_obj().unwrap();
        assert_eq!(
            window["seconds"].as_usize(),
            Some(td_telemetry::WINDOW_SECONDS as usize)
        );
        assert_eq!(window["slo_objective_us"].as_usize(), Some(250_000));
        // The healthz dispatch plus the rejection (other tests in this
        // process may add more — the metrics registry is global).
        assert!(window["requests_60s"].as_usize().unwrap() >= 2);
        assert!(window["errors_60s"].as_usize().unwrap() >= 1);
        assert!(window["throttled_429_60s"].as_usize().unwrap() >= 1);
        let endpoints = window["endpoints"].as_obj().unwrap();
        let healthz = endpoints["healthz"].as_obj().unwrap();
        assert!(healthz["window_count"].as_usize().unwrap() >= 1);
        assert!(healthz.contains_key("p50"));
        assert!(healthz.contains_key("p95"));
        assert!(healthz.contains_key("p99"));
        let tenants = window["tenants"].as_obj().unwrap();
        assert!(
            tenants["acme"].as_obj().unwrap()["window_count"]
                .as_usize()
                .unwrap()
                >= 1
        );

        // The windowed tails also surface on the Prometheus exposition.
        let prom = api.handle("GET", "/metrics", "", b"");
        assert!(
            prom.body.contains("server_window_us_healthz_p95"),
            "{}",
            prom.body
        );
    }
}
