//! # td-server — the multi-tenant derivation service
//!
//! Everything the workspace can do in-process — projection ([`td_core`]),
//! batch derivation ([`td_driver`]), TDL lint, explanations, telemetry —
//! behind a small HTTP/1.1 JSON API, so a schema-design tool or CI job
//! can ask "what survives this projection?" without linking Rust.
//!
//! ## Why hand-rolled
//!
//! The build environment resolves no crates registry (the repo's
//! vendored-stub policy), so hyper/axum/tokio are unavailable *by
//! constraint* — but the constraint matches the need. The API is
//! strictly request/response over small bodies: a blocking
//! thread-per-request design with `Connection: close` semantics is a few
//! hundred lines ([`http`]), fully testable over loopback, and its
//! failure modes (slowloris, oversized bodies) are handled with read
//! timeouts and explicit bounds rather than a framework's defaults.
//!
//! ## Architecture
//!
//! ```text
//!             ┌───────────┐   mpsc    ┌───────────┐  FairQueue  ┌─────────────┐
//!  accept ───►│ acceptor  │──────────►│ io pool   │────────────►│ exec workers│
//!  (nonblock) │ polls the │  streams  │ parse     │  compute    │ Api::handle │
//!             │ shutdown  │           │ HTTP/JSON │  jobs by    │ + respond   │
//!             │ flag      │           │ answer    │  tenant     │             │
//!             └───────────┘           │ GET/PUT   │             └─────────────┘
//!                                     └───────────┘
//! ```
//!
//! * The **acceptor** owns the nonblocking listener and polls the
//!   shutdown flag ([`signal`]) between accepts; a SIGTERM stops new
//!   connections immediately.
//! * The **io pool** reads and parses requests. Cheap endpoints (every
//!   GET, schema registration) are answered inline; derivation work is
//!   submitted to the tenant-fair admission queue ([`admission`]), and a
//!   full tenant queue answers `429` with `Retry-After` on the spot.
//! * The **exec workers** drain the queue in round-robin tenant order
//!   and run [`Api::handle`] — pure compute, no socket knowledge, which
//!   is what the bench and the unit tests drive directly.
//!
//! Graceful shutdown is a drain in that same order: stop accepting, let
//! the io pool finish parsing what arrived, close the queue, let the
//! exec workers finish what was admitted, join everything, exit 0. No
//! admitted request is dropped.
//!
//! Per-tenant schema state lives in the [`registry`]: registered schemas
//! keep a warm copy-on-write [`td_model::SchemaSnapshot`] whose CPL,
//! dispatch and applicability-index caches persist across requests —
//! the measured warm-vs-cold gap is gated by the
//! `ratio_serve_warm_vs_cold` repro metric.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod admission;
pub mod api;
pub mod http;
pub mod json;
pub mod registry;
pub mod signal;
pub mod watch;

pub use admission::{FairQueue, Rejected, SubmitError};
pub use api::{derivation_json, tenant_of, Api};
pub use http::{http_call, Request, Response};
pub use registry::{PutOutcome, Registry, SchemaEntry};
pub use signal::{install_shutdown_handler, request_shutdown, shutdown_requested};
pub use watch::{WatchHub, WatchView};

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks a free port).
    pub addr: String,
    /// Exec workers running derivations (default: the machine's cores).
    pub exec_threads: usize,
    /// IO workers parsing HTTP (default 2; they mostly wait on sockets).
    pub io_threads: usize,
    /// Pending compute jobs admitted per tenant before 429 (default 4).
    pub queue_slots: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// When set, tenant schemas are persisted as binary snapshots in this
    /// directory (one `.tds` file per tenant schema, written on PUT) and
    /// restored from it at bind time — the registry survives restarts.
    pub snapshot_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            exec_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            io_threads: 2,
            queue_slots: 4,
            max_body: http::DEFAULT_MAX_BODY,
            snapshot_dir: None,
        }
    }
}

/// One compute job: the parsed request plus the socket to answer on.
struct Job {
    stream: TcpStream,
    request: Request,
}

/// A bound derivation server. [`run`](Server::run) blocks until the
/// shutdown flag trips and the drain completes.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    api: Api,
}

impl Server {
    /// Binds the listener (without accepting yet). When the config names
    /// a snapshot directory, persisted tenant schemas are restored into
    /// the registry before the first request is accepted.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let api = match &config.snapshot_dir {
            Some(dir) => {
                let (registry, loaded) = Registry::with_snapshot_dir(dir)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if loaded > 0 {
                    eprintln!("tdv serve: restored {loaded} tenant schema(s) from {dir}");
                }
                Api::with_registry(registry)
            }
            None => Api::new(),
        };
        Ok(Server {
            listener,
            config,
            api,
        })
    }

    /// The bound address — the actual port when the config said `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The API the listener dispatches into (exposed for warm-up and
    /// direct-drive tests).
    pub fn api(&self) -> &Api {
        &self.api
    }

    /// Serves until `shutdown` becomes true, then drains: in-flight and
    /// admitted requests finish, new connections are refused, workers
    /// join. Returns once the drain is complete.
    pub fn run(&self, shutdown: &AtomicBool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue: FairQueue<Job> = FairQueue::new(self.config.queue_slots);
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        std::thread::scope(|scope| {
            let io_pool: Vec<_> = (0..self.config.io_threads.max(1))
                .map(|_| {
                    let conn_rx = Arc::clone(&conn_rx);
                    let queue = &queue;
                    scope.spawn(move || loop {
                        // Holding the lock only for the recv keeps the
                        // pool draining in parallel once streams arrive.
                        let next = conn_rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                        match next {
                            Ok(stream) => self.serve_connection(stream, queue),
                            // Acceptor hung up: drained, exit.
                            Err(_) => break,
                        }
                    })
                })
                .collect();

            let exec_pool: Vec<_> = (0..self.config.exec_threads.max(1))
                .map(|_| {
                    let queue = &queue;
                    scope.spawn(move || {
                        while let Some(job) = queue.next() {
                            td_telemetry::metrics::gauge("server/queue_depth")
                                .set(queue.depth() as i64);
                            let r = &job.request;
                            let response = self.api.handle(&r.method, &r.path, &r.query, &r.body);
                            let mut stream = job.stream;
                            let _ = response.write_to(&mut stream);
                        }
                    })
                })
                .collect();

            // The accept loop runs on the calling thread.
            while !shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    // Transient accept failures (e.g. a reset in the
                    // backlog) must not kill the service.
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }

            // Drain, strictly in pipeline order: no more connections →
            // io pool finishes parsing and submitting → queue closes →
            // exec workers finish admitted jobs.
            drop(conn_tx);
            for h in io_pool {
                let _ = h.join();
            }
            queue.close();
            for h in exec_pool {
                let _ = h.join();
            }
        });
        Ok(())
    }

    /// IO-pool duty: parse one connection, answer it inline or admit it
    /// to the compute queue.
    fn serve_connection(&self, mut stream: TcpStream, queue: &FairQueue<Job>) {
        let request = match http::read_request(&mut stream, self.config.max_body) {
            Ok(r) => r,
            Err(http::HttpError::BodyTooLarge(n)) => {
                td_telemetry::metrics::counter("server/errors/413").add(1);
                http::reject(
                    &mut stream,
                    &Response::error(413, &format!("request body of {n} bytes is too large")),
                );
                return;
            }
            Err(http::HttpError::Malformed(m)) => {
                td_telemetry::metrics::counter("server/errors/400").add(1);
                http::reject(&mut stream, &Response::error(400, &m));
                return;
            }
            // Timeout or reset mid-read: nobody left to answer.
            Err(http::HttpError::Io(_)) => return,
        };
        // A watch subscription is a long-lived stream: it must neither
        // block an io worker nor occupy a compute slot, so it gets a
        // dedicated thread that dies with its socket.
        if request.method == "GET" && request.path == "/v1/watch" {
            self.serve_watch(stream, &request);
            return;
        }
        // Derivation endpoints go through admission control; everything
        // else (health, metrics, stats, registration) is cheap enough to
        // answer from the io pool directly.
        let is_compute = request.method == "POST" && request.path.starts_with("/v1/");
        if !is_compute {
            let response = self.api.handle(
                &request.method,
                &request.path,
                &request.query,
                &request.body,
            );
            let _ = response.write_to(&mut stream);
            return;
        }
        let tenant = tenant_of(&request.body);
        match queue.submit(&tenant, Job { stream, request }) {
            Ok(()) => {
                td_telemetry::metrics::gauge("server/queue_depth").set(queue.depth() as i64);
            }
            Err(rejected) => {
                let (status, retry_after) = match rejected.error {
                    SubmitError::Busy { .. } => (429, true),
                    SubmitError::Closed => (503, false),
                };
                td_telemetry::metrics::counter(&format!("server/errors/{status}")).add(1);
                let mut response = Response::error(status, &rejected.error.to_string());
                if retry_after {
                    response
                        .extra_headers
                        .push(("Retry-After".to_string(), "1".to_string()));
                }
                let mut stream = rejected.job.stream;
                let _ = response.write_to(&mut stream);
            }
        }
    }

    /// Answers `GET /v1/watch?tenant=..&schema=..[&type=..&attrs=a,b]`:
    /// subscribes the connection to the change feed and hands the socket
    /// to a dedicated streaming thread. The thread writes one SSE frame
    /// per event (`hello` first, then `change` per matching PUT) and a
    /// comment ping during idle stretches so dead peers are detected;
    /// any write failure unsubscribes and ends the thread.
    fn serve_watch(&self, mut stream: TcpStream, request: &Request) {
        let mut tenant = None;
        let mut schema = None;
        let mut type_name = None;
        let mut attrs: Vec<String> = Vec::new();
        for pair in request.query.split('&') {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match key {
                "tenant" => tenant = Some(value.to_string()),
                "schema" => schema = Some(value.to_string()),
                "type" => type_name = Some(value.to_string()),
                "attrs" => {
                    attrs.extend(value.split(',').filter(|a| !a.is_empty()).map(String::from))
                }
                _ => {}
            }
        }
        let (Some(tenant), Some(schema)) = (tenant, schema) else {
            td_telemetry::metrics::counter("server/errors/400").add(1);
            http::reject(
                &mut stream,
                &Response::error(400, "watch needs ?tenant=..&schema=.. query parameters"),
            );
            return;
        };
        let view = type_name.map(|type_name| WatchView { type_name, attrs });
        let hub = Arc::clone(&self.api.watch);
        let (id, events) = hub.subscribe(&tenant, &schema, view);
        let header = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                      Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
        std::thread::spawn(move || {
            use std::io::Write as _;
            // read_request set a read timeout; writes are unaffected,
            // but clear it so the socket carries no stale deadlines.
            let _ = stream.set_read_timeout(None);
            if stream
                .write_all(header.as_bytes())
                .and_then(|()| stream.flush())
                .is_err()
            {
                hub.unsubscribe(id);
                return;
            }
            loop {
                let frame = match events.recv_timeout(Duration::from_secs(10)) {
                    Ok(frame) => frame,
                    // Idle: an SSE comment doubles as a liveness probe.
                    Err(mpsc::RecvTimeoutError::Timeout) => ": ping\n\n".to_string(),
                    // Hub dropped (server shutting down): end the stream.
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                if stream
                    .write_all(frame.as_bytes())
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    break;
                }
            }
            hub.unsubscribe(id);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.exec_threads >= 1);
        assert!(c.io_threads >= 1);
        assert!(c.queue_slots >= 1);
        assert_eq!(c.max_body, http::DEFAULT_MAX_BODY);
    }
}
