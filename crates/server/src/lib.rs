//! # td-server — the multi-tenant derivation service
//!
//! Everything the workspace can do in-process — projection ([`td_core`]),
//! batch derivation ([`td_driver`]), TDL lint, explanations, telemetry —
//! behind a small HTTP/1.1 JSON API, so a schema-design tool or CI job
//! can ask "what survives this projection?" without linking Rust.
//!
//! ## Why hand-rolled
//!
//! The build environment resolves no crates registry (the repo's
//! vendored-stub policy), so hyper/axum/tokio are unavailable *by
//! constraint* — but the constraint matches the need. The API is
//! strictly request/response over small bodies: a blocking
//! thread-per-request design with `Connection: close` semantics is a few
//! hundred lines ([`http`]), fully testable over loopback, and its
//! failure modes (slowloris, oversized bodies) are handled with read
//! timeouts and explicit bounds rather than a framework's defaults.
//!
//! ## Architecture
//!
//! ```text
//!             ┌───────────┐   mpsc    ┌───────────┐  FairQueue  ┌─────────────┐
//!  accept ───►│ acceptor  │──────────►│ io pool   │────────────►│ exec workers│
//!  (nonblock) │ polls the │  streams  │ parse     │  compute    │ Api::handle │
//!             │ shutdown  │           │ HTTP/JSON │  jobs by    │ + respond   │
//!             │ flag      │           │ answer    │  tenant     │             │
//!             └───────────┘           │ GET/PUT   │             └─────────────┘
//!                                     └───────────┘
//! ```
//!
//! * The **acceptor** owns the nonblocking listener and polls the
//!   shutdown flag ([`signal`]) between accepts; a SIGTERM stops new
//!   connections immediately.
//! * The **io pool** reads and parses requests. Cheap endpoints (every
//!   GET, schema registration) are answered inline; derivation work is
//!   submitted to the tenant-fair admission queue ([`admission`]), and a
//!   full tenant queue answers `429` with `Retry-After` on the spot.
//! * The **exec workers** drain the queue in round-robin tenant order
//!   and run [`Api::handle`] — pure compute, no socket knowledge, which
//!   is what the bench and the unit tests drive directly.
//!
//! Graceful shutdown is a drain in that same order: stop accepting, let
//! the io pool finish parsing what arrived, close the queue, let the
//! exec workers finish what was admitted, join everything, exit 0. No
//! admitted request is dropped.
//!
//! Per-tenant schema state lives in the [`registry`]: registered schemas
//! keep a warm copy-on-write [`td_model::SchemaSnapshot`] whose CPL,
//! dispatch and applicability-index caches persist across requests —
//! the measured warm-vs-cold gap is gated by the
//! `ratio_serve_warm_vs_cold` repro metric.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod admission;
pub mod api;
pub mod http;
pub mod json;
pub mod registry;
pub mod signal;
pub mod watch;

pub use admission::{FairQueue, Rejected, SubmitError};
pub use api::{derivation_json, tenant_of, Api, RequestCtx};
pub use http::{http_call, http_request, HttpReply, Request, Response};
pub use registry::{PutOutcome, Registry, SchemaEntry};
pub use signal::{install_shutdown_handler, request_shutdown, shutdown_requested};
pub use watch::{WatchHub, WatchView};

use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use td_telemetry::TraceId;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks a free port).
    pub addr: String,
    /// Exec workers running derivations (default: the machine's cores).
    pub exec_threads: usize,
    /// IO workers parsing HTTP (default 2; they mostly wait on sockets).
    pub io_threads: usize,
    /// Pending compute jobs admitted per tenant before 429 (default 4).
    pub queue_slots: usize,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
    /// When set, tenant schemas are persisted as binary snapshots in this
    /// directory (one `.tds` file per tenant schema, written on PUT) and
    /// restored from it at bind time — the registry survives restarts.
    pub snapshot_dir: Option<String>,
    /// When set, every completed request appends one JSON line to this
    /// file (trace id, tenant, endpoint, status, timings), flushed per
    /// line so a tail survives a crash and the SIGTERM drain loses
    /// nothing.
    pub access_log: Option<String>,
    /// When set, any request slower than the threshold dumps its full
    /// span trace (queue wait included) as a Chrome trace file
    /// `slow-{trace}.json` in this directory. Implies telemetry on.
    pub slow_trace_dir: Option<String>,
    /// Slow-capture threshold in µs; defaults to the SLO objective.
    pub slow_threshold_us: Option<u64>,
    /// Latency objective (µs) for the windowed SLO burn-rate gauge:
    /// 99% of requests must finish end-to-end within it.
    pub slo_objective_us: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            exec_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            io_threads: 2,
            queue_slots: 4,
            max_body: http::DEFAULT_MAX_BODY,
            snapshot_dir: None,
            access_log: None,
            slow_trace_dir: None,
            slow_threshold_us: None,
            slo_objective_us: api::DEFAULT_SLO_OBJECTIVE_US,
        }
    }
}

/// One compute job: the parsed request plus the socket to answer on and
/// the observability context assigned at admission.
struct Job {
    stream: TcpStream,
    request: Request,
    /// Trace id adopted from the client's `traceparent` or generated.
    trace: TraceId,
    /// Admission-control tenant the job was queued under.
    tenant: String,
    /// [`td_telemetry::now_ns`] at submit — the queue-wait span's start.
    submitted_ns: u64,
}

/// A bound derivation server. [`run`](Server::run) blocks until the
/// shutdown flag trips and the drain completes.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    api: Api,
    /// JSONL access log, when configured. One line per completed or
    /// rejected request, written *before* the response bytes so a client
    /// that saw an answer always finds its line.
    access_log: Mutex<Option<BufWriter<File>>>,
    /// Resolved slow-capture threshold (µs).
    slow_threshold_us: u64,
}

impl Server {
    /// Binds the listener (without accepting yet). When the config names
    /// a snapshot directory, persisted tenant schemas are restored into
    /// the registry before the first request is accepted.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let api = match &config.snapshot_dir {
            Some(dir) => {
                let (registry, loaded) = Registry::with_snapshot_dir(dir)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if loaded > 0 {
                    eprintln!("tdv serve: restored {loaded} tenant schema(s) from {dir}");
                }
                Api::with_registry(registry)
            }
            None => Api::new(),
        };
        api.set_slo_objective_us(config.slo_objective_us);
        let access_log = match &config.access_log {
            Some(path) => Some(BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        if let Some(dir) = &config.slow_trace_dir {
            std::fs::create_dir_all(dir)?;
            // Slow capture needs spans, and spans need the switch on.
            td_telemetry::set_enabled(true);
        }
        let slow_threshold_us = config.slow_threshold_us.unwrap_or(config.slo_objective_us);
        Ok(Server {
            listener,
            config,
            api,
            access_log: Mutex::new(access_log),
            slow_threshold_us,
        })
    }

    /// The bound address — the actual port when the config said `:0`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The API the listener dispatches into (exposed for warm-up and
    /// direct-drive tests).
    pub fn api(&self) -> &Api {
        &self.api
    }

    /// Serves until `shutdown` becomes true, then drains: in-flight and
    /// admitted requests finish, new connections are refused, workers
    /// join. Returns once the drain is complete.
    pub fn run(&self, shutdown: &AtomicBool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let queue: FairQueue<Job> = FairQueue::new(self.config.queue_slots);
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        std::thread::scope(|scope| {
            let io_pool: Vec<_> = (0..self.config.io_threads.max(1))
                .map(|_| {
                    let conn_rx = Arc::clone(&conn_rx);
                    let queue = &queue;
                    scope.spawn(move || loop {
                        // Holding the lock only for the recv keeps the
                        // pool draining in parallel once streams arrive.
                        let next = conn_rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                        match next {
                            Ok(stream) => self.serve_connection(stream, queue),
                            // Acceptor hung up: drained, exit.
                            Err(_) => break,
                        }
                    })
                })
                .collect();

            let exec_pool: Vec<_> = (0..self.config.exec_threads.max(1))
                .map(|_| {
                    let queue = &queue;
                    scope.spawn(move || {
                        while let Some(job) = queue.next() {
                            Self::publish_queue_depths(queue);
                            let Job {
                                stream,
                                request,
                                trace,
                                tenant,
                                submitted_ns,
                            } = job;
                            let wait_ns = td_telemetry::now_ns().saturating_sub(submitted_ns);
                            let ctx = RequestCtx {
                                trace: Some(trace),
                                tenant: Some(tenant),
                                queue_us: wait_ns / 1_000,
                            };
                            self.dispatch(stream, &request, ctx, Some(submitted_ns));
                        }
                    })
                })
                .collect();

            // The accept loop runs on the calling thread.
            while !shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    // Transient accept failures (e.g. a reset in the
                    // backlog) must not kill the service.
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }

            // Drain, strictly in pipeline order: no more connections →
            // io pool finishes parsing and submitting → queue closes →
            // exec workers finish admitted jobs.
            drop(conn_tx);
            for h in io_pool {
                let _ = h.join();
            }
            queue.close();
            for h in exec_pool {
                let _ = h.join();
            }
        });
        // Every line was flushed as it was written; this catches the
        // buffer tail if a write raced the drain.
        if let Some(w) = self
            .access_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = w.flush();
        }
        Ok(())
    }

    /// Publishes the total and per-tenant queue-depth gauges. Called at
    /// submit and dequeue so `tdv top` sees live backlog per tenant;
    /// drained tenants report zero rather than vanishing.
    fn publish_queue_depths(queue: &FairQueue<Job>) {
        td_telemetry::metrics::gauge("server/queue_depth").set(queue.depth() as i64);
        for (tenant, depth) in queue.tenant_depths() {
            td_telemetry::metrics::gauge(&format!("server/queue_depth/tenant/{tenant}"))
                .set(depth as i64);
        }
    }

    /// Runs one request through [`Api::handle_with`] and finishes it:
    /// queue-wait span, access-log line (written and flushed *before*
    /// the response bytes), slow-trace capture, response write.
    fn dispatch(
        &self,
        mut stream: TcpStream,
        request: &Request,
        ctx: RequestCtx,
        submitted_ns: Option<u64>,
    ) {
        let started = Instant::now();
        if let (Some(trace), Some(submitted_ns)) = (ctx.trace, submitted_ns) {
            // The wait span carries the trace stamp like every other
            // span of the request, so the Chrome trace shows the queue
            // time as its own block.
            let _scope = td_telemetry::trace_scope(trace);
            let wait_ns = td_telemetry::now_ns().saturating_sub(submitted_ns);
            td_telemetry::emit_span(
                "server",
                "queue_wait",
                submitted_ns,
                wait_ns,
                vec![(
                    "tenant",
                    td_telemetry::ArgValue::Str(
                        ctx.tenant.clone().unwrap_or_else(|| "default".to_string()),
                    ),
                )],
            );
        }
        let response = self.api.handle_with(
            &request.method,
            &request.path,
            &request.query,
            &request.body,
            &ctx,
        );
        let exec_us = started.elapsed().as_micros() as u64;
        let total_us = ctx.queue_us + exec_us;
        self.log_access(&ctx, request, response.status, exec_us, total_us);
        self.capture_slow(&ctx, total_us);
        let _ = response.write_to(&mut stream);
    }

    /// Appends one JSONL access-log line, flushed immediately.
    fn log_access(
        &self,
        ctx: &RequestCtx,
        request: &Request,
        status: u16,
        exec_us: u64,
        total_us: u64,
    ) {
        let mut guard = self.access_log.lock().unwrap_or_else(|e| e.into_inner());
        let Some(w) = guard.as_mut() else {
            return;
        };
        use crate::json::quote;
        let line = format!(
            "{{\"trace\": {}, \"tenant\": {}, \"endpoint\": {}, \"method\": {}, \
             \"path\": {}, \"status\": {status}, \"queue_us\": {}, \"exec_us\": {exec_us}, \
             \"total_us\": {total_us}}}\n",
            quote(&ctx.trace.map(|t| t.to_string()).unwrap_or_default()),
            quote(ctx.tenant.as_deref().unwrap_or("default")),
            quote(&api::endpoint_key(&request.method, &request.path)),
            quote(&request.method),
            quote(&request.path),
            ctx.queue_us,
        );
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }

    /// Dumps the request's full span trace as a Chrome trace file when
    /// it ran slower than the configured threshold.
    fn capture_slow(&self, ctx: &RequestCtx, total_us: u64) {
        let Some(dir) = &self.config.slow_trace_dir else {
            return;
        };
        if total_us < self.slow_threshold_us {
            return;
        }
        let Some(trace) = ctx.trace else {
            return;
        };
        let events = td_telemetry::events_for_trace(&trace.to_string());
        if events.is_empty() {
            return;
        }
        let path = format!("{dir}/slow-{trace}.json");
        let _ = std::fs::write(path, td_telemetry::chrome_trace(&events));
    }

    /// IO-pool duty: parse one connection, answer it inline or admit it
    /// to the compute queue.
    fn serve_connection(&self, mut stream: TcpStream, queue: &FairQueue<Job>) {
        let request = match http::read_request(&mut stream, self.config.max_body) {
            Ok(r) => r,
            Err(http::HttpError::BodyTooLarge(n)) => {
                td_telemetry::metrics::counter("server/errors/413").add(1);
                http::reject(
                    &mut stream,
                    &Response::error(413, &format!("request body of {n} bytes is too large")),
                );
                return;
            }
            Err(http::HttpError::Malformed(m)) => {
                td_telemetry::metrics::counter("server/errors/400").add(1);
                http::reject(&mut stream, &Response::error(400, &m));
                return;
            }
            // Timeout or reset mid-read: nobody left to answer.
            Err(http::HttpError::Io(_)) => return,
        };
        // A watch subscription is a long-lived stream: it must neither
        // block an io worker nor occupy a compute slot, so it gets a
        // dedicated thread that dies with its socket.
        if request.method == "GET" && request.path == "/v1/watch" {
            self.serve_watch(stream, &request);
            return;
        }
        // Every request gets a trace id: the client's `traceparent` when
        // it sent one (bare 32-hex also accepted), a fresh id otherwise.
        let trace = request
            .trace
            .as_deref()
            .and_then(TraceId::parse)
            .unwrap_or_else(TraceId::generate);
        // Derivation endpoints go through admission control; everything
        // else (health, metrics, stats, registration) is cheap enough to
        // answer from the io pool directly.
        let is_compute = request.method == "POST" && request.path.starts_with("/v1/");
        if !is_compute {
            let ctx = RequestCtx {
                trace: Some(trace),
                tenant: None,
                queue_us: 0,
            };
            self.dispatch(stream, &request, ctx, None);
            return;
        }
        let tenant = tenant_of(&request.body);
        let submitted_ns = td_telemetry::now_ns();
        let job = Job {
            stream,
            request,
            trace,
            tenant: tenant.clone(),
            submitted_ns,
        };
        match queue.submit(&tenant, job) {
            Ok(()) => Self::publish_queue_depths(queue),
            Err(rejected) => {
                let (status, retry_after) = match rejected.error {
                    SubmitError::Busy { .. } => (429, true),
                    SubmitError::Closed => (503, false),
                };
                td_telemetry::metrics::counter(&format!("server/errors/{status}")).add(1);
                let endpoint =
                    api::endpoint_key(&rejected.job.request.method, &rejected.job.request.path);
                self.api.record_rejection(&endpoint, &tenant, status);
                let ctx = RequestCtx {
                    trace: Some(trace),
                    tenant: Some(tenant),
                    queue_us: 0,
                };
                // Rejections are requests too: they get an access-log
                // line (zero exec time) before the response goes out.
                self.log_access(&ctx, &rejected.job.request, status, 0, 0);
                let mut response = Response::error(status, &rejected.error.to_string());
                if retry_after {
                    response
                        .extra_headers
                        .push(("Retry-After".to_string(), "1".to_string()));
                }
                let mut stream = rejected.job.stream;
                let _ = response.write_to(&mut stream);
            }
        }
    }

    /// Answers `GET /v1/watch?tenant=..&schema=..[&type=..&attrs=a,b]`:
    /// subscribes the connection to the change feed and hands the socket
    /// to a dedicated streaming thread. The thread writes one SSE frame
    /// per event (`hello` first, then `change` per matching PUT) and a
    /// comment ping during idle stretches so dead peers are detected;
    /// any write failure unsubscribes and ends the thread.
    fn serve_watch(&self, mut stream: TcpStream, request: &Request) {
        let mut tenant = None;
        let mut schema = None;
        let mut type_name = None;
        let mut attrs: Vec<String> = Vec::new();
        for pair in request.query.split('&') {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match key {
                "tenant" => tenant = Some(value.to_string()),
                "schema" => schema = Some(value.to_string()),
                "type" => type_name = Some(value.to_string()),
                "attrs" => {
                    attrs.extend(value.split(',').filter(|a| !a.is_empty()).map(String::from))
                }
                _ => {}
            }
        }
        let (Some(tenant), Some(schema)) = (tenant, schema) else {
            td_telemetry::metrics::counter("server/errors/400").add(1);
            http::reject(
                &mut stream,
                &Response::error(400, "watch needs ?tenant=..&schema=.. query parameters"),
            );
            return;
        };
        let view = type_name.map(|type_name| WatchView { type_name, attrs });
        let hub = Arc::clone(&self.api.watch);
        let (id, events) = hub.subscribe(&tenant, &schema, view);
        let header = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                      Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
        std::thread::spawn(move || {
            use std::io::Write as _;
            // read_request set a read timeout; writes are unaffected,
            // but clear it so the socket carries no stale deadlines.
            let _ = stream.set_read_timeout(None);
            if stream
                .write_all(header.as_bytes())
                .and_then(|()| stream.flush())
                .is_err()
            {
                hub.unsubscribe(id);
                return;
            }
            loop {
                let frame = match events.recv_timeout(Duration::from_secs(10)) {
                    Ok(frame) => frame,
                    // Idle: an SSE comment doubles as a liveness probe.
                    Err(mpsc::RecvTimeoutError::Timeout) => ": ping\n\n".to_string(),
                    // Hub dropped (server shutting down): end the stream.
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                };
                if stream
                    .write_all(frame.as_bytes())
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    break;
                }
            }
            hub.unsubscribe(id);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServerConfig::default();
        assert!(c.exec_threads >= 1);
        assert!(c.io_threads >= 1);
        assert!(c.queue_slots >= 1);
        assert_eq!(c.max_body, http::DEFAULT_MAX_BODY);
    }
}
