//! The tenant-scoped schema registry.
//!
//! Tenants register named schema texts (`PUT
//! /v1/tenants/{t}/schemas/{name}`); each registration parses the text
//! once into a warm [`SchemaSnapshot`] and bumps a monotonic version.
//! Derivation requests that name a registered schema fork the shared
//! snapshot, so the CPL memo, dispatch cache and applicability index
//! warmed by earlier requests are inherited instead of rebuilt — the
//! warm-path advantage the `ratio_serve_warm_vs_cold` repro metric
//! gates. Re-registering a name swaps in a brand-new snapshot, but not a
//! brand-new cache: the registry diffs the new text's schema against the
//! previous version ([`td_model::diff_schemas`]) and, when every
//! surviving entity keeps its id slot, carries the warm entries whose
//! dependency closure the diff proves untouched
//! ([`td_model::Schema::carry_warm_from`]). A version bump therefore
//! invalidates exactly the changed portion of the cache; entries the
//! edit could not have affected stay warm across versions. The diff and
//! the replaced snapshot ride along in the [`PutOutcome`] so the watch
//! hub can stream incremental re-derivation results to subscribers.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

use td_model::{
    diff_schemas, parse_schema, read_snapshot_file, write_snapshot_file, CarryReport, Schema,
    SchemaDiff, SchemaSnapshot, TypeId,
};

/// One registered schema: the parsed warm snapshot plus provenance.
pub struct SchemaEntry {
    /// Monotonic per-(tenant, name) version, starting at 1.
    pub version: u64,
    /// The shared copy-on-write snapshot requests fork from.
    pub snapshot: SchemaSnapshot,
    /// The schema text as registered (echoed by GET).
    pub text: String,
}

impl SchemaEntry {
    /// Warms the shared snapshot for derivations from `source`: CPLs for
    /// every live type plus the applicability condensation index. Caches
    /// live on the snapshot, not the fork, so the warmth persists across
    /// requests — this is the line between the registry's warm path and
    /// an inline `schema_text` request's cold path.
    pub fn warm_for(&self, source: TypeId) {
        for t in self.snapshot.live_type_ids() {
            let _ = self.snapshot.cpl(t);
        }
        // An index build failure (e.g. a dataflow error) surfaces as the
        // request's pipeline error instead; warming never fails.
        let _ = self.snapshot.cached_applicability_index(source);
    }
}

/// What a [`Registry::put`] did: the assigned version plus everything a
/// change-feed consumer needs to compute incremental re-derivations.
pub struct PutOutcome {
    /// Monotonic per-(tenant, name) version, starting at 1.
    pub version: u64,
    /// Diff against the replaced version (`None` on first registration).
    pub diff: Option<SchemaDiff>,
    /// Warm entries carried from the replaced snapshot (zero when ids
    /// were unstable or nothing qualified).
    pub carried: CarryReport,
    /// The entry this PUT replaced, still warm (`None` on first
    /// registration). Watch subscribers derive against both sides.
    pub previous: Option<Arc<SchemaEntry>>,
    /// The newly registered snapshot.
    pub snapshot: SchemaSnapshot,
}

/// Registry state: tenant → schema name → entry.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<String, BTreeMap<String, Arc<SchemaEntry>>>>,
    /// When set, every PUT persists a warm binary snapshot here and boot
    /// reloads them — tenant state survives server restarts.
    snapshot_dir: Option<PathBuf>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry persisted under `dir`: existing `*.tds` snapshots are
    /// loaded at construction (schemas arrive with warm caches — no text
    /// re-parse, no re-derivation) and every subsequent PUT writes its
    /// snapshot back. Returns the registry and how many tenant schemas
    /// were restored. Unreadable or corrupt snapshot files fail loudly —
    /// silently dropping a tenant's state would be worse than refusing
    /// to start.
    pub fn with_snapshot_dir(dir: impl Into<PathBuf>) -> Result<(Registry, usize), String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create snapshot dir `{}`: {e}", dir.display()))?;
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| format!("cannot read snapshot dir `{}`: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "tds"))
            .collect();
        files.sort();
        let registry = Registry {
            inner: RwLock::default(),
            snapshot_dir: Some(dir),
        };
        let mut loaded = 0;
        for path in files {
            let (schema, meta) = read_snapshot_file(&path)
                .map_err(|e| format!("snapshot `{}`: {e}", path.display()))?;
            let field = |key: &str| {
                meta.iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| {
                        format!("snapshot `{}`: missing `{key}` metadata", path.display())
                    })
            };
            let tenant = field("tenant")?;
            let name = field("name")?;
            let version: u64 = field("version")?
                .parse()
                .map_err(|_| format!("snapshot `{}`: bad version", path.display()))?;
            let text = field("text")?;
            let mut inner = registry.inner.write().unwrap_or_else(|e| e.into_inner());
            let schemas = inner.entry(tenant.clone()).or_default();
            // Staleness guard: two files can claim the same (tenant,
            // name) — e.g. a stray copy made before a later
            // re-registration. Keep whichever carries the higher
            // version, never whichever happens to sort last.
            if let Some(existing) = schemas.get(&name) {
                if existing.version >= version {
                    eprintln!(
                        "td-server: snapshot `{}` is stale for {tenant}/{name} \
                         (v{version} <= restored v{}), ignoring",
                        path.display(),
                        existing.version
                    );
                    continue;
                }
                eprintln!(
                    "td-server: snapshot `{}` supersedes {tenant}/{name} \
                     v{} with v{version}",
                    path.display(),
                    existing.version
                );
            }
            let superseded = schemas
                .insert(
                    name,
                    Arc::new(SchemaEntry {
                        version,
                        snapshot: schema.into_snapshot(),
                        text,
                    }),
                )
                .is_some();
            if !superseded {
                loaded += 1;
            }
        }
        Ok((registry, loaded))
    }

    /// Validates a tenant or schema name from a URL path segment.
    pub fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.len() <= 64
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
    }

    /// Parses and registers `text` under `(tenant, name)`. Replacing an
    /// existing name bumps its version, diffs the new schema against the
    /// replaced one, and — when the diff proves id stability — carries
    /// the warm cache entries the edit could not have touched into the
    /// new snapshot, so the first request after a small edit re-derives
    /// only the dirty portion. The outcome reports the diff, the carry
    /// tally, and both snapshots for watch-feed consumers.
    pub fn put(&self, tenant: &str, name: &str, text: &str) -> Result<PutOutcome, String> {
        let schema = parse_schema(text).map_err(|e| e.to_string())?;
        let snapshot = schema.into_snapshot();
        let previous = self.get(tenant, name);
        let mut diff = None;
        let mut carried = CarryReport::default();
        if let Some(prev) = &previous {
            let d = diff_schemas(prev.snapshot.schema(), snapshot.schema());
            carried = snapshot
                .schema()
                .carry_warm_from(prev.snapshot.schema(), &d);
            diff = Some(d);
        }
        let version;
        {
            let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
            let schemas = inner.entry(tenant.to_string()).or_default();
            version = schemas.get(name).map(|e| e.version + 1).unwrap_or(1);
            schemas.insert(
                name.to_string(),
                Arc::new(SchemaEntry {
                    version,
                    snapshot: snapshot.clone(),
                    text: text.to_string(),
                }),
            );
        }
        if let Some(dir) = &self.snapshot_dir {
            // Persist with warm caches so a restarted server serves this
            // tenant's first request off the fast path. Tenant and name
            // are pre-validated to [A-Za-z0-9._-], so the filename is
            // filesystem-safe on every platform.
            snapshot.warm_caches();
            let meta = [
                ("tenant".to_string(), tenant.to_string()),
                ("name".to_string(), name.to_string()),
                ("version".to_string(), version.to_string()),
                ("text".to_string(), text.to_string()),
            ];
            let path = dir.join(format!("{tenant}__{name}.tds"));
            write_snapshot_file(&snapshot, &meta, &path)
                .map_err(|e| format!("cannot persist snapshot `{}`: {e}", path.display()))?;
        }
        Ok(PutOutcome {
            version,
            diff,
            carried,
            previous,
            snapshot,
        })
    }

    /// The entry registered under `(tenant, name)`, if any.
    pub fn get(&self, tenant: &str, name: &str) -> Option<Arc<SchemaEntry>> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)?
            .get(name)
            .map(Arc::clone)
    }

    /// `(tenant, name, version)` rows for every registered schema, in
    /// sorted order — the `/v1/stats` inventory.
    pub fn inventory(&self) -> Vec<(String, String, u64)> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner
            .iter()
            .flat_map(|(tenant, schemas)| {
                schemas
                    .iter()
                    .map(move |(name, e)| (tenant.clone(), name.clone(), e.version))
            })
            .collect()
    }
}

/// Convenience for handlers: a parsed schema for a one-shot (cold)
/// request carrying inline `schema_text`.
pub fn parse_inline(text: &str) -> Result<Schema, String> {
    parse_schema(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG: &str = "type A { x: int  y: int }\n";

    #[test]
    fn put_parses_versions_and_isolates_tenants() {
        let r = Registry::new();
        let first = r.put("acme", "s", FIG).unwrap();
        assert_eq!(first.version, 1);
        assert!(first.diff.is_none() && first.previous.is_none());
        let second = r.put("acme", "s", FIG).unwrap();
        assert_eq!(second.version, 2);
        // Identical text: the diff exists and is empty.
        assert!(second.diff.as_ref().unwrap().is_empty());
        assert_eq!(second.previous.as_ref().unwrap().version, 1);
        // The same schema name in another tenant versions independently.
        assert_eq!(r.put("globex", "s", FIG).unwrap().version, 1);
        assert_eq!(r.get("acme", "s").unwrap().version, 2);
        assert_eq!(r.get("globex", "s").unwrap().version, 1);
        assert!(r.get("acme", "missing").is_none());
        assert!(r.get("missing", "s").is_none());
        assert_eq!(
            r.inventory(),
            vec![
                ("acme".to_string(), "s".to_string(), 2),
                ("globex".to_string(), "s".to_string(), 1),
            ]
        );
    }

    #[test]
    fn put_rejects_unparseable_text() {
        let r = Registry::new();
        let Err(e) = r.put("acme", "bad", "type { oops") else {
            panic!("malformed text must not register");
        };
        assert!(!e.is_empty());
        assert!(r.get("acme", "bad").is_none());
    }

    #[test]
    fn name_validation() {
        assert!(Registry::valid_name("acme-prod_v1.2"));
        assert!(!Registry::valid_name(""));
        assert!(!Registry::valid_name("a/b"));
        assert!(!Registry::valid_name("spaced name"));
        assert!(!Registry::valid_name(&"x".repeat(65)));
    }

    #[test]
    fn snapshot_dir_survives_a_restart_with_warm_caches() {
        let dir = std::env::temp_dir().join(format!("td_registry_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First server lifetime: register two tenants' schemas.
        {
            let (r, loaded) = Registry::with_snapshot_dir(&dir).unwrap();
            assert_eq!(loaded, 0);
            assert_eq!(r.put("acme", "s", FIG).unwrap().version, 1);
            assert_eq!(r.put("acme", "s", FIG).unwrap().version, 2);
            assert_eq!(
                r.put("globex", "t", "type B { z: int }\n").unwrap().version,
                1
            );
        }

        // "Restart": a fresh registry over the same directory.
        let (r, loaded) = Registry::with_snapshot_dir(&dir).unwrap();
        assert_eq!(loaded, 2, "one snapshot file per (tenant, schema)");
        let entry = r.get("acme", "s").unwrap();
        assert_eq!(entry.version, 2, "versions survive the restart");
        assert_eq!(entry.text, FIG, "GET still echoes the registered text");
        assert!(entry.snapshot.schema().type_id("A").is_ok());
        // The restored schema arrives with warm caches — no re-derivation.
        let stats = entry.snapshot.schema().dispatch_cache_stats();
        assert!(stats.cpl_entries > 0, "restored snapshot has cold caches");
        assert!(r.get("globex", "t").is_some());

        // A corrupt snapshot file fails the boot loudly instead of
        // silently dropping the tenant.
        std::fs::write(dir.join("evil__x.tds"), b"TDSNAP1\ngarbage").unwrap();
        let err = match Registry::with_snapshot_dir(&dir) {
            Err(e) => e,
            Ok(_) => panic!("corrupt snapshot file must fail the boot"),
        };
        assert!(err.contains("evil__x.tds"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replacing_a_schema_discards_the_old_snapshot() {
        let r = Registry::new();
        r.put("t", "s", FIG).unwrap();
        let old = r.get("t", "s").unwrap();
        let outcome = r.put("t", "s", "type B { z: int }\n").unwrap();
        let new = r.get("t", "s").unwrap();
        assert_eq!(new.version, 2);
        // The old Arc survives for in-flight requests but the registry
        // no longer hands it out.
        assert_eq!(old.version, 1);
        assert!(new.snapshot.schema().type_id("B").is_ok());
        assert!(new.snapshot.schema().type_id("A").is_err());
        // A wholesale replacement breaks id stability: nothing carries.
        assert!(!outcome.diff.as_ref().unwrap().ids_stable);
        assert_eq!(outcome.carried.total(), 0);
    }

    #[test]
    fn append_only_edit_carries_warm_entries_across_versions() {
        let r = Registry::new();
        let base = "type A { x: int }\ntype B : A { y: int }\naccessors x\n";
        r.put("t", "s", base).unwrap();
        // Warm the registered snapshot the way request traffic would.
        let entry = r.get("t", "s").unwrap();
        entry.snapshot.warm_caches();

        // Append-only edit: a new subtype with an accessor.
        let edited = format!("{base}type C : B {{ z: int }}\naccessors z\n");
        let outcome = r.put("t", "s", &edited).unwrap();
        let diff = outcome.diff.as_ref().unwrap();
        assert!(diff.ids_stable, "{diff:?}");
        assert_eq!(diff.summary(), "types +1; attrs +1; gfs +2; methods +2");
        assert!(
            outcome.carried.total() > 0,
            "warm entries must carry across an append-only PUT: {:?}",
            outcome.carried
        );
        // A and B answer from carried entries: no index rebuild misses.
        let new = r.get("t", "s").unwrap();
        let before = new.snapshot.schema().dispatch_cache_stats();
        let a = new.snapshot.schema().type_id("A").unwrap();
        new.snapshot.cached_applicability_index(a).unwrap();
        let after = new.snapshot.schema().dispatch_cache_stats();
        assert_eq!(after.index_misses, before.index_misses);
    }

    #[test]
    fn snapshot_dir_restore_prefers_the_newer_version_on_duplicates() {
        let dir = std::env::temp_dir().join(format!("td_registry_stale_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (r, _) = Registry::with_snapshot_dir(&dir).unwrap();
            r.put("acme", "s", FIG).unwrap();
            // Simulate a stale stray copy left behind before a later
            // re-registration: duplicate the v1 file under another name,
            // then re-register so the canonical file holds v2.
            std::fs::copy(dir.join("acme__s.tds"), dir.join("acme__s.stale.tds")).unwrap();
            r.put("acme", "s", "type A { x: int  y: int  w: int }\n")
                .unwrap();
        }
        // The stale copy sorts BEFORE the canonical file; restore must
        // still surface v2. A reversed-sort duplicate (sorting after)
        // must be ignored, not clobber v2.
        let (r, loaded) = Registry::with_snapshot_dir(&dir).unwrap();
        assert_eq!(loaded, 1, "duplicates must not double-count");
        assert_eq!(r.get("acme", "s").unwrap().version, 2);
        assert!(r.get("acme", "s").unwrap().text.contains('w'));

        std::fs::copy(dir.join("acme__s.stale.tds"), dir.join("acme__s.zz.tds")).unwrap();
        let (r, loaded) = Registry::with_snapshot_dir(&dir).unwrap();
        assert_eq!(loaded, 1);
        assert_eq!(
            r.get("acme", "s").unwrap().version,
            2,
            "a stale file sorting last must not shadow the newer version"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
