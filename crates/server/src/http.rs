//! A hand-rolled HTTP/1.1 subset: exactly what the derivation API needs.
//!
//! The build environment resolves no crates registry, so hyper/tokio are
//! off the table (see DESIGN.md); this module implements the slice of
//! RFC 9112 the service actually speaks — one request per connection
//! (`Connection: close`), `Content-Length` bodies only (no chunked
//! transfer coding), bounded header and body sizes, and read timeouts so
//! a stalled client can never wedge a worker. The same constraints make
//! the parser small enough to test exhaustively.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line + headers (16 KiB — generous for an
/// API whose richest request is a few short header lines).
pub const MAX_HEAD: usize = 16 * 1024;

/// Default upper bound on request bodies (4 MiB — a schema text plus a
/// request fleet fits with room to spare).
pub const DEFAULT_MAX_BODY: usize = 4 * 1024 * 1024;

/// How long a worker waits on a socket read before giving up on the
/// client.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `PUT`, …).
    pub method: String,
    /// Decoded path without the query string (`/v1/project`).
    pub path: String,
    /// The raw query string (empty when absent), e.g. `format=json`.
    pub query: String,
    /// The raw `traceparent` header value, when the client sent one
    /// (either the full `00-…-…-01` form or a bare 32-hex trace id).
    pub trace: Option<String>,
    /// The request body.
    pub body: Vec<u8>,
}

impl Request {
    /// The value of query parameter `key`, if present (`a=b&c=d` form; no
    /// percent-decoding — the API's parameter values never need it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read. Each variant maps onto the HTTP
/// status the connection handler answers with.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request (→ 400).
    Malformed(String),
    /// Declared body length exceeds the configured bound (→ 413).
    BodyTooLarge(usize),
    /// The socket failed or timed out mid-request (no response possible).
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::BodyTooLarge(n) => write!(f, "request body of {n} bytes exceeds the limit"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Reads and parses one HTTP/1.1 request from `stream`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    // Read until the blank line ending the head, keeping any body bytes
    // that rode along in the same segments.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::Malformed("request head too large".into()));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed before the request head ended".into(),
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad version `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut trace = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{value}`")))?;
        } else if name.eq_ignore_ascii_case("traceparent") {
            trace = Some(value.trim().to_string());
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge(content_length));
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "more body bytes than Content-Length declared".into(),
        ));
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed before the declared body arrived".into(),
                ))
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        trace,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on 429.
    pub extra_headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error envelope: `{"error": "...", "status": N}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\"error\": {}, \"status\": {status}}}\n",
                crate::json::quote(message)
            ),
        )
    }

    /// Serializes and writes the response; always closes the connection
    /// (the API is one-request-per-connection by design).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Writes a rejection on a connection whose request body was never
/// fully read, then drains what the client already sent (bounded).
///
/// Closing with unread bytes in the receive buffer makes the kernel
/// send RST instead of FIN, which can destroy the response before the
/// client reads it. Shutting down our write side and sinking the
/// remaining body (up to 1 MiB, under the read timeout) lets the client
/// finish sending and still see the status line.
pub fn reject(stream: &mut TcpStream, response: &Response) {
    let _ = response.write_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 8192];
    let mut drained = 0usize;
    while drained < 1024 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// A fully parsed client-side response: status, headers and body.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Response headers as `(lowercased name, value)` pairs in wire
    /// order.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl HttpReply {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A minimal HTTP client for `tdv client`, the CI smoke job and the
/// loopback test suite: sends one request, returns `(status, body)`.
///
/// `addr` is `host:port`; redirects, TLS and keep-alive are deliberately
/// out of scope.
pub fn http_call(
    addr: &str,
    method: &str,
    path_and_query: &str,
    body: Option<&[u8]>,
) -> std::io::Result<(u16, String)> {
    let reply = http_request(addr, method, path_and_query, &[], body)?;
    Ok((reply.status, reply.body))
}

/// [`http_call`] with explicit extra request headers and the full
/// response ([`HttpReply`]) — the trace-correlated client path: pass a
/// `("traceparent", id)` header and read the echoed one back.
pub fn http_request(
    addr: &str,
    method: &str,
    path_and_query: &str,
    headers: &[(&str, &str)],
    body: Option<&[u8]>,
) -> std::io::Result<HttpReply> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let body = body.unwrap_or(b"");
    let mut head = format!(
        "{method} {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = find_head_end(&raw).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response without a complete head",
        )
    })?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .and_then(|line| line.split(' ').nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response status line")
        })?;
    let headers = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw client bytes over a real loopback
    /// socket pair.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
            // Keep the connection open briefly so the parser sees a
            // stall, not EOF, when it wants more bytes.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, max_body);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_request_with_body_and_query() {
        let req = parse_raw(
            b"POST /v1/project?format=json&x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nwork",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/project");
        assert_eq!(req.query_param("format"), Some("json"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.body, b"work");
    }

    #[test]
    fn captures_the_traceparent_header() {
        let req = parse_raw(
            b"POST /v1/project HTTP/1.1\r\nHost: h\r\n\
              Traceparent: 00-0123456789abcdef0123456789abcdef-0123456789abcdef-01\r\n\
              Content-Length: 0\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(
            req.trace.as_deref(),
            Some("00-0123456789abcdef0123456789abcdef-0123456789abcdef-01")
        );
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\nHost: h\r\n\r\n", 1024).unwrap();
        assert_eq!(req.trace, None);
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(
            parse_raw(b"NOT-HTTP\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"GET /x SPAM/9\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_raw(b"GET /x HTTP/1.1\r\nContent-Length: soup\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        let e = parse_raw(
            b"POST /v1/batch HTTP/1.1\r\nContent-Length: 4096\r\n\r\n",
            64,
        )
        .unwrap_err();
        assert!(matches!(e, HttpError::BodyTooLarge(4096)));
    }

    #[test]
    fn response_roundtrips_through_the_client() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "PUT");
            assert_eq!(req.body, b"type A { }");
            let mut resp = Response::json(429, "{\"error\": \"busy\"}\n");
            resp.extra_headers
                .push(("Retry-After".to_string(), "1".to_string()));
            resp.write_to(&mut stream).unwrap();
        });
        let (status, body) =
            http_call(&addr, "PUT", "/v1/tenants/a/schemas/s", Some(b"type A { }")).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, "{\"error\": \"busy\"}\n");
        server.join().unwrap();
    }
}
