//! Admission control: a bounded, tenant-fair work queue.
//!
//! Each tenant owns a bounded FIFO; a round-robin cursor over tenants
//! decides whose job runs next. The two properties this buys:
//!
//! * **Isolation** — one tenant flooding the service fills only its own
//!   queue. Further submissions from that tenant bounce with
//!   [`SubmitError::Busy`] (→ 429 + `Retry-After`) while other tenants'
//!   requests keep flowing.
//! * **Fairness** — workers drain tenants in rotation, so a tenant with
//!   one queued job waits at most one job per other active tenant, not
//!   behind a deep stranger queue.
//!
//! [`close`](FairQueue::close) flips the queue into drain mode: submits
//! are refused, [`next`](FairQueue::next) keeps handing out queued jobs
//! until empty and then returns `None` to every worker. This is the
//! graceful-shutdown half of the SIGTERM story in `lib.rs`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why a job was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's queue is full; retry later.
    Busy {
        /// The tenant whose queue overflowed.
        tenant: String,
    },
    /// The queue is draining for shutdown; no new work is admitted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { tenant } => {
                write!(f, "tenant `{tenant}` has no free queue slots")
            }
            SubmitError::Closed => write!(f, "the server is shutting down"),
        }
    }
}

/// A refused submission: the job comes back to the caller (it may carry
/// resources — the server's jobs own the client socket, which still has
/// to be answered with the refusal).
#[derive(Debug)]
pub struct Rejected<T> {
    /// The job that was not admitted.
    pub job: T,
    /// Why it was refused.
    pub error: SubmitError,
}

struct State<T> {
    /// Per-tenant FIFOs. A tenant's entry persists once created so the
    /// round-robin order is stable (tenant cardinality is small: it is
    /// bounded by the registry, not by request traffic).
    queues: BTreeMap<String, VecDeque<T>>,
    /// Tenant names in first-seen order; `cursor` rotates over this.
    order: Vec<String>,
    cursor: usize,
    depth: usize,
    closed: bool,
}

/// A bounded multi-tenant queue with round-robin dequeue order.
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    slots_per_tenant: usize,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `slots_per_tenant` pending jobs per
    /// tenant (minimum 1).
    pub fn new(slots_per_tenant: usize) -> FairQueue<T> {
        FairQueue {
            state: Mutex::new(State {
                queues: BTreeMap::new(),
                order: Vec::new(),
                cursor: 0,
                depth: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            slots_per_tenant: slots_per_tenant.max(1),
        }
    }

    /// Admits `job` for `tenant`, or hands it back when the tenant's
    /// queue is full or the server is draining.
    pub fn submit(&self, tenant: &str, job: T) -> Result<(), Rejected<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(Rejected {
                job,
                error: SubmitError::Closed,
            });
        }
        if !state.queues.contains_key(tenant) {
            state.queues.insert(tenant.to_string(), VecDeque::new());
            state.order.push(tenant.to_string());
        }
        let queue = state.queues.get_mut(tenant).expect("tenant queue exists");
        if queue.len() >= self.slots_per_tenant {
            return Err(Rejected {
                job,
                error: SubmitError::Busy {
                    tenant: tenant.to_string(),
                },
            });
        }
        queue.push_back(job);
        state.depth += 1;
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// The next job in round-robin tenant order. Blocks while the queue
    /// is open and empty; returns `None` once the queue is closed *and*
    /// drained.
    pub fn next(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.depth > 0 {
                let n = state.order.len();
                for step in 0..n {
                    let i = (state.cursor + step) % n;
                    let tenant = state.order[i].clone();
                    if let Some(job) = state.queues.get_mut(&tenant).and_then(VecDeque::pop_front) {
                        // Advance past the tenant we just served so the
                        // next dequeue starts with its neighbour.
                        state.cursor = (i + 1) % n;
                        state.depth -= 1;
                        return Some(job);
                    }
                }
                unreachable!("depth > 0 but every tenant queue was empty");
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admitting work and wakes every blocked worker; queued jobs
    /// still drain through [`next`](FairQueue::next).
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Jobs currently queued across all tenants.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).depth
    }

    /// Queued jobs per tenant, in first-seen order. Tenants that have
    /// drained to zero stay listed — the caller needs them to reset
    /// per-tenant depth gauges.
    pub fn tenant_depths(&self) -> Vec<(String, usize)> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state
            .order
            .iter()
            .map(|t| (t.clone(), state.queues.get(t).map_or(0, VecDeque::len)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounds_each_tenant_independently() {
        let q: FairQueue<u32> = FairQueue::new(2);
        q.submit("a", 1).unwrap();
        q.submit("a", 2).unwrap();
        let rejected = q.submit("a", 3).unwrap_err();
        assert_eq!(rejected.job, 3);
        assert_eq!(
            rejected.error,
            SubmitError::Busy {
                tenant: "a".to_string()
            }
        );
        // Tenant `b` is unaffected by `a`'s overflow.
        q.submit("b", 10).unwrap();
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn dequeues_round_robin_across_tenants() {
        let q: FairQueue<&str> = FairQueue::new(8);
        q.submit("a", "a1").unwrap();
        q.submit("a", "a2").unwrap();
        q.submit("a", "a3").unwrap();
        q.submit("b", "b1").unwrap();
        q.submit("c", "c1").unwrap();
        // `a` flooded first, but `b` and `c` are each served after at
        // most one `a` job.
        let drained: Vec<&str> =
            std::iter::from_fn(|| (q.depth() > 0).then(|| q.next().unwrap())).collect();
        assert_eq!(drained, vec!["a1", "b1", "c1", "a2", "a3"]);
    }

    #[test]
    fn close_refuses_submits_but_drains_queued_work() {
        let q: FairQueue<u32> = FairQueue::new(4);
        q.submit("a", 1).unwrap();
        q.close();
        let rejected = q.submit("a", 2).unwrap_err();
        assert_eq!(rejected.error, SubmitError::Closed);
        assert_eq!(q.next(), Some(1));
        assert_eq!(q.next(), None);
        assert_eq!(q.next(), None);
    }

    #[test]
    fn blocked_workers_wake_on_submit_and_on_close() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(4));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(job) = q.next() {
                    got.push(job);
                }
                got
            })
        };
        // Give the worker a moment to block, then feed and close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit("t", 7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), vec![7]);
    }
}
