//! SIGTERM/SIGINT → a shutdown flag the accept loop polls.
//!
//! The container resolves no crates registry, so there is no `libc` or
//! `signal-hook` to lean on; registration goes straight through the C
//! runtime's `signal(2)` entry point. This is the one unsafe item in the
//! whole workspace, and it is as small as the job allows: the handler
//! does a single atomic store (async-signal-safe) and the listener polls
//! the flag from its nonblocking accept loop — no `EINTR` juggling, no
//! self-pipe.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a termination signal arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Registers the SIGTERM/SIGINT handlers and returns the flag they set.
/// Idempotent; later registrations are harmless re-installs.
#[allow(unsafe_code)]
pub fn install_shutdown_handler() -> &'static AtomicBool {
    extern "C" {
        /// `signal(2)` from the C runtime: `sighandler_t signal(int, sighandler_t)`.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal` is the C standard library's handler registration;
    // the handler only performs an atomic store, which is
    // async-signal-safe. No Rust state is touched from signal context.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    &SHUTDOWN
}

/// True once a termination signal was observed (or [`request_shutdown`]
/// was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trips the shutdown flag programmatically — the tests' stand-in for
/// delivering a real SIGTERM.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_trips_programmatically() {
        let flag = install_shutdown_handler();
        assert_eq!(flag.load(Ordering::SeqCst), shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        // Reset for any test sharing the process.
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
