//! A minimal JSON value: parser for request bodies, builder helpers for
//! response bodies.
//!
//! Hand-rolled for exactly the shapes the API exchanges (same policy as
//! `crates/bench/src/report.rs` and the telemetry exporters): the build
//! environment resolves no crates registry, so no serde. Parsing accepts
//! any JSON document; handlers read the fields they know and reject the
//! rest by name, so typos in request bodies fail loudly instead of being
//! silently ignored.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, the JSON number model).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (rejects trailing garbage).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64).then_some(n as usize)
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Quotes `s` as a JSON string literal (escaping quotes, backslashes and
/// control characters).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `["a", "b", …]` from string-ish items.
pub fn str_array<I: IntoIterator<Item = S>, S: AsRef<str>>(items: I) -> String {
    let inner = items
        .into_iter()
        .map(|s| quote(s.as_ref()))
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{inner}]")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, "two", {"b": true}], "c": null}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let arr = obj["a"].as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[0].as_usize(), Some(1));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert_eq!(arr[2].as_obj().unwrap()["b"].as_bool(), Some(true));
        assert_eq!(obj["c"], Json::Null);
    }

    #[test]
    fn rejects_garbage_and_fractional_usize() {
        assert!(Json::parse("{,}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("").is_err());
        assert_eq!(Json::parse("1.5").unwrap().as_usize(), None);
        assert_eq!(Json::parse("-3").unwrap().as_usize(), None);
    }

    #[test]
    fn quote_and_str_array_escape() {
        assert_eq!(quote("a\"b\n"), r#""a\"b\n""#);
        assert_eq!(str_array(["x", "y\t"]), r#"["x", "y\t"]"#);
        // Round-trip through the parser.
        let v = Json::parse(&quote("päth\\with \"stuff\"\u{1}")).unwrap();
        assert_eq!(v.as_str(), Some("päth\\with \"stuff\"\u{1}"));
    }
}
