//! The baseline auditor: replay the paper's invariants against any
//! placement strategy and count what breaks.
//!
//! For each strategy run we measure, on a clone of the input schema:
//!
//! * **I1/I2/subtype violations** — does any existing type lose state or
//!   change dispatch? (the paper's core guarantee);
//! * **I3** — does the view's cumulative state equal the projection *with
//!   shared attribute identity*? (duplicated attributes fail this);
//! * **substitutability** — is the source a subtype of the view, so view
//!   clients accept source instances?
//! * **unsound / missed methods** — the strategy's claimed method set
//!   against the `IsApplicable` ground truth;
//! * **wall time**.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};
use td_core::invariants::{check_invariants, Violation};
use td_model::{AttrId, MethodId, Schema, TypeId};

use crate::strategies::{ground_truth_applicable, DerivationStrategy};

/// The measured outcome of auditing one strategy on one workload.
#[derive(Debug, Clone)]
pub struct AuditResult {
    /// Strategy display name.
    pub strategy: &'static str,
    /// The strategy failed outright (error message).
    pub failed: Option<String>,
    /// The derivation left a schema that no longer validates (e.g. an
    /// accessor stranded away from its attribute) — itself a violation.
    pub schema_invalid: bool,
    /// Existing types whose cumulative state changed (I1).
    pub state_violations: usize,
    /// Dispatch tuples whose outcome changed (I2).
    pub dispatch_violations: usize,
    /// Subtype-relation changes among original types.
    pub subtype_violations: usize,
    /// View state is exactly the projection, with shared identity (I3).
    pub derived_state_ok: bool,
    /// The source type can substitute for the view type.
    pub substitutable: bool,
    /// Methods claimed applicable that the ground truth rejects.
    pub unsound_methods: usize,
    /// Ground-truth-applicable methods the strategy missed.
    pub missed_methods: usize,
    /// Wall-clock time of the derivation itself.
    pub elapsed: Duration,
}

impl AuditResult {
    /// Total violations (excluding timing), for quick ranking.
    pub fn total_violations(&self) -> usize {
        self.state_violations
            + self.dispatch_violations
            + self.subtype_violations
            + usize::from(self.schema_invalid)
            + usize::from(!self.derived_state_ok)
            + usize::from(!self.substitutable)
            + self.unsound_methods
            + self.missed_methods
    }

    /// One row of a report table.
    pub fn row(&self) -> String {
        if let Some(err) = &self.failed {
            return format!("{:<18} FAILED: {err}", self.strategy);
        }
        format!(
            "{:<18} valid={:<5} state={:<3} dispatch={:<3} subtype={:<3} view_state={:<5} subst={:<5} unsound={:<3} missed={:<3} ({:?})",
            self.strategy,
            !self.schema_invalid,
            self.state_violations,
            self.dispatch_violations,
            self.subtype_violations,
            self.derived_state_ok,
            self.substitutable,
            self.unsound_methods,
            self.missed_methods,
            self.elapsed
        )
    }
}

/// Runs `strategy` on a clone of `schema` and audits the result.
pub fn audit_strategy(
    strategy: &dyn DerivationStrategy,
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
) -> AuditResult {
    let truth: BTreeSet<MethodId> = ground_truth_applicable(schema, source, projection)
        .into_iter()
        .collect();
    let mut working = schema.clone();
    let start = Instant::now();
    let outcome = strategy.derive(&mut working, source, projection);
    let elapsed = start.elapsed();

    let mut result = AuditResult {
        strategy: strategy.name(),
        failed: None,
        schema_invalid: false,
        state_violations: 0,
        dispatch_violations: 0,
        subtype_violations: 0,
        derived_state_ok: false,
        substitutable: false,
        unsound_methods: 0,
        missed_methods: 0,
        elapsed,
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            result.failed = Some(e);
            return result;
        }
    };

    let claimed: BTreeSet<MethodId> = outcome.claimed_applicable.iter().copied().collect();
    result.unsound_methods = claimed.difference(&truth).count();
    result.missed_methods = truth.difference(&claimed).count();
    result.substitutable = working.is_subtype(source, outcome.derived);

    let report = check_invariants(schema, &working, outcome.derived, projection, &[]);
    result.derived_state_ok = true;
    for v in &report.violations {
        match v {
            Violation::StateChanged { .. } => result.state_violations += 1,
            Violation::DispatchChanged { .. } => result.dispatch_violations += 1,
            Violation::SubtypeChanged { .. } => result.subtype_violations += 1,
            Violation::DerivedStateWrong { .. } => result.derived_state_ok = false,
            // I4 is audited via claimed-vs-truth above (the empty claimed
            // list passed to check_invariants would double-count here).
            Violation::DerivedBehaviorWrong { .. } => {}
            Violation::SchemaInvalid(_) => result.schema_invalid = true,
        }
    }
    if result.schema_invalid {
        // check_invariants stops at an invalid schema, but cumulative
        // state and the subtype relation are still well-defined — count
        // I1 and I3 by hand so strategies that both corrupt siblings and
        // strand accessors get full credit for the damage.
        for t in schema.live_type_ids() {
            if schema.cumulative_attrs(t) != working.cumulative_attrs(t) {
                result.state_violations += 1;
            }
        }
        result.derived_state_ok = working.cumulative_attrs(outcome.derived) == *projection;
    }
    result
}

/// Audits every strategy in `strategies` on the same workload, returning
/// results in input order.
pub fn audit_all(
    strategies: &[&dyn DerivationStrategy],
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
) -> Vec<AuditResult> {
    strategies
        .iter()
        .map(|s| audit_strategy(*s, schema, source, projection))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{
        DefinerChoice, DefinerSpecifiedStrategy, LocalEdgeStrategy, PaperStrategy,
        RootPlacementStrategy, StandaloneStrategy,
    };
    use td_workload::figures;

    fn fig3_workload() -> (Schema, TypeId, BTreeSet<AttrId>) {
        let s = figures::fig3();
        let a = s.type_id("A").unwrap();
        let proj = figures::FIG4_PROJECTION
            .iter()
            .map(|n| s.attr_id(n).unwrap())
            .collect();
        (s, a, proj)
    }

    #[test]
    fn paper_strategy_is_clean() {
        let (s, a, proj) = fig3_workload();
        let r = audit_strategy(&PaperStrategy, &s, a, &proj);
        assert!(r.failed.is_none());
        assert_eq!(r.total_violations(), 0, "{}", r.row());
        assert!(r.substitutable);
        assert!(r.derived_state_ok);
    }

    #[test]
    fn standalone_fails_state_identity_and_substitutability() {
        let (s, a, proj) = fig3_workload();
        let r = audit_strategy(&StandaloneStrategy, &s, a, &proj);
        assert!(r.failed.is_none());
        assert!(!r.derived_state_ok, "duplicated attrs break identity");
        assert!(!r.substitutable);
        // It misses every genuinely applicable method.
        assert_eq!(r.missed_methods, figures::EX1_APPLICABLE.len());
        // But it never corrupts existing types.
        assert_eq!(r.state_violations, 0);
        assert_eq!(r.dispatch_violations, 0);
    }

    #[test]
    fn root_placement_fails_like_standalone_plus_wrong_inheritance() {
        let (s, a, proj) = fig3_workload();
        let r = audit_strategy(&RootPlacementStrategy, &s, a, &proj);
        assert!(r.failed.is_none());
        assert!(!r.derived_state_ok);
        assert!(!r.substitutable);
        assert!(r.missed_methods > 0);
    }

    #[test]
    fn local_edge_corrupts_existing_types() {
        let (s, a, proj) = fig3_workload();
        let r = audit_strategy(&LocalEdgeStrategy, &s, a, &proj);
        assert!(r.failed.is_none());
        // Moving h2 away from H strands the get_h2 accessor: the schema
        // no longer validates.
        assert!(r.schema_invalid, "{}", r.row());
        // Moving a2/e2/h2 up to the view steals them from C, E, H
        // subtrees that are not below the view.
        assert!(r.state_violations > 0, "{}", r.row());
        // Signature-only method claims are unsound.
        assert!(r.unsound_methods > 0);
        assert!(r.substitutable, "the local edge itself is right");
    }

    #[test]
    fn definer_specified_state_right_methods_wrong() {
        let (s, a, proj) = fig3_workload();
        let strat = DefinerSpecifiedStrategy {
            choice: DefinerChoice::SignatureOnly,
        };
        let r = audit_strategy(&strat, &s, a, &proj);
        assert!(r.failed.is_none());
        assert!(r.derived_state_ok, "{}", r.row());
        assert_eq!(r.state_violations, 0);
        // 13 methods applicable to A, 4 genuinely applicable.
        assert_eq!(r.unsound_methods, 9);
        assert_eq!(r.missed_methods, 0);
    }

    #[test]
    fn audit_all_ranks_paper_first() {
        let (s, a, proj) = fig3_workload();
        let strategies: Vec<&dyn DerivationStrategy> = vec![
            &PaperStrategy,
            &StandaloneStrategy,
            &RootPlacementStrategy,
            &LocalEdgeStrategy,
        ];
        let results = audit_all(&strategies, &s, a, &proj);
        assert_eq!(results.len(), 4);
        let paper = &results[0];
        for other in &results[1..] {
            assert!(paper.total_violations() < other.total_violations());
        }
        // Rows render without panicking.
        for r in &results {
            assert!(!r.row().is_empty());
        }
    }
}
