//! # td-baselines — the related-work strategies, made measurable
//!
//! The paper's §1.1 surveys how earlier OODB view proposals place a
//! derived type: as a standalone entity, as a direct subtype of the
//! root, with only the local edge to the source, or with the applicable
//! methods hand-picked by the type definer. This crate implements each
//! of those strategies against the same [`td_model::Schema`] substrate
//! and provides an auditor that replays the paper's preservation
//! invariants against them — turning the paper's qualitative criticism
//! ("error-prone", "existing types are affected") into counted
//! violations. Experiment BASE in `EXPERIMENTS.md` is generated from
//! these audits.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod strategies;

pub use audit::{audit_all, audit_strategy, AuditResult};
pub use strategies::{
    ground_truth_applicable, DefinerChoice, DefinerSpecifiedStrategy, DerivationStrategy,
    LocalEdgeStrategy, PaperStrategy, RootPlacementStrategy, StandaloneStrategy, StrategyOutcome,
};
