//! Derived-type placement strategies from the paper's related work
//! (§1.1), implemented so their shortcomings can be *measured* rather
//! than asserted.
//!
//! | Strategy | Lineage | Shape |
//! |---|---|---|
//! | [`PaperStrategy`] | this paper | full factorization pipeline |
//! | [`StandaloneStrategy`] | Heiler & Zdonik \[9\] | view type as a separate entity, no hierarchy integration |
//! | [`RootPlacementStrategy`] | Kim \[12\] | view type as a direct subtype of the hierarchy roots |
//! | [`LocalEdgeStrategy`] | Kaul et al. \[10\], Morsi et al. \[14\], Schrefl & Neuhold \[17\] | only the local supertype edge to the source; attributes moved without recursive factoring |
//! | [`DefinerSpecifiedStrategy`] | Abiteboul & Bonner \[1\], Bertino \[6\] | correct state factoring, but applicable methods chosen by the type definer |
//!
//! Every strategy produces a [`StrategyOutcome`]; `audit` (in
//! [`crate::audit`]) replays the paper's invariants against it.

use std::collections::BTreeSet;
use td_core::factor_state::{factor_state, FactorStateOutcome};
use td_core::{compute_applicability, project, ProjectionOptions, SurrogateRegistry};
use td_model::{AttrId, MethodId, ModelError, Schema, TypeId};

/// What a strategy produced.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The derived view type.
    pub derived: TypeId,
    /// Methods the strategy claims are applicable to the view.
    pub claimed_applicable: Vec<MethodId>,
}

/// A derived-type placement strategy.
pub trait DerivationStrategy {
    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// Derives `Π_projection(source)` in `schema` per this strategy's
    /// rules.
    fn derive(
        &self,
        schema: &mut Schema,
        source: TypeId,
        projection: &BTreeSet<AttrId>,
    ) -> Result<StrategyOutcome, String>;
}

/// The paper's full pipeline (ground truth).
#[derive(Debug, Default, Clone, Copy)]
pub struct PaperStrategy;

impl DerivationStrategy for PaperStrategy {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn derive(
        &self,
        schema: &mut Schema,
        source: TypeId,
        projection: &BTreeSet<AttrId>,
    ) -> Result<StrategyOutcome, String> {
        let d = project(schema, source, projection, &ProjectionOptions::fast())
            .map_err(|e| e.to_string())?;
        Ok(StrategyOutcome {
            derived: d.derived,
            claimed_applicable: d.applicability.applicable,
        })
    }
}

/// Fresh unique name for a baseline view type over `source`.
fn view_name(schema: &Schema, source: TypeId, tag: &str) -> String {
    let base = format!("{}_{tag}", schema.type_name(source));
    if schema.type_id(&base).is_err() {
        return base;
    }
    for i in 2.. {
        let cand = format!("{base}#{i}");
        if schema.type_id(&cand).is_err() {
            return cand;
        }
    }
    unreachable!("counter exhausted")
}

/// Copies the projected attributes as *fresh* attributes (new identities,
/// prefixed names) onto `target` — what a strategy that cannot share
/// state must do.
fn copy_attrs(
    schema: &mut Schema,
    target: TypeId,
    projection: &BTreeSet<AttrId>,
) -> Result<(), ModelError> {
    let target_name = schema.type_name(target).to_string();
    for &a in projection {
        let def = schema.attr(a).clone();
        schema.add_attr(format!("{}__{}", target_name, def.name), def.ty, target)?;
    }
    Ok(())
}

/// Heiler & Zdonik-style: the view type is a separate entity — no
/// supertype or subtype edges at all. State must be duplicated and no
/// existing method can apply.
#[derive(Debug, Default, Clone, Copy)]
pub struct StandaloneStrategy;

impl DerivationStrategy for StandaloneStrategy {
    fn name(&self) -> &'static str {
        "standalone"
    }

    fn derive(
        &self,
        schema: &mut Schema,
        source: TypeId,
        projection: &BTreeSet<AttrId>,
    ) -> Result<StrategyOutcome, String> {
        let name = view_name(schema, source, "view");
        let derived = schema.add_type(name, &[]).map_err(|e| e.to_string())?;
        copy_attrs(schema, derived, projection).map_err(|e| e.to_string())?;
        Ok(StrategyOutcome {
            derived,
            claimed_applicable: Vec::new(),
        })
    }
}

/// Kim-style: the view type becomes a direct subtype of the hierarchy
/// roots. Inherits whatever the roots carry (usually the wrong state) and
/// still duplicates the projected attributes.
#[derive(Debug, Default, Clone, Copy)]
pub struct RootPlacementStrategy;

impl DerivationStrategy for RootPlacementStrategy {
    fn name(&self) -> &'static str {
        "root-placement"
    }

    fn derive(
        &self,
        schema: &mut Schema,
        source: TypeId,
        projection: &BTreeSet<AttrId>,
    ) -> Result<StrategyOutcome, String> {
        let roots = schema.roots();
        let name = view_name(schema, source, "rootview");
        let derived = schema.add_type(name, &[]).map_err(|e| e.to_string())?;
        for (i, r) in roots.into_iter().enumerate() {
            if r != derived {
                schema
                    .add_super_with_prec(derived, r, i as i32 + 1)
                    .map_err(|e| e.to_string())?;
            }
        }
        copy_attrs(schema, derived, projection).map_err(|e| e.to_string())?;
        let claimed = schema.methods_applicable_to_type(derived);
        Ok(StrategyOutcome {
            derived,
            claimed_applicable: claimed,
        })
    }
}

/// Local-relationship-only placement: make the view a direct supertype of
/// the source (the right local edge!) and *move* the projected attributes
/// up to it from wherever they live — without the paper's recursive
/// factorization. Siblings that inherited those attributes through other
/// paths silently lose state. Method applicability is claimed by the
/// naive signature-only test (every method applicable to the source).
#[derive(Debug, Default, Clone, Copy)]
pub struct LocalEdgeStrategy;

impl DerivationStrategy for LocalEdgeStrategy {
    fn name(&self) -> &'static str {
        "local-edge"
    }

    fn derive(
        &self,
        schema: &mut Schema,
        source: TypeId,
        projection: &BTreeSet<AttrId>,
    ) -> Result<StrategyOutcome, String> {
        let name = view_name(schema, source, "localview");
        let derived = schema
            .add_surrogate(name, source)
            .map_err(|e| e.to_string())?;
        schema
            .add_super_highest(source, derived)
            .map_err(|e| e.to_string())?;
        for &a in projection {
            schema.move_attr(a, derived).map_err(|e| e.to_string())?;
        }
        let claimed = schema.methods_applicable_to_type(source);
        Ok(StrategyOutcome {
            derived,
            claimed_applicable: claimed,
        })
    }
}

/// How the type definer picks the methods in the definer-specified
/// strategy.
#[derive(Debug, Clone)]
pub enum DefinerChoice {
    /// The common mistake the paper warns about: assume every method
    /// applicable to the source stays applicable ("signature-only").
    SignatureOnly,
    /// An explicit hand-picked list.
    Explicit(Vec<MethodId>),
}

/// Abiteboul/Bonner- and Bertino-style: state is factored correctly (we
/// reuse the paper's `FactorState`), but the *behavior* of the view is
/// whatever the type definer declares — which the paper argues is
/// error-prone. The auditor quantifies exactly how error-prone.
#[derive(Debug, Clone)]
pub struct DefinerSpecifiedStrategy {
    /// The definer's method selection.
    pub choice: DefinerChoice,
}

impl DerivationStrategy for DefinerSpecifiedStrategy {
    fn name(&self) -> &'static str {
        "definer-specified"
    }

    fn derive(
        &self,
        schema: &mut Schema,
        source: TypeId,
        projection: &BTreeSet<AttrId>,
    ) -> Result<StrategyOutcome, String> {
        let mut registry = SurrogateRegistry::new();
        let mut outcome = FactorStateOutcome::default();
        let derived = factor_state(schema, &mut registry, projection, source, &mut outcome)
            .map_err(|e| e.to_string())?;
        let claimed = match &self.choice {
            DefinerChoice::SignatureOnly => schema.methods_applicable_to_type(source),
            DefinerChoice::Explicit(list) => list.clone(),
        };
        Ok(StrategyOutcome {
            derived,
            claimed_applicable: claimed,
        })
    }
}

/// Ground truth for method applicability: the paper's `IsApplicable`,
/// run against the *unmodified* schema.
pub fn ground_truth_applicable(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
) -> Vec<MethodId> {
    compute_applicability(schema, source, projection, false)
        .map(|a| a.applicable)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::ValueType;

    fn chain() -> (Schema, TypeId, BTreeSet<AttrId>) {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        s.add_reader(x, a).unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        (s, b, proj)
    }

    #[test]
    fn paper_strategy_matches_project() {
        let (mut s, b, proj) = chain();
        let out = PaperStrategy.derive(&mut s, b, &proj).unwrap();
        assert_eq!(s.type_name(out.derived), "^B");
        assert_eq!(out.claimed_applicable.len(), 1); // get_x
    }

    #[test]
    fn standalone_makes_island() {
        let (mut s, b, proj) = chain();
        let out = StandaloneStrategy.derive(&mut s, b, &proj).unwrap();
        assert!(s.type_(out.derived).supers().is_empty());
        assert!(!s.is_subtype(b, out.derived));
        // State was duplicated, not shared.
        let x = s.attr_id("x").unwrap();
        assert!(!s.cumulative_attrs(out.derived).contains(&x));
        assert_eq!(s.cumulative_attrs(out.derived).len(), 1);
    }

    #[test]
    fn local_edge_steals_state_from_siblings() {
        // A{x} with two children B and C; local-edge derivation over B
        // moves x onto the view, so C loses it.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[a]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let out = LocalEdgeStrategy.derive(&mut s, b, &proj).unwrap();
        assert!(s.is_subtype(b, out.derived));
        assert!(s.cumulative_attrs(b).contains(&x)); // B keeps it (via view)
        assert!(!s.cumulative_attrs(c).contains(&x)); // C lost it!
    }

    #[test]
    fn definer_specified_uses_factor_state_but_trusts_definer() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let y = s.add_attr("y", ValueType::INT, a).unwrap();
        let (_, get_x) = s.add_reader(x, a).unwrap();
        let (_, get_y) = s.add_reader(y, a).unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let strat = DefinerSpecifiedStrategy {
            choice: DefinerChoice::SignatureOnly,
        };
        let out = strat.derive(&mut s, a, &proj).unwrap();
        // State is correct…
        assert_eq!(s.cumulative_attrs(out.derived), proj);
        // …but the claim includes get_y, which reads unprojected state.
        assert!(out.claimed_applicable.contains(&get_y));
        let truth = ground_truth_applicable(&s, a, &proj);
        assert!(truth.contains(&get_x));
        assert!(!truth.contains(&get_y));
    }
}
