//! Experiment COMP: views over views — pipeline depth scaling and the
//! surrogate-minimization ablation (§7 future work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use td_algebra::Pipeline;
use td_core::{minimize_surrogates, ProjectionOptions};
use td_model::TypeId;
use td_workload::figures;

fn stacked_pipeline(layers: usize) -> Pipeline {
    // Each layer narrows the Figure 3 projection further.
    let all: [&[&str]; 3] = [&["a2", "e2", "h2"], &["e2", "h2"], &["h2"]];
    let mut p = Pipeline::new();
    for attrs in all.iter().take(layers) {
        p = p.project(attrs);
    }
    p
}

fn bench_pipeline_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose/pipeline_depth");
    for layers in [1usize, 2, 3] {
        let pipeline = stacked_pipeline(layers);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &pipeline, |b, p| {
            b.iter(|| {
                let mut s = figures::fig3();
                let a = s.type_id("A").unwrap();
                p.apply(&mut s, a, &ProjectionOptions::fast()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose/minimization");
    // Pre-build the three-layer stacked schema once per iteration batch.
    group.bench_function("minimize_after_3_layers", |b| {
        b.iter_batched(
            || {
                let mut s = figures::fig3();
                let a = s.type_id("A").unwrap();
                let outcomes = stacked_pipeline(3)
                    .apply(&mut s, a, &ProjectionOptions::fast())
                    .unwrap();
                let protected: BTreeSet<TypeId> =
                    outcomes.iter().map(|o| o.result_type()).collect();
                (s, protected)
            },
            |(mut s, protected)| minimize_surrogates(&mut s, &protected).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline_depth, bench_minimization
}
criterion_main!(benches);
