//! Experiment SCALE-D: dispatch cost before vs. after refactoring.
//!
//! The paper's transparency claim implies derivations should not tax the
//! *original* types' method lookup. We measure `most_specific` on the
//! same calls against the pristine and the refactored schema (which has
//! roughly twice the types on the inheritance paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_core::{project_named, ProjectionOptions};
use td_model::{CallArg, Schema};
use td_workload::{chain_schema, figures};

fn bench_fig1_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch/fig1");
    let before = figures::fig1();
    let mut after = figures::fig1();
    project_named(
        &mut after,
        "Employee",
        &["SSN", "date_of_birth", "pay_rate"],
        &ProjectionOptions::fast(),
    )
    .unwrap();

    let run = |schema: &Schema| {
        let employee = schema.type_id("Employee").unwrap();
        let args = [CallArg::Object(employee)];
        for gf_name in ["age", "income", "promote", "get_SSN"] {
            let gf = schema.gf_id(gf_name).unwrap();
            black_box(schema.most_specific(gf, &args).unwrap());
        }
    };
    group.bench_function("before_derivation", |b| b.iter(|| run(&before)));
    group.bench_function("after_derivation", |b| b.iter(|| run(&after)));
    group.finish();
}

fn bench_deep_chain_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch/chain_depth");
    for depth in [16usize, 64, 256] {
        let before = chain_schema(depth);
        let mut after = chain_schema(depth);
        let leaf = format!("T{}", depth - 1);
        project_named(&mut after, &leaf, &["t0_a"], &ProjectionOptions::fast()).unwrap();

        let make_runner = |schema: Schema| {
            let leaf_ty = schema.type_id(&leaf).unwrap();
            let gf = schema.gf_id("get_t0_a").unwrap();
            move || {
                let args = [CallArg::Object(leaf_ty)];
                black_box(schema.most_specific(gf, &args).unwrap());
            }
        };
        let run_before = make_runner(before);
        let run_after = make_runner(after);
        group.bench_with_input(BenchmarkId::new("before", depth), &depth, |b, _| {
            b.iter(&run_before)
        });
        group.bench_with_input(BenchmarkId::new("after", depth), &depth, |b, _| {
            b.iter(&run_after)
        });
    }
    group.finish();
}

fn bench_subtype_index(c: &mut Criterion) {
    // Bulk subtype queries: per-query DFS vs the precomputed bitset index.
    use td_model::SubtypeIndex;
    let mut group = c.benchmark_group("dispatch/subtype_bulk");
    let w = td_bench::random_workload(128, 0x1D);
    let schema = &w.schema;
    let types: Vec<td_model::TypeId> = schema.live_type_ids().collect();
    group.bench_function("naive_dfs", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for &x in &types {
                for &y in &types {
                    count += usize::from(schema.is_subtype(x, y));
                }
            }
            black_box(count)
        })
    });
    group.bench_function("bitset_index", |b| {
        let idx = SubtypeIndex::build(schema);
        b.iter(|| {
            let mut count = 0usize;
            for &x in &types {
                for &y in &types {
                    count += usize::from(idx.is_subtype(x, y));
                }
            }
            black_box(count)
        })
    });
    group.bench_function("bitset_build", |b| {
        b.iter(|| SubtypeIndex::build(black_box(schema)))
    });
    group.finish();
}

/// A depth-`depth` chain where one generic function is overridden at every
/// `every`-th level: dispatching on a deep receiver must linearize a long
/// CPL and rank many applicable methods — the worst case the dispatch
/// cache amortizes.
fn deep_override_schema(depth: usize, every: usize) -> (Schema, td_model::GfId) {
    use td_model::{MethodKind, Specializer};
    let mut s = Schema::new();
    let f = s.add_gf("f", 1, None).unwrap();
    let mut prev: Option<td_model::TypeId> = None;
    for i in 0..depth {
        let supers: Vec<td_model::TypeId> = prev.into_iter().collect();
        let t = s.add_type(format!("T{i}"), &supers).unwrap();
        if i % every == 0 {
            s.add_method(
                f,
                format!("f_{i}"),
                vec![Specializer::Type(t)],
                MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        }
        prev = Some(t);
    }
    (s, f)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    // Experiment CACHE-W: the dispatch acceleration layer. One "sweep" is a
    // fixed call set over two schemas: a random workload touching every
    // generic function, and a deep-override chain whose dispatches are
    // CPL-heavy. The cold variant clears the caches before each sweep
    // (every CPL walk and ranking recomputed); the warm variant reuses the
    // memoized tables, as the I2 invariant replay does after its first
    // tuple.
    let mut group = c.benchmark_group("dispatch/cold_vs_warm");

    let w = td_bench::random_workload(96, 0x5EED);
    let random = &w.schema;
    let types: Vec<td_model::TypeId> = random.live_type_ids().collect();
    let mut random_calls: Vec<(td_model::GfId, Vec<CallArg>)> = Vec::new();
    for gf in random.gf_ids() {
        let arity = random.gf(gf).arity;
        if arity == 0 {
            continue;
        }
        for k in 0..4usize {
            let args: Vec<CallArg> = (0..arity)
                .map(|i| CallArg::Object(types[(k * 31 + i * 7) % types.len()]))
                .collect();
            random_calls.push((gf, args));
        }
    }

    let (chain, f) = deep_override_schema(128, 8);
    let chain_calls: Vec<(td_model::GfId, Vec<CallArg>)> = (0..128)
        .step_by(4)
        .map(|i| {
            let t = chain.type_id(&format!("T{i}")).unwrap();
            (f, vec![CallArg::Object(t)])
        })
        .collect();

    let sweep = |schema: &Schema, calls: &[(td_model::GfId, Vec<CallArg>)]| {
        for (gf, args) in calls {
            black_box(schema.most_specific(*gf, args).unwrap());
        }
    };
    group.bench_function("cold", |b| {
        b.iter(|| {
            random.clear_dispatch_cache();
            chain.clear_dispatch_cache();
            sweep(random, &random_calls);
            sweep(&chain, &chain_calls);
        })
    });
    // Warm the caches once, then measure steady-state lookups.
    sweep(random, &random_calls);
    sweep(&chain, &chain_calls);
    group.bench_function("warm", |b| {
        b.iter(|| {
            sweep(random, &random_calls);
            sweep(&chain, &chain_calls);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig1_dispatch, bench_deep_chain_dispatch, bench_subtype_index,
        bench_cold_vs_warm
}
criterion_main!(benches);
