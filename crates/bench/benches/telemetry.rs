//! Experiment TELEM: the cost of carrying instrumentation.
//!
//! The pipeline is now threaded with `td_telemetry` spans. Disabled (the
//! default), each site costs one relaxed atomic load; this group measures
//! that claim end-to-end: a full projection with telemetry off vs. on,
//! plus the microcosts of the disabled and enabled span primitives. The
//! gated `ratio_telemetry_overhead` metric in `repro --json` holds the
//! disabled-mode overhead under 5% on the call_heavy workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use td_bench::call_heavy_workload;
use td_core::{project, ProjectionOptions};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/overhead");

    let w = call_heavy_workload(16, 40, 0xC0DE);
    let (schema, source, projection) = (w.schema, w.source, w.projection);

    td_telemetry::set_enabled(false);
    group.bench_function("project_disabled", |b| {
        b.iter(|| {
            let mut s = schema.clone();
            black_box(project(&mut s, source, &projection, &ProjectionOptions::fast()).unwrap())
        })
    });

    td_telemetry::set_enabled(true);
    group.bench_function("project_enabled", |b| {
        b.iter(|| {
            let mut s = schema.clone();
            let d = project(&mut s, source, &projection, &ProjectionOptions::fast()).unwrap();
            // Keep the ring from saturating (and from growing the run's
            // memory): spans are drained as they would be in the CLI.
            black_box(td_telemetry::drain().len());
            black_box(d)
        })
    });
    td_telemetry::set_enabled(false);
    let _ = td_telemetry::drain();

    group.bench_function("disabled_span", |b| {
        b.iter(|| {
            let _g = black_box(td_telemetry::span("bench", "noop"));
        })
    });

    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
