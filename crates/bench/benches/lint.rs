//! Experiment LINT-C: cold vs. warm lint analysis.
//!
//! The TDL lints run a full applicability pass plus dispatch-ambiguity
//! unification per schema, so `td_core::lint` caches its reports in the
//! generational dispatch cache. This group measures what that buys: a
//! cold run (cache cleared every iteration) against a warm run answering
//! from the resident report, on the paper's Figure 3 and a seeded
//! mid-size random schema.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use td_core::lint;
use td_model::Schema;
use td_workload::{figures, random_schema, GenParams};

fn request(
    s: &Schema,
    ty: &str,
    attrs: &[&str],
) -> (
    td_model::TypeId,
    std::collections::BTreeSet<td_model::AttrId>,
) {
    let source = s.type_id(ty).unwrap();
    let projection = attrs.iter().map(|a| s.attr_id(a).unwrap()).collect();
    (source, projection)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lint/cold_vs_warm");

    let fig3 = figures::fig3_with_z1();
    let (source, projection) = request(&fig3, "A", &["a2", "e2", "h2"]);
    group.bench_function("fig3_cold", |b| {
        b.iter(|| {
            fig3.clear_dispatch_cache();
            black_box(lint(&fig3, Some((source, &projection))))
        })
    });
    lint(&fig3, Some((source, &projection)));
    group.bench_function("fig3_warm", |b| {
        b.iter(|| black_box(lint(&fig3, Some((source, &projection)))))
    });

    let random = random_schema(&GenParams::default());
    group.bench_function("random24_cold", |b| {
        b.iter(|| {
            random.clear_dispatch_cache();
            black_box(lint(&random, None))
        })
    });
    lint(&random, None);
    group.bench_function("random24_warm", |b| {
        b.iter(|| black_box(lint(&random, None)))
    });

    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
