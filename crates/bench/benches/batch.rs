//! Experiment BATCH-P: the parallel batch derivation engine, 1 vs N
//! worker threads over the same 64-request batch.
//!
//! Each sample runs the full batch — every request forks the shared
//! copy-on-write snapshot and performs a complete derivation (projection
//! → applicability → factoring → invariants off, `ProjectionOptions::
//! fast()`), so the measured unit is end-to-end batch wall-clock. The
//! 1-thread point is the sequential baseline the determinism tests
//! compare against; the speedup at N > 1 is bounded by the host's core
//! count (a 1-CPU container shows ~1× across the board).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_core::ProjectionOptions;
use td_driver::{BatchDeriver, BatchRequest};
use td_workload::batch_requests;

fn bench_batch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive/batch_1_vs_N_threads");
    group.sample_size(10);

    let w = td_bench::random_workload(48, 0xBA7C);
    let requests: Vec<BatchRequest> = batch_requests(&w.schema, 64, 0.5, 0xBA7C)
        .into_iter()
        .map(BatchRequest::from)
        .collect();
    let base = BatchDeriver::new(&w.schema).options(ProjectionOptions::fast());
    base.warm();

    for threads in [1usize, 2, 4, 8] {
        let deriver = base.clone().threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(deriver.run(&requests)))
        });
    }
    group.finish();
}

fn bench_batch_warm_vs_cold(c: &mut Criterion) {
    // The same batch with and without a pre-warmed shared dispatch cache:
    // isolates how much of the per-request cost the snapshot's shared
    // cache amortizes across the fleet of forks.
    let mut group = c.benchmark_group("derive/batch_warm_vs_cold");
    group.sample_size(10);

    let w = td_bench::random_workload(48, 0xC01D);
    let requests: Vec<BatchRequest> = batch_requests(&w.schema, 64, 0.5, 0xC01D)
        .into_iter()
        .map(BatchRequest::from)
        .collect();

    group.bench_function("cold_snapshot", |b| {
        b.iter(|| {
            let deriver = BatchDeriver::new(&w.schema).options(ProjectionOptions::fast());
            black_box(deriver.run(&requests))
        })
    });
    group.bench_function("warm_snapshot", |b| {
        let deriver = BatchDeriver::new(&w.schema).options(ProjectionOptions::fast());
        deriver.warm();
        b.iter(|| black_box(deriver.run(&requests)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_batch_threads, bench_batch_warm_vs_cold
}
criterion_main!(benches);
