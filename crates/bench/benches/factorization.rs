//! Experiment SCALE-F: `FactorState`/`Augment` and full-pipeline scaling
//! over hierarchy depth and multiple-inheritance density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::{chain_workload, ladder_workload, random_workload, Workload};
use td_core::factor_state::{factor_state, FactorStateOutcome};
use td_core::{project, ProjectionOptions, SurrogateRegistry};

fn run_full(w: &Workload) {
    let mut schema = w.schema.clone();
    project(
        &mut schema,
        w.source,
        &w.projection,
        &ProjectionOptions::fast(),
    )
    .unwrap();
}

fn run_factor_state_only(w: &Workload) {
    let mut schema = w.schema.clone();
    let mut registry = SurrogateRegistry::new();
    let mut outcome = FactorStateOutcome::default();
    factor_state(
        &mut schema,
        &mut registry,
        &w.projection,
        w.source,
        &mut outcome,
    )
    .unwrap();
}

fn bench_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization/chain_depth");
    for depth in [8usize, 32, 128, 512] {
        let w = chain_workload(depth);
        group.bench_with_input(BenchmarkId::new("full_projection", depth), &w, |b, w| {
            b.iter(|| run_full(w))
        });
        group.bench_with_input(BenchmarkId::new("factor_state_only", depth), &w, |b, w| {
            b.iter(|| run_factor_state_only(w))
        });
    }
    group.finish();
}

fn bench_ladder_height(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization/ladder_height");
    for height in [8usize, 24, 64] {
        let w = ladder_workload(height);
        group.bench_with_input(BenchmarkId::from_parameter(height), &w, |b, w| {
            b.iter(|| run_full(w))
        });
    }
    group.finish();
}

fn bench_random_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization/random_schema_types");
    for n in [16usize, 48, 96, 192] {
        let w = random_workload(n, 0xC0FFEE + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| run_full(w))
        });
    }
    group.finish();
}

fn bench_project_unproject_cycle(c: &mut Criterion) {
    // View lifecycle: derive + drop, the round trip a view server pays.
    use td_core::unproject;
    let mut group = c.benchmark_group("factorization/project_unproject");
    for depth in [8usize, 64] {
        let w = chain_workload(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &w, |b, w| {
            b.iter(|| {
                let mut schema = w.schema.clone();
                let d = project(
                    &mut schema,
                    w.source,
                    &w.projection,
                    &ProjectionOptions::fast(),
                )
                .unwrap();
                unproject(&mut schema, &d).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_invariant_checking_overhead(c: &mut Criterion) {
    // The ablation behind ProjectionOptions::fast(): how much the I1–I5
    // sweep costs relative to the derivation itself.
    let mut group = c.benchmark_group("factorization/invariant_overhead");
    let w = random_workload(48, 0xAB);
    group.bench_function("fast", |b| {
        b.iter(|| {
            let mut schema = w.schema.clone();
            project(
                &mut schema,
                w.source,
                &w.projection,
                &ProjectionOptions::fast(),
            )
            .unwrap()
        })
    });
    group.bench_function("checked", |b| {
        b.iter(|| {
            let mut schema = w.schema.clone();
            project(
                &mut schema,
                w.source,
                &w.projection,
                &ProjectionOptions::default(),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chain_depth, bench_ladder_height, bench_random_size, bench_project_unproject_cycle, bench_invariant_checking_overhead
}
criterion_main!(benches);
