//! Experiments FIG2 / EX1 / FIG4 / EX3 / EX4–FIG5: end-to-end cost of
//! regenerating each of the paper's artifacts, with the outcome asserted
//! inside the measured closure so a regression in *correctness* fails the
//! bench run, not just the tests.

use criterion::{criterion_group, criterion_main, Criterion};
use td_core::{project_named, ProjectionOptions};
use td_workload::figures;

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("figures/fig2_person_employee", |b| {
        b.iter(|| {
            let mut s = figures::fig1();
            let d = project_named(
                &mut s,
                "Employee",
                &["SSN", "date_of_birth", "pay_rate"],
                &ProjectionOptions::fast(),
            )
            .unwrap();
            assert_eq!(d.applicable().len(), 8);
            d
        })
    });
}

fn bench_ex1_fig4(c: &mut Criterion) {
    c.bench_function("figures/ex1_fig4_projection_over_A", |b| {
        b.iter(|| {
            let mut s = figures::fig3();
            let d = project_named(
                &mut s,
                "A",
                figures::FIG4_PROJECTION,
                &ProjectionOptions::fast(),
            )
            .unwrap();
            assert_eq!(d.applicable().len(), figures::EX1_APPLICABLE.len());
            assert_eq!(
                d.factor_surrogates.len(),
                figures::FIG4_SURROGATE_SOURCES.len()
            );
            d
        })
    });
}

fn bench_ex4_fig5(c: &mut Criterion) {
    c.bench_function("figures/ex4_fig5_with_z1", |b| {
        b.iter(|| {
            let mut s = figures::fig3_with_z1();
            let d = project_named(
                &mut s,
                "A",
                figures::FIG4_PROJECTION,
                &ProjectionOptions::fast(),
            )
            .unwrap();
            assert_eq!(
                d.augment_surrogates.len(),
                figures::FIG5_AUGMENT_SOURCES.len()
            );
            d
        })
    });
}

fn bench_fig_with_invariants(c: &mut Criterion) {
    // The same derivation with the full I1–I5 sweep, as the repro harness
    // runs it.
    c.bench_function("figures/ex1_fig4_with_invariant_sweep", |b| {
        b.iter(|| {
            let mut s = figures::fig3();
            let d = project_named(
                &mut s,
                "A",
                figures::FIG4_PROJECTION,
                &ProjectionOptions::default(),
            )
            .unwrap();
            assert!(d.invariants_ok());
            d
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig2, bench_ex1_fig4, bench_ex4_fig5, bench_fig_with_invariants
}
criterion_main!(benches);
