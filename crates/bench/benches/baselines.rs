//! Experiment BASE: derivation cost of the paper's full pipeline vs. the
//! related-work placement strategies (correctness is compared by the
//! `repro` binary's audit table; here we measure what the extra work
//! costs in time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_baselines::{
    DerivationStrategy, LocalEdgeStrategy, PaperStrategy, RootPlacementStrategy, StandaloneStrategy,
};
use td_bench::random_workload;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/derive_time");
    let w = random_workload(48, 0xBA5E);
    let strategies: Vec<(&str, &dyn DerivationStrategy)> = vec![
        ("paper", &PaperStrategy),
        ("standalone", &StandaloneStrategy),
        ("root_placement", &RootPlacementStrategy),
        ("local_edge", &LocalEdgeStrategy),
    ];
    for (name, strategy) in strategies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| {
                let mut schema = w.schema.clone();
                strategy
                    .derive(&mut schema, w.source, &w.projection)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_paper_scaling_vs_local_edge(c: &mut Criterion) {
    // How the full pipeline's cost grows relative to the (incorrect)
    // O(local) strategy as schemas grow.
    let mut group = c.benchmark_group("baselines/scaling");
    for n in [24usize, 96, 192] {
        let w = random_workload(n, 0x5EED + n as u64);
        group.bench_with_input(BenchmarkId::new("paper", n), &w, |b, w| {
            b.iter(|| {
                let mut schema = w.schema.clone();
                PaperStrategy
                    .derive(&mut schema, w.source, &w.projection)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("local_edge", n), &w, |b, w| {
            b.iter(|| {
                let mut schema = w.schema.clone();
                LocalEdgeStrategy
                    .derive(&mut schema, w.source, &w.projection)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_strategies, bench_paper_scaling_vs_local_edge
}
criterion_main!(benches);
