//! Experiment ANALYZE-C: cold vs. warm interprocedural analysis.
//!
//! `td_analyze::analyze` runs the monotone-framework analyses in two
//! cached parts (schema-wide and request-scoped), both resident in the
//! generational dispatch cache. This group measures what the cache buys
//! on the paper's Figure 3 request and on a call-heavy disjunctive
//! schema analyzed at semantic precision — the configuration where the
//! footprint refinement actually runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;
use td_analyze::analyze;
use td_model::AnalysisPrecision;
use td_workload::{disjunctive_schema, figures};

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze/cold_vs_warm");

    let fig3 = figures::fig3_with_z1();
    let source = fig3.type_id("A").unwrap();
    let projection: BTreeSet<_> = ["a2", "e2", "h2"]
        .iter()
        .map(|a| fig3.attr_id(a).unwrap())
        .collect();
    group.bench_function("fig3_cold", |b| {
        b.iter(|| {
            fig3.clear_dispatch_cache();
            black_box(analyze(
                &fig3,
                Some((source, &projection)),
                AnalysisPrecision::Syntactic,
            ))
        })
    });
    analyze(
        &fig3,
        Some((source, &projection)),
        AnalysisPrecision::Syntactic,
    );
    group.bench_function("fig3_warm", |b| {
        b.iter(|| {
            black_box(analyze(
                &fig3,
                Some((source, &projection)),
                AnalysisPrecision::Syntactic,
            ))
        })
    });

    let disjunctive = disjunctive_schema(12, 4, 6);
    let source = disjunctive.type_id("B").unwrap();
    let projection: BTreeSet<_> = [disjunctive.attr_id("d0_x").unwrap()].into_iter().collect();
    group.bench_function("disjunctive_semantic_cold", |b| {
        b.iter(|| {
            disjunctive.clear_dispatch_cache();
            black_box(analyze(
                &disjunctive,
                Some((source, &projection)),
                AnalysisPrecision::Semantic,
            ))
        })
    });
    analyze(
        &disjunctive,
        Some((source, &projection)),
        AnalysisPrecision::Semantic,
    );
    group.bench_function("disjunctive_semantic_warm", |b| {
        b.iter(|| {
            black_box(analyze(
                &disjunctive,
                Some((source, &projection)),
                AnalysisPrecision::Semantic,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
