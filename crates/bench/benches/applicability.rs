//! Experiment SCALE-A: `IsApplicable` scaling.
//!
//! Rows: call-graph depth (linear chains), cycle ring length, and random
//! schemas of growing method counts — plus the stack algorithm vs. the
//! fixpoint oracle, whose gap shows what the paper's lazy evaluation buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use td_bench::{call_chain_workload, call_cycle_workload, call_heavy_workload, random_workload};
use td_core::{applicability_fixpoint, compute_applicability, compute_applicability_indexed};

fn bench_call_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("isapplicable/call_chain_depth");
    for depth in [10usize, 50, 200, 500] {
        let w = call_chain_workload(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &w, |b, w| {
            b.iter(|| compute_applicability(&w.schema, w.source, &w.projection, false).unwrap())
        });
    }
    group.finish();
}

fn bench_cycle_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("isapplicable/cycle_length");
    for len in [4usize, 16, 64, 128] {
        let w = call_cycle_workload(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &w, |b, w| {
            b.iter(|| compute_applicability(&w.schema, w.source, &w.projection, false).unwrap())
        });
    }
    group.finish();
}

fn bench_random_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("isapplicable/random_schema_types");
    for n in [16usize, 48, 96, 192] {
        let w = random_workload(n, 0xBEEF + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| compute_applicability(&w.schema, w.source, &w.projection, false).unwrap())
        });
    }
    group.finish();
}

fn bench_stack_vs_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("isapplicable/stack_vs_oracle");
    let w = random_workload(96, 0xFACE);
    group.bench_function("stack", |b| {
        b.iter(|| {
            compute_applicability(black_box(&w.schema), w.source, &w.projection, false).unwrap()
        })
    });
    group.bench_function("fixpoint_oracle", |b| {
        b.iter(|| applicability_fixpoint(black_box(&w.schema), w.source, &w.projection).unwrap())
    });
    group.finish();
}

fn bench_indexed_vs_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("isapplicable/indexed_vs_stack");
    for (name, w) in [
        ("call_chain_500", call_chain_workload(500)),
        ("call_heavy", call_heavy_workload(16, 40, 0xC0DE)),
    ] {
        // Warm the index once so the indexed rows measure the amortized
        // per-projection cost (the batch steady state), not the build.
        w.schema.cached_applicability_index(w.source).unwrap();
        group.bench_function(format!("{name}/indexed"), |b| {
            b.iter(|| {
                compute_applicability_indexed(black_box(&w.schema), w.source, &w.projection, false)
                    .unwrap()
            })
        });
        group.bench_function(format!("{name}/stack"), |b| {
            b.iter(|| {
                compute_applicability(black_box(&w.schema), w.source, &w.projection, false).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_index_warm_vs_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("isapplicable/index_warm_vs_cold");
    let w = call_heavy_workload(16, 40, 0xC0DE);
    w.schema.cached_applicability_index(w.source).unwrap();
    group.bench_function("warm", |b| {
        b.iter(|| {
            compute_applicability_indexed(black_box(&w.schema), w.source, &w.projection, false)
                .unwrap()
        })
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            // Invalidate so every iteration pays the full condensation
            // build — the first-request cost a batch amortizes away.
            w.schema.clear_dispatch_cache();
            compute_applicability_indexed(black_box(&w.schema), w.source, &w.projection, false)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_call_chain_depth, bench_cycle_length, bench_random_methods,
        bench_stack_vs_oracle, bench_indexed_vs_stack, bench_index_warm_vs_cold
}
criterion_main!(benches);
