//! The machine-readable benchmark report and the CI regression gate.
//!
//! `repro --json` serializes a [`BenchReport`]; the committed
//! `BENCH_baseline.json` at the repository root is one of these, and the
//! `bench_diff` binary [`compare`]s a fresh report against it in the
//! `bench-gate` CI job.
//!
//! The container has no crates registry, so (de)serialization is
//! hand-rolled for exactly the shape we emit — a flat object with an
//! `experiments` array and a `metrics` map — rather than stubbing all of
//! serde. Parsing accepts any JSON value but the extractor only reads
//! that shape.
//!
//! ## Gating rules
//!
//! * every baseline **experiment** must exist in the current report and
//!   have `"ok": true` — a reproduction row going red is always a
//!   failure, whatever the timings say;
//! * a **metric** whose name starts with `ratio_` is dimensionless
//!   (time/time on the same machine in the same process) and must stay
//!   within ± [`DEFAULT_THRESHOLD`] of the baseline value — ratios
//!   transfer across machines, which is what lets a baseline recorded in
//!   one container gate runs on another;
//! * any other metric (`time_*`, counts) is informational: recorded for
//!   trend archaeology in the workflow artifacts, never gated.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Relative tolerance for gated `ratio_*` metrics (±30%).
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// A machine-readable benchmark/reproduction report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// `(experiment id, matched-the-paper)` rows, in run order.
    pub experiments: Vec<(String, bool)>,
    /// Named scalar metrics. `ratio_*` names are gated in CI.
    pub metrics: BTreeMap<String, f64>,
}

impl BenchReport {
    /// Serializes to the canonical JSON shape (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiments\": [\n");
        for (i, (id, ok)) in self.experiments.iter().enumerate() {
            let comma = if i + 1 < self.experiments.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    {{\"id\": {}, \"ok\": {ok}}}{comma}", quote(id));
        }
        out.push_str("  ],\n  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(out, "    {}: {value}{comma}", quote(name));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    pub fn parse(src: &str) -> Result<BenchReport, String> {
        let value = Json::parse(src)?;
        let mut report = BenchReport::default();
        let top = value.as_object().ok_or("top level is not an object")?;
        if let Some(experiments) = top.get("experiments") {
            for row in experiments
                .as_array()
                .ok_or("`experiments` is not an array")?
            {
                let row = row.as_object().ok_or("experiment row is not an object")?;
                let id = row
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("experiment row without string `id`")?;
                let ok = row
                    .get("ok")
                    .and_then(Json::as_bool)
                    .ok_or("experiment row without boolean `ok`")?;
                report.experiments.push((id.to_string(), ok));
            }
        }
        if let Some(metrics) = top.get("metrics") {
            for (name, value) in metrics.as_object().ok_or("`metrics` is not an object")? {
                let value = value
                    .as_f64()
                    .ok_or_else(|| format!("metric `{name}` is not a number"))?;
                report.metrics.insert(name.clone(), value);
            }
        }
        Ok(report)
    }

    /// True if the metric participates in the CI gate.
    pub fn is_gated(name: &str) -> bool {
        name.starts_with("ratio_")
    }
}

/// Compares `current` against `baseline` under the gating rules; returns
/// the list of human-readable failures (empty = gate passes).
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let current_experiments: BTreeMap<&str, bool> = current
        .experiments
        .iter()
        .map(|(id, ok)| (id.as_str(), *ok))
        .collect();
    for (id, _) in &baseline.experiments {
        match current_experiments.get(id.as_str()) {
            None => failures.push(format!("experiment `{id}` missing from current report")),
            Some(false) => failures.push(format!("experiment `{id}` no longer matches the paper")),
            Some(true) => {}
        }
    }
    for (name, &base) in baseline
        .metrics
        .iter()
        .filter(|(n, _)| BenchReport::is_gated(n))
    {
        match current.metrics.get(name) {
            None => failures.push(format!("gated metric `{name}` missing from current report")),
            Some(&cur) => {
                // Relative to the baseline magnitude; a zero baseline
                // gates on absolute drift instead.
                let scale = base.abs().max(1e-12);
                let drift = (cur - base).abs() / scale;
                if !drift.is_finite() || drift > threshold {
                    failures.push(format!(
                        "metric `{name}` drifted {:+.1}% (baseline {base:.4}, current {cur:.4}, \
                         allowed ±{:.0}%)",
                        (cur - base) / scale * 100.0,
                        threshold * 100.0
                    ));
                }
            }
        }
    }
    failures
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value, sufficient for the report shape.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            experiments: vec![("FIG1 schema".into(), true), ("EX1".into(), true)],
            metrics: [
                ("ratio_scale_a".to_string(), 30.0),
                ("time_repro_s".to_string(), 0.8),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn json_roundtrips() {
        let report = sample();
        let parsed = BenchReport::parse(&report.to_json()).unwrap();
        assert_eq!(report, parsed);
    }

    #[test]
    fn parser_handles_escapes_and_whitespace() {
        let src = r#"
            { "experiments": [ {"id": "a \"b\"\nc", "ok": false} ],
              "metrics": { "ratio_x": -1.5e2 } }
        "#;
        let r = BenchReport::parse(src).unwrap();
        assert_eq!(r.experiments, vec![("a \"b\"\nc".to_string(), false)]);
        assert_eq!(r.metrics["ratio_x"], -150.0);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(BenchReport::parse("").is_err());
        assert!(BenchReport::parse("{,}").is_err());
        assert!(BenchReport::parse("{} trailing").is_err());
        assert!(BenchReport::parse(r#"{"metrics": {"x": "nan"}}"#).is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let report = sample();
        assert!(compare(&report, &report, DEFAULT_THRESHOLD).is_empty());
    }

    #[test]
    fn drift_and_regressions_fail_the_gate() {
        let baseline = sample();
        let mut current = sample();
        // 50% drift on a gated ratio fails…
        current.metrics.insert("ratio_scale_a".into(), 45.0);
        let failures = compare(&baseline, &current, DEFAULT_THRESHOLD);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("ratio_scale_a"));
        // …but the same drift on an informational metric does not.
        let mut current = sample();
        current.metrics.insert("time_repro_s".into(), 100.0);
        assert!(compare(&baseline, &current, DEFAULT_THRESHOLD).is_empty());
        // 20% drift is inside the default ±30% envelope.
        let mut current = sample();
        current.metrics.insert("ratio_scale_a".into(), 36.0);
        assert!(compare(&baseline, &current, DEFAULT_THRESHOLD).is_empty());
        // A red experiment or a vanished one fails.
        let mut current = sample();
        current.experiments[1].1 = false;
        assert_eq!(compare(&baseline, &current, DEFAULT_THRESHOLD).len(), 1);
        let mut current = sample();
        current.experiments.pop();
        assert_eq!(compare(&baseline, &current, DEFAULT_THRESHOLD).len(), 1);
        // A missing gated metric fails.
        let mut current = sample();
        current.metrics.remove("ratio_scale_a");
        assert_eq!(compare(&baseline, &current, DEFAULT_THRESHOLD).len(), 1);
    }
}
