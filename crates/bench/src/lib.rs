//! # td-bench — shared helpers for the benchmark and reproduction harness
//!
//! The Criterion benches (one per experiment row in `EXPERIMENTS.md`) and
//! the `repro` binary both need the same workload constructions; they live
//! here so the two stay in sync.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod report;

use std::collections::BTreeSet;
use td_model::{AttrId, Schema, TypeId};
use td_workload::{deepest_type, random_projection, random_schema, GenParams};

/// A ready-to-project workload: schema + source + projection list.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The schema.
    pub schema: Schema,
    /// Projection source.
    pub source: TypeId,
    /// Projection list.
    pub projection: BTreeSet<AttrId>,
}

/// A random workload of roughly `n_types` types with methods, seeded.
pub fn random_workload(n_types: usize, seed: u64) -> Workload {
    let schema = random_schema(&GenParams {
        n_types,
        n_gfs: (n_types / 2).max(4),
        seed,
        ..GenParams::default()
    });
    let source = deepest_type(&schema);
    let projection = random_projection(&schema, source, 0.5, seed ^ 0xABCD);
    Workload {
        schema,
        source,
        projection,
    }
}

/// A linear-chain workload projecting the root attribute from the leaf.
pub fn chain_workload(depth: usize) -> Workload {
    let schema = td_workload::chain_schema(depth);
    let source = schema.type_id(&format!("T{}", depth - 1)).expect("leaf");
    let projection = [schema.attr_id("t0_a").expect("root attr")]
        .into_iter()
        .collect();
    Workload {
        schema,
        source,
        projection,
    }
}

/// A multiple-inheritance ladder workload projecting half the attributes.
pub fn ladder_workload(height: usize) -> Workload {
    let schema = td_workload::ladder_schema(height);
    let source = schema.type_id(&format!("L{}", height - 1)).expect("top");
    let projection: BTreeSet<AttrId> = (0..height)
        .step_by(2)
        .map(|i| schema.attr_id(&format!("l{i}_a")).expect("attr"))
        .collect();
    Workload {
        schema,
        source,
        projection,
    }
}

/// A call-chain workload of the given depth (one type, linear call graph).
pub fn call_chain_workload(depth: usize) -> Workload {
    let schema = td_workload::call_chain_schema(depth);
    let source = schema.type_id("A").expect("A");
    let projection = [schema.attr_id("x").expect("x")].into_iter().collect();
    Workload {
        schema,
        source,
        projection,
    }
}

/// A call-heavy workload: deep chains, overlapping cycle rings and
/// fan-out callers on one type, projecting half the chain attributes.
/// This is the condensation index's best-case stressor (every call site
/// is single-candidate, so nothing falls back).
pub fn call_heavy_workload(chains: usize, depth: usize, seed: u64) -> Workload {
    let schema = td_workload::call_heavy_schema(chains, depth, 3, 8, seed);
    let source = schema.type_id("A").expect("A");
    let projection: BTreeSet<AttrId> = (0..chains)
        .step_by(2)
        .map(|i| schema.attr_id(&format!("c{i}_x")).expect("chain attr"))
        .collect();
    Workload {
        schema,
        source,
        projection,
    }
}

/// A call-cycle workload of the given ring length.
pub fn call_cycle_workload(len: usize) -> Workload {
    let schema = td_workload::call_cycle_schema(len);
    let source = schema.type_id("A").expect("A");
    let projection = [schema.attr_id("x").expect("x")].into_iter().collect();
    Workload {
        schema,
        source,
        projection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{project, ProjectionOptions};

    #[test]
    fn workloads_project_cleanly() {
        for w in [
            random_workload(20, 7),
            chain_workload(16),
            ladder_workload(12),
            call_chain_workload(32),
            call_cycle_workload(8),
            call_heavy_workload(6, 12, 42),
        ] {
            let mut schema = w.schema.clone();
            let d = project(
                &mut schema,
                w.source,
                &w.projection,
                &ProjectionOptions::default(),
            )
            .expect("workload projects");
            assert!(d.invariants_ok(), "workload violates invariants");
        }
    }
}
