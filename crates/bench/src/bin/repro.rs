//! The reproduction harness: regenerates every figure and worked example
//! in the paper, checks each against the outcome the paper states, and
//! prints the result table `EXPERIMENTS.md` records — plus the synthetic
//! scaling/audit/ablation experiments (the paper has no performance
//! evaluation of its own; these characterize the implementation).
//!
//! ```sh
//! cargo run -p td-bench --release --bin repro
//! cargo run -p td-bench --release --bin repro -- --json BENCH_current.json
//! ```
//!
//! With `--json <path>` the run additionally writes a machine-readable
//! [`BenchReport`] that the `bench_diff` binary compares against the
//! committed `BENCH_baseline.json` in CI (see `crates/bench/src/report.rs`
//! for the gating rules).

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use td_algebra::{count_empty_surrogates, minimize_pipeline_surrogates, Pipeline};
use td_baselines::{
    audit_all, DefinerChoice, DefinerSpecifiedStrategy, DerivationStrategy, LocalEdgeStrategy,
    PaperStrategy, RootPlacementStrategy, StandaloneStrategy,
};
use td_bench::report::BenchReport;
use td_bench::{
    call_chain_workload, call_heavy_workload, chain_workload, random_workload, Workload,
};
use td_core::{
    compute_applicability, compute_applicability_indexed, project_named, ProjectionOptions,
    TraceEvent,
};
use td_driver::{BatchDeriver, BatchRequest};
use td_model::{CallArg, Schema, TypeId};
use td_workload::figures;

struct Report {
    rows: Vec<(String, String, String, bool)>,
    metrics: BTreeMap<String, f64>,
}

impl Report {
    fn new() -> Self {
        Report {
            rows: Vec::new(),
            metrics: BTreeMap::new(),
        }
    }

    fn row(
        &mut self,
        id: &str,
        expected: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) {
        self.rows
            .push((id.to_string(), expected.into(), measured.into(), ok));
    }

    /// Records a scalar for the JSON report. `ratio_*` names are gated in
    /// CI; anything else is informational (see `td_bench::report`).
    fn metric(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    fn to_bench_report(&self) -> BenchReport {
        BenchReport {
            experiments: self
                .rows
                .iter()
                .map(|(id, _, _, ok)| (id.clone(), *ok))
                .collect(),
            metrics: self.metrics.clone(),
        }
    }

    fn print(&self) {
        println!("| experiment | paper says | measured | status |");
        println!("|---|---|---|---|");
        for (id, expected, measured, ok) in &self.rows {
            println!(
                "| {id} | {expected} | {measured} | {} |",
                if *ok { "✅ match" } else { "❌ MISMATCH" }
            );
        }
        let failures = self.rows.iter().filter(|r| !r.3).count();
        println!(
            "\n{} experiments, {} match, {} mismatch",
            self.rows.len(),
            self.rows.len() - failures,
            failures
        );
    }
}

fn names(s: &Schema, ms: &[td_model::MethodId]) -> BTreeSet<String> {
    ms.iter().map(|&m| s.method_label(m).to_string()).collect()
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("usage: repro [--json <out.json>]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`; usage: repro [--json <out.json>]");
                std::process::exit(2);
            }
        }
    }

    let started = Instant::now();
    let mut report = Report::new();

    fig1_and_fig3(&mut report);
    fig2(&mut report);
    ex1(&mut report);
    fig4(&mut report);
    ex3(&mut report);
    ex4_fig5(&mut report);
    scale_experiments(&mut report);
    snapshot_experiments(&mut report);
    index_experiment(&mut report);
    batch_experiment(&mut report);
    delta_experiment(&mut report);
    analyze_experiment(&mut report);
    serve_experiment(&mut report);
    telemetry_experiment(&mut report);
    observability_experiment(&mut report);
    baseline_audit(&mut report);
    compose_ablation(&mut report);
    deviation_ablation(&mut report);

    report.metric("time_repro_total_s", started.elapsed().as_secs_f64());

    println!();
    report.print();

    if let Some(path) = json_path {
        let json = report.to_bench_report().to_json();
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote machine-readable report to {path}");
    }
    if report.rows.iter().any(|r| !r.3) {
        std::process::exit(1);
    }
}

fn fig1_and_fig3(report: &mut Report) {
    let s = figures::fig1();
    let employee = s.type_id("Employee").expect("fig1");
    let ok = s.cumulative_attrs(employee).len() == 5 && s.n_methods() == 13;
    report.row(
        "FIG1 schema",
        "Employee inherits Person's 3 attrs + 2 local; age/income/promote defined",
        format!(
            "{} cumulative attrs, {} methods",
            s.cumulative_attrs(employee).len(),
            s.n_methods()
        ),
        ok,
    );

    let s = figures::fig3();
    let a = s.type_id("A").expect("fig3");
    let ok = s.ancestors(a).len() == 7
        && s.methods_applicable_to_type(a).len() == 13
        && s.render_hierarchy().contains("A {a1, a2} <- C(1) B(2)");
    report.row(
        "FIG3 schema",
        "8-type MI hierarchy; all 13 methods applicable to A",
        format!(
            "{} ancestors of A, {} methods applicable",
            s.ancestors(a).len(),
            s.methods_applicable_to_type(a).len()
        ),
        ok,
    );
}

fn fig2(report: &mut Report) {
    let mut s = figures::fig1();
    let d = project_named(
        &mut s,
        "Employee",
        &["SSN", "date_of_birth", "pay_rate"],
        &ProjectionOptions::default(),
    )
    .expect("fig2 projection");
    let app = names(&s, d.applicable());
    let ok = app.contains("age")
        && app.contains("promote")
        && !app.contains("income")
        && s.render_hierarchy()
            .contains("^Person [surrogate of Person] {SSN, date_of_birth}")
        && s.render_hierarchy()
            .contains("^Employee [surrogate of Employee] {pay_rate} <- ^Person(1)")
        && d.invariants_ok();
    report.row(
        "FIG2 refactor",
        "age+promote survive, income dies; ^Person{SSN,dob}, ^Employee{pay_rate}",
        format!(
            "applicable={:?}, surrogates={}, invariants={}",
            app.iter()
                .filter(|n| !n.starts_with("get_") && !n.starts_with("set_"))
                .collect::<Vec<_>>(),
            d.factor_surrogates.len(),
            d.invariants_ok()
        ),
        ok,
    );
}

fn ex1(report: &mut Report) {
    let mut s = figures::fig3();
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions {
            record_trace: true,
            ..Default::default()
        },
    )
    .expect("ex1 projection");
    let applicable = names(&s, d.applicable());
    let not_applicable = names(&s, d.not_applicable());
    let expected_app: BTreeSet<String> = figures::EX1_APPLICABLE
        .iter()
        .map(|n| n.to_string())
        .collect();
    let expected_not: BTreeSet<String> = figures::EX1_NOT_APPLICABLE
        .iter()
        .map(|n| n.to_string())
        .collect();

    let y1 = s.method_by_label("y1").expect("fig3");
    let x1 = s.method_by_label("x1").expect("fig3");
    let y1_retracted = d.applicability.trace.iter().any(|e| {
        matches!(e, TraceEvent::DependentsRetracted { failed, removed }
                 if *failed == x1 && removed.contains(&y1))
    });

    let ok = applicable == expected_app && not_applicable == expected_not && y1_retracted;
    report.row(
        "EX1 IsApplicable",
        format!(
            "applicable = {:?}; y1 optimistically assumed then retracted",
            figures::EX1_APPLICABLE
        ),
        format!(
            "applicable = {:?}; y1 retracted = {}",
            applicable.iter().collect::<Vec<_>>(),
            y1_retracted
        ),
        ok,
    );

    // Cross-check with the independent fixpoint oracle.
    let s2 = figures::fig3();
    let a = s2.type_id("A").expect("fig3");
    let proj = figures::FIG4_PROJECTION
        .iter()
        .map(|n| s2.attr_id(n).expect("fig3 attr"))
        .collect();
    let oracle = td_core::applicability_fixpoint(&s2, a, &proj).expect("oracle");
    let oracle_names: BTreeSet<String> = oracle
        .iter()
        .map(|&m| s2.method_label(m).to_string())
        .collect();
    report.row(
        "EX1 oracle cross-check",
        "greatest-fixpoint oracle agrees with the stack algorithm",
        format!("oracle = {:?}", oracle_names.iter().collect::<Vec<_>>()),
        oracle_names == expected_app,
    );
}

fn fig4(report: &mut Report) {
    let mut s = figures::fig3();
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions::default(),
    )
    .expect("fig4 projection");
    let sources: BTreeSet<String> = d
        .factor_surrogates
        .iter()
        .map(|&(src, _)| s.type_name(src).to_string())
        .collect();
    let expected: BTreeSet<String> = figures::FIG4_SURROGATE_SOURCES
        .iter()
        .map(|n| n.to_string())
        .collect();
    let moved: Vec<String> = d
        .moved_attrs
        .iter()
        .map(|&(a, from, to)| {
            format!(
                "{}:{}→{}",
                s.attr_name(a),
                s.type_name(from),
                s.type_name(to)
            )
        })
        .collect();
    let render = s.render_hierarchy();
    let wiring_ok = [
        "^A [surrogate of A] {a2} <- ^C(1) ^B(2)",
        "^C [surrogate of C] {} <- ^F(1) ^E(2)",
        "^B [surrogate of B] {} <- ^E(2)",
        "^E [surrogate of E] {e2} <- ^H(2)",
        "^F [surrogate of F] {} <- ^H(1)",
        "^H [surrogate of H] {h2}",
    ]
    .iter()
    .all(|line| render.lines().any(|l| l == *line));
    let ok = sources == expected && wiring_ok && d.invariants_ok();
    report.row(
        "FIG4 factored hierarchy",
        "surrogates for A,B,C,E,F,H (not D,G); a2→^A, e2→^E, h2→^H; paper's wiring",
        format!(
            "surrogates for {:?}; moves {:?}; wiring ok = {wiring_ok}",
            sources, moved
        ),
        ok,
    );
}

fn ex3(report: &mut Report) {
    let mut s = figures::fig3();
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions::default(),
    )
    .expect("ex3 projection");
    let sigs: BTreeSet<String> = d
        .applicable()
        .iter()
        .map(|&m| s.render_signature(m))
        .collect();
    let expected: BTreeSet<String> = figures::EX3_SIGNATURES
        .iter()
        .map(|x| x.to_string())
        .collect();
    report.row(
        "EX3 factored signatures",
        format!("{:?}", figures::EX3_SIGNATURES),
        format!("{:?}", sigs.iter().collect::<Vec<_>>()),
        sigs == expected,
    );
}

fn ex4_fig5(report: &mut Report) {
    let mut s = figures::fig3_with_z1();
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions::default(),
    )
    .expect("ex4 projection");
    let z: BTreeSet<String> = d
        .z_types
        .iter()
        .map(|&t| s.type_name(t).to_string())
        .collect();
    let aug: Vec<String> = d
        .augment_surrogates
        .iter()
        .map(|&(src, _)| s.type_name(src).to_string())
        .collect();
    let z1 = s.method_by_label("z1").expect("z1");
    let sig = s.render_signature(z1);
    let locals: Vec<String> = s
        .method(z1)
        .body()
        .expect("general")
        .locals
        .iter()
        .map(|l| {
            format!(
                "{}: {}",
                l.name,
                match l.ty {
                    td_model::ValueType::Object(t) => s.type_name(t).to_string(),
                    td_model::ValueType::Prim(p) => p.to_string(),
                }
            )
        })
        .collect();
    let ok = z
        == ["D", "G"]
            .iter()
            .map(|x| x.to_string())
            .collect::<BTreeSet<_>>()
        && aug == vec!["G".to_string(), "D".to_string()]
        && sig == "z1(^C, ^B)"
        && locals == vec!["g: ^G".to_string(), "d: ^D".to_string()]
        && d.invariants_ok();
    report.row(
        "EX4/FIG5 augmentation",
        "Z={D,G}; Augment adds ^G then ^D; z1(^C,^B) with g:^G, d:^D",
        format!("Z={:?}; augmented {:?}; {sig} with {:?}", z, aug, locals),
        ok,
    );
}

/// Minimum over `n` runs of `f`, in microseconds. The minimum, not the
/// median: scheduler noise on a shared box is strictly additive, so the
/// smallest sample is the most reproducible estimate of the true cost —
/// which is what lets the CI gate compare ratios of these across runs.
fn time_us<F: FnMut()>(n: usize, mut f: F) -> f64 {
    (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .fold(f64::INFINITY, f64::min)
}

fn scale_experiments(report: &mut Report) {
    // SCALE-A: IsApplicable vs call-graph depth — expect ~linear growth.
    let mut times = Vec::new();
    for depth in [10usize, 100, 1000] {
        let w = call_chain_workload(depth);
        let t = time_us(50, || {
            compute_applicability(&w.schema, w.source, &w.projection, false).unwrap();
        });
        times.push((depth, t));
    }
    let ratio = times[2].1 / times[0].1;
    // Gate on the depth-1000/depth-100 step: the depth-10 denominator is
    // a ~5µs measurement and too noisy to anchor a ±30% threshold.
    report.metric("ratio_scale_a_time_10x_depth", times[2].1 / times[1].1);
    report.metric("time_scale_a_depth1000_us", times[2].1);
    report.row(
        "SCALE-A call-graph depth",
        "near-linear in call-graph size (100× depth ⇒ ≲ ~300× time)",
        format!(
            "{} (100× depth ⇒ {:.0}× time)",
            times
                .iter()
                .map(|(d, t)| format!("depth {d}: {t:.0}µs"))
                .collect::<Vec<_>>()
                .join(", "),
            ratio
        ),
        ratio < 300.0,
    );

    // SCALE-F: full projection vs hierarchy depth.
    let mut times = Vec::new();
    for depth in [8usize, 64, 512] {
        let w = chain_workload(depth);
        let t = time_us(30, || {
            let mut schema = w.schema.clone();
            td_core::project(
                &mut schema,
                w.source,
                &w.projection,
                &ProjectionOptions::fast(),
            )
            .unwrap();
        });
        times.push((depth, t));
    }
    let ratio = times[2].1 / times[0].1;
    // Same anchoring trick as SCALE-A: gate the depth-512/depth-64 step.
    report.metric("ratio_scale_f_time_8x_depth", times[2].1 / times[1].1);
    report.metric("time_scale_f_depth512_us", times[2].1);
    report.row(
        "SCALE-F factorization depth",
        "polynomial, dominated by hierarchy traversals (64× depth ⇒ ≲ ~4096× time)",
        format!(
            "{} (64× depth ⇒ {:.0}× time)",
            times
                .iter()
                .map(|(d, t)| format!("depth {d}: {t:.0}µs"))
                .collect::<Vec<_>>()
                .join(", "),
            ratio
        ),
        ratio < 4096.0,
    );

    // SCALE-D: dispatch before/after a derivation must not diverge.
    let before = figures::fig1();
    let mut after = figures::fig1();
    project_named(
        &mut after,
        "Employee",
        &["SSN", "date_of_birth", "pay_rate"],
        &ProjectionOptions::fast(),
    )
    .expect("derivation");
    let dispatch_time = |schema: &Schema| {
        let employee = schema.type_id("Employee").expect("fig1");
        let age = schema.gf_id("age").expect("fig1");
        time_us(300, || {
            schema
                .most_specific(age, &[CallArg::Object(employee)])
                .unwrap();
        })
    };
    let tb = dispatch_time(&before);
    let ta = dispatch_time(&after);
    report.metric("ratio_dispatch_after_over_before", ta / tb.max(0.001));
    report.metric("time_dispatch_before_us", tb);
    report.metric("time_dispatch_after_us", ta);
    report.row(
        "SCALE-D dispatch transparency",
        "original-type dispatch within ~3× after refactoring (1 extra CPL entry per factored type)",
        format!(
            "before {tb:.2}µs, after {ta:.2}µs ({:.2}×)",
            ta / tb.max(0.001)
        ),
        ta / tb.max(0.001) < 3.0,
    );
}

fn snapshot_experiments(report: &mut Report) {
    // SNAP-L: the binary-snapshot cold start. A process that boots from
    // a `.tds` snapshot must reach the same warm state (schema + CPLs +
    // ranks + dispatch tables + applicability indexes) ≥ 5× faster than
    // one that re-parses the TDL text and re-derives every cache — on a
    // 10k-type schema, where cold starts actually hurt. The gated metric
    // is target attainment, min(speedup, 5)/5, the INDEX-C clamp trick:
    // the raw speedup is two orders of magnitude and swings with parse
    // cost between machines, attainment does not.
    let schema = td_workload::wide_schema(10_000, 0x5EED);
    let text = td_model::schema_to_text(&schema);

    // The cold path, timed once: parse the text, then warm every cache
    // the snapshot would carry. (One run, not min-of-N: it is tens of
    // seconds and strictly additive-noise-dominated at that scale.)
    let t0 = Instant::now();
    let parsed = td_model::parse_schema(&text).expect("10k schema text parses");
    parsed.warm_caches();
    let t_parse = t0.elapsed().as_secs_f64() * 1e6;

    let bytes = td_model::save_snapshot(&parsed, &[]);
    let t_load = time_us(5, || {
        td_model::load_snapshot(&bytes).expect("snapshot loads");
    });
    let (loaded, _) = td_model::load_snapshot(&bytes).expect("snapshot loads");
    let identical = loaded.render_hierarchy() == parsed.render_hierarchy()
        && loaded.render_methods() == parsed.render_methods();
    let warm = loaded.dispatch_cache_stats().index_entries > 0;

    let speedup = t_parse / t_load.max(0.001);
    report.metric("ratio_snapshot_load_vs_parse", (speedup / 5.0).min(1.0));
    report.metric("speedup_snapshot_load_vs_parse", speedup);
    report.metric("time_snapshot_parse_warm_10k_us", t_parse);
    report.metric("time_snapshot_load_10k_us", t_load);
    report.metric("bytes_snapshot_10k", bytes.len() as f64);
    let fig3 = figures::fig3();
    fig3.warm_caches();
    report.metric(
        "bytes_snapshot_fig3",
        td_model::save_snapshot(&fig3, &[]).len() as f64,
    );
    report.row(
        "SNAP-L snapshot cold start",
        "10k-type snapshot load ≥ 5× faster than parse + cache warm; identical schema, warm caches",
        format!(
            "parse+warm {:.0}ms vs load {:.1}ms ({speedup:.0}×); identical = {identical}, \
             warm = {warm}; {} bytes on disk",
            t_parse / 1e3,
            t_load / 1e3,
            bytes.len()
        ),
        identical && warm && speedup >= 5.0,
    );

    // PROJ-I: the interning dividend on the request path. A derivation
    // request forks the shared schema; with interned names the fork
    // clones three flat arena buffers, where the pre-interning model
    // cloned one heap `String` per name. The shadow run measures exactly
    // that: the same fork + projection plus a clone of every name
    // materialized as owned Strings. The legacy run does strictly more
    // work, so attainment min(speedup, 1.1)/1.1 is ~monotone: it only
    // leaves the gate envelope if the interned path itself regresses.
    let shadow: Vec<String> = schema
        .live_type_ids()
        .map(|t| schema.type_name(t).to_string())
        .chain(schema.attr_ids().map(|a| schema.attr_name(a).to_string()))
        .chain(schema.gf_ids().map(|g| schema.gf_name(g).to_string()))
        .chain(
            schema
                .method_ids()
                .map(|m| schema.method_label(m).to_string()),
        )
        .collect();
    let opts = ProjectionOptions::fast();
    let run_interned = || {
        let mut fork = schema.clone();
        project_named(&mut fork, "W7", &["w0_a0"], &opts).expect("cluster projection");
    };
    let t_interned = time_us(8, run_interned);
    let t_legacy = time_us(8, || {
        let mut fork = schema.clone();
        let names = std::hint::black_box(shadow.clone());
        project_named(&mut fork, "W7", &["w0_a0"], &opts).expect("cluster projection");
        drop(names);
    });
    let speedup = t_legacy / t_interned.max(0.001);
    report.metric("ratio_project_interned", (speedup / 1.1).min(1.0));
    report.metric("speedup_project_interned_vs_shadow", speedup);
    report.metric("time_project_interned_fork_us", t_interned);
    report.metric("time_project_shadow_fork_us", t_legacy);
    report.row(
        "PROJ-I interned fork tax",
        format!(
            "arena-interned fork + projection beats a per-name-String fork ({} names) by ≥ 1.1×",
            shadow.len()
        ),
        format!(
            "interned {:.1}ms vs string-shadow {:.1}ms ({speedup:.2}×)",
            t_interned / 1e3,
            t_legacy / 1e3
        ),
        speedup >= 1.1,
    );
}

fn index_experiment(report: &mut Report) {
    // INDEX-C: the condensation index. Two claims, one row:
    //
    //  1. correctness — on call-graph-heavy workloads the indexed engine's
    //     applicable/not-applicable *sets* are identical to the stack
    //     algorithm's for every projection tried (the full differential
    //     sweep lives in tests/property_engines.rs; this is the smoke
    //     replica the report records);
    //  2. speed — with the index warm (the batch steady state), answering
    //     a projection must be ≥ 5× faster than the stack algorithm.
    //
    // The gated metric is target attainment, min(speedup, 5)/5, clamped so
    // the baseline is exactly 1.0 whenever the target holds: raw speedups
    // (recorded informationally below) swing far more than the ±30% gate
    // envelope between container runs, attainment does not.
    let workloads = [
        ("call_chain_500", call_chain_workload(500)),
        ("call_heavy", call_heavy_workload(16, 40, 0xC0DE)),
    ];
    let mut identical = true;
    let mut min_speedup = f64::INFINITY;
    let mut rendered = Vec::new();
    for (name, w) in workloads {
        // Differential spot check: the workload's own projection, the
        // empty projection, and every available attribute.
        let everything = w.schema.cumulative_attrs(w.source);
        for proj in [w.projection.clone(), BTreeSet::new(), everything] {
            let stack = compute_applicability(&w.schema, w.source, &proj, false).unwrap();
            let indexed = compute_applicability_indexed(&w.schema, w.source, &proj, false).unwrap();
            let as_set = |v: &[td_model::MethodId]| v.iter().copied().collect::<BTreeSet<_>>();
            identical &= as_set(&stack.applicable) == as_set(&indexed.applicable)
                && as_set(&stack.not_applicable) == as_set(&indexed.not_applicable);
        }
        // Timing, index warm.
        w.schema.cached_applicability_index(w.source).unwrap();
        let t_indexed = time_us(200, || {
            compute_applicability_indexed(&w.schema, w.source, &w.projection, false).unwrap();
        });
        let t_stack = time_us(50, || {
            compute_applicability(&w.schema, w.source, &w.projection, false).unwrap();
        });
        let speedup = t_stack / t_indexed.max(0.001);
        min_speedup = min_speedup.min(speedup);
        report.metric(&format!("speedup_indexed_{name}"), speedup);
        report.metric(&format!("time_indexed_{name}_us"), t_indexed);
        report.metric(&format!("time_stack_{name}_us"), t_stack);
        rendered.push(format!(
            "{name}: stack {t_stack:.0}µs vs indexed {t_indexed:.1}µs ({speedup:.0}×)"
        ));
    }
    report.metric(
        "ratio_applicability_indexed_vs_stack",
        (min_speedup / 5.0).min(1.0),
    );
    report.row(
        "INDEX-C condensation index",
        "identical classification sets; warm index ≥ 5× faster than the stack engine",
        format!("identical = {identical}; {}", rendered.join("; ")),
        identical && min_speedup >= 5.0,
    );
}

fn batch_experiment(report: &mut Report) {
    // BATCH-P: the parallel batch engine must produce a byte-identical
    // report at every thread count (the merge is index-slotted, so worker
    // scheduling cannot reorder or reword anything), and the 1-vs-4-thread
    // wall-clock ratio characterizes the scaling headroom on this machine.
    // The speedup is machine-dependent (a 1-CPU container shows ~1×), so it
    // is recorded as an informational `time_*` metric, not a gated ratio.
    let w = random_workload(48, 0xBA7C);
    let requests: Vec<BatchRequest> = td_workload::batch_requests(&w.schema, 64, 0.5, 0xBA7C)
        .into_iter()
        .map(BatchRequest::from)
        .collect();
    let deriver = BatchDeriver::new(&w.schema).options(ProjectionOptions::fast());
    deriver.warm();

    let run = |threads: usize| {
        let deriver = deriver.clone().threads(threads);
        let mut outcome = deriver.run(&requests);
        let wall = time_us(3, || {
            outcome = deriver.run(&requests);
        });
        (outcome, wall)
    };
    let (seq, wall_1t) = run(1);
    let (par, wall_4t) = run(4);

    let identical = seq.render(&w.schema) == par.render(&w.schema);
    let ok_fraction = seq.stats.succeeded as f64 / seq.stats.requests.max(1) as f64;
    report.metric("ratio_batch_ok_fraction", ok_fraction);
    report.metric("time_batch_64req_1t_us", wall_1t);
    report.metric("time_batch_64req_4t_us", wall_4t);
    report.metric("time_batch_speedup_4t", wall_1t / wall_4t.max(0.001));
    report.row(
        "BATCH-P parallel determinism",
        "4-thread report byte-identical to sequential; 64/64 requests accounted for",
        format!(
            "identical = {identical}; {} ok / {} requests; 1t {:.0}µs, 4t {:.0}µs ({:.2}× speedup)",
            seq.stats.succeeded,
            seq.stats.requests,
            wall_1t,
            wall_4t,
            wall_1t / wall_4t.max(0.001)
        ),
        identical && seq.stats.requests == 64 && seq.stats.succeeded + seq.stats.failed == 64,
    );
}

fn delta_experiment(report: &mut Report) {
    // DELTA: delta-aware invalidation. The dispatch cache closes each
    // mutation's `SchemaDelta` over hierarchy and call-graph dependence
    // and evicts only the reachable entries, so a single-method edit on
    // the 10k-type wide schema re-warms from its surviving entries —
    // gated at ≥ 10× faster than the old full generation-bump rebuild.
    // Attainment min(speedup, 10)/10, the usual clamp: raw speedups are
    // two orders of magnitude and machine-dependent, attainment is not.
    use td_model::{BodyBuilder, MethodKind, Specializer};
    let mut schema = td_workload::wide_schema(10_000, 0x5EED);
    schema.warm_caches();

    // The rebuild baseline, timed once (it is whole seconds at 10k
    // types and strictly additive-noise-dominated, like SNAP-L's parse).
    let t0 = Instant::now();
    schema.clear_dispatch_cache();
    schema.warm_caches();
    let t_full = t0.elapsed().as_secs_f64() * 1e6;

    // Three single-method edits (distinct specializers in cluster 0 so
    // none collides), min-of-3: each adds a method to `wf0` and re-warms
    // only what the delta closure evicted.
    let gf = schema.gf_id("wf0").expect("wide schema has cluster gf wf0");
    let stats_before = schema.dispatch_cache_stats();
    let mut t_delta = f64::INFINITY;
    for j in 1..=3 {
        let spec = schema
            .type_id(&format!("W{j}"))
            .expect("cluster 0 member exists");
        let t0 = Instant::now();
        schema
            .add_method(
                gf,
                format!("delta_edit_m{j}"),
                vec![Specializer::Type(spec)],
                MethodKind::General(BodyBuilder::new().finish()),
                None,
            )
            .expect("fresh method label");
        schema.warm_caches();
        t_delta = t_delta.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    let stats = schema.dispatch_cache_stats().delta(&stats_before);

    let speedup = t_full / t_delta.max(0.001);
    report.metric(
        "ratio_delta_invalidate_vs_rebuild",
        (speedup / 10.0).min(1.0),
    );
    report.metric("speedup_delta_invalidate_vs_rebuild", speedup);
    report.metric("time_delta_full_rewarm_10k_us", t_full);
    report.metric("time_delta_edit_rewarm_10k_us", t_delta);
    report.row(
        "DELTA incremental invalidation",
        "single-method edit on 10k types re-warms ≥ 10× faster than a full rebuild; \
         equivalence proven by the core delta_consistency suite",
        format!(
            "full rebuild {:.0}ms vs delta re-warm {:.1}ms ({speedup:.0}×); \
             {} entries kept / {} evicted across 3 edits",
            t_full / 1e3,
            t_delta / 1e3,
            stats.delta_survivals,
            stats.delta_evictions
        ),
        speedup >= 10.0 && stats.delta_survivals > 0,
    );
}

fn analyze_experiment(report: &mut Report) {
    // ANALYZE: the interprocedural analysis layer, three claims in one
    // row:
    //
    //  1. precision — on a call-heavy schema whose disjunctive dispatch
    //     sites mostly nest, the semantic footprints must demote ≥ 30%
    //     of the syntactic index's fallback methods to indexed verdicts.
    //     The gated metric is target attainment, min(ratio/0.30, 1.0),
    //     the INDEX-C clamp: the raw ratio is a schema-shape constant
    //     (recorded informationally), attainment pins the baseline at 1.0.
    //  2. caching — the second `analyze` answers both parts from the
    //     dispatch cache;
    //  3. delta carry — a single added method on an island hierarchy
    //     flushes the schema-wide report (its universe is every method)
    //     but the request-scoped report survives in place, accounted as a
    //     delta survival rather than a rebuild.
    use td_analyze::analyze;
    use td_model::{AnalysisPrecision, BodyBuilder, MethodKind, Specializer};

    // 12 of 16 disjunctive units nest (ratio 0.75), 6 callers deep:
    // 96 syntactic fallback methods, 24 semantic. The island hierarchy
    // (Z/Z2, disjoint from A/B) exists up front so the later delta is a
    // single method add, nothing structural.
    let mut schema = td_workload::disjunctive_schema(12, 4, 6);
    let z = schema.add_type("Z", &[]).expect("fresh island type");
    let z2 = schema.add_type("Z2", &[z]).expect("fresh island subtype");
    let zg = schema.add_gf("zg", 1, None).expect("fresh island gf");
    schema
        .add_method(
            zg,
            "zg_z",
            vec![Specializer::Type(z)],
            MethodKind::General(BodyBuilder::new().finish()),
            None,
        )
        .expect("fresh method label");
    let source = schema.type_id("B").expect("disjunctive schema has B");
    let projection: BTreeSet<_> = [schema.attr_id("d0_x").expect("unit 0 attr")]
        .into_iter()
        .collect();
    let request = Some((source, &projection));

    let cold_stats = {
        schema.clear_dispatch_cache();
        analyze(&schema, request, AnalysisPrecision::Semantic).stats
    };
    let t_cold = time_us(20, || {
        schema.clear_dispatch_cache();
        analyze(&schema, request, AnalysisPrecision::Semantic);
    });
    let t_warm = time_us(50, || {
        analyze(&schema, request, AnalysisPrecision::Semantic);
    });
    let warm_stats = analyze(&schema, request, AnalysisPrecision::Semantic).stats;
    let demotion = warm_stats.demotion_ratio().unwrap_or(0.0);

    // The delta: one more method on the island gf, unreachable from `B`.
    let stats_before = schema.dispatch_cache_stats();
    schema
        .add_method(
            zg,
            "zg_z2",
            vec![Specializer::Type(z2)],
            MethodKind::General(BodyBuilder::new().finish()),
            None,
        )
        .expect("fresh method label");
    let t0 = Instant::now();
    let after = analyze(&schema, request, AnalysisPrecision::Semantic).stats;
    let t_delta = t0.elapsed().as_secs_f64() * 1e6;
    let survivals = schema
        .dispatch_cache_stats()
        .delta(&stats_before)
        .delta_survivals;
    let carried = !after.schema_cached && after.request_cached && survivals > 0;

    report.metric(
        "ratio_semantic_footprint_fallbacks",
        (demotion / 0.30).min(1.0),
    );
    report.metric("share_semantic_fallbacks_demoted", demotion);
    report.metric("time_analyze_cold_us", t_cold);
    report.metric("time_analyze_warm_us", t_warm);
    report.metric(
        "time_analyze_schema_part_us",
        cold_stats.schema_micros as f64,
    );
    report.metric(
        "time_analyze_request_part_us",
        cold_stats.request_micros as f64,
    );
    report.metric("time_analyze_delta_rewarm_us", t_delta);
    report.row(
        "ANALYZE semantic footprints",
        "semantic precision demotes ≥ 30% of syntactic fallback methods; warm run fully \
         cached; request report survives an island delta",
        format!(
            "{} of {} fallbacks demoted ({:.0}%); cold {t_cold:.0}µs vs warm {t_warm:.1}µs; \
             cached = {}/{}; delta carry = {carried} ({survivals} survivals)",
            warm_stats.fallback_syntactic - warm_stats.fallback_semantic,
            warm_stats.fallback_syntactic,
            demotion * 100.0,
            warm_stats.schema_cached,
            warm_stats.request_cached,
        ),
        demotion >= 0.30 && warm_stats.schema_cached && warm_stats.request_cached && carried,
    );
}

fn serve_experiment(report: &mut Report) {
    // SERVE-W: the td-server tenant registry's warm path. A registered
    // schema is served from a shared copy-on-write snapshot whose CPL and
    // applicability-index caches persist across requests; the same request
    // carrying the schema inline (`schema_text`) re-parses and re-derives
    // everything from scratch. Both paths run the identical replay stream
    // straight through `Api::handle` — no sockets in the timed loop — so
    // the responses must be byte-identical and the warm path must be
    // ≥ 2× faster. The gated metric is target attainment,
    // min(speedup, 2)/2, the same clamp trick as INDEX-C: raw speedups
    // swing with parse cost between machines, attainment does not.
    use td_server::{json, Api};
    let w = call_heavy_workload(16, 40, 0xC0DE);
    let replay = td_workload::server_replay(&w.schema, &td_workload::ReplaySpec::default());

    let api = Api::new();
    for tenant in &replay.tenants {
        let put = api.handle(
            "PUT",
            &format!("/v1/tenants/{tenant}/schemas/{}", replay.schema_name),
            "",
            replay.schema_text.as_bytes(),
        );
        assert!(
            (200..300).contains(&put.status),
            "schema registration failed: {}",
            put.body
        );
    }
    let warm_needle = format!("\"schema\": {}", json::quote(&replay.schema_name));
    let cold_patch = format!("\"schema_text\": {}", json::quote(&replay.schema_text));
    let cold: Vec<(String, String)> = replay
        .requests
        .iter()
        .map(|r| (r.path.clone(), r.body.replace(&warm_needle, &cold_patch)))
        .collect();
    let warm: Vec<(String, String)> = replay
        .requests
        .iter()
        .map(|r| (r.path.clone(), r.body.clone()))
        .collect();

    let run = |requests: &[(String, String)]| -> Vec<(u16, String)> {
        requests
            .iter()
            .map(|(path, body)| {
                let r = api.handle("POST", path, "", body.as_bytes());
                (r.status, r.body)
            })
            .collect()
    };
    // Correctness first (and a warm-up for both paths): the schema name
    // and the inline text must produce byte-identical answers.
    let warm_responses = run(&warm);
    let cold_responses = run(&cold);
    let identical = warm_responses == cold_responses;
    let all_ok = warm_responses.iter().all(|(status, _)| *status == 200);

    let t_warm = time_us(10, || {
        run(&warm);
    });
    let t_cold = time_us(10, || {
        run(&cold);
    });
    let speedup = t_cold / t_warm.max(0.001);
    report.metric("ratio_serve_warm_vs_cold", (speedup / 2.0).min(1.0));
    report.metric("speedup_serve_warm_vs_cold", speedup);
    report.metric("time_serve_warm_replay_us", t_warm);
    report.metric("time_serve_cold_replay_us", t_cold);
    report.row(
        "SERVE-W registry warm path",
        "warm and cold responses byte-identical; registered schemas ≥ 2× faster than inline",
        format!(
            "identical = {identical}, all 200 = {all_ok}; {} requests: cold {t_cold:.0}µs vs warm \
             {t_warm:.0}µs ({speedup:.1}×)",
            warm.len()
        ),
        identical && all_ok && speedup >= 2.0,
    );
}

fn telemetry_experiment(report: &mut Report) {
    // TELEM: the PR-5 instrumentation layer must be free when off. The
    // pre-instrumentation pipeline no longer exists to time against, so
    // the overhead is measured from its parts: the number of spans one
    // request emits when tracing is on, times the measured cost of one
    // disabled instrumentation site (a relaxed atomic load), against the
    // request's own wall time on the call_heavy workload. The gated
    // metric is attainment against the 5% budget — min-clamped so the
    // baseline is exactly 1.0 whenever the budget holds, same trick as
    // INDEX-C: the raw fraction is ~1e-4 and would swing through the ±30%
    // gate envelope on noise alone.
    let w = call_heavy_workload(16, 40, 0xC0DE);
    w.schema.cached_applicability_index(w.source).unwrap();
    let run_one = |schema: &Schema| {
        let mut schema = schema.clone();
        td_core::project(
            &mut schema,
            w.source,
            &w.projection,
            &ProjectionOptions::fast(),
        )
        .unwrap();
    };

    td_telemetry::set_enabled(false);
    let t_disabled = time_us(30, || run_one(&w.schema));

    // Count the spans one request emits, then time the traced run.
    td_telemetry::set_enabled(true);
    let _ = td_telemetry::drain();
    run_one(&w.schema);
    let spans_per_request = td_telemetry::drain().len();
    let t_enabled = time_us(30, || {
        run_one(&w.schema);
        let _ = td_telemetry::drain();
    });
    td_telemetry::set_enabled(false);

    // The disabled-site primitive, amortized over a tight loop.
    let reps = 100_000usize;
    let t_loop = time_us(20, || {
        for _ in 0..reps {
            let _g = std::hint::black_box(td_telemetry::span("repro", "noop"));
        }
    });
    let site_cost_ns = t_loop * 1e3 / reps as f64;
    let added_us = spans_per_request as f64 * site_cost_ns / 1e3;
    let overhead = added_us / t_disabled.max(0.001);

    report.metric("ratio_telemetry_overhead", overhead.max(0.05) / 0.05);
    report.metric("time_telemetry_project_disabled_us", t_disabled);
    report.metric("time_telemetry_project_enabled_us", t_enabled);
    report.metric("time_telemetry_site_cost_ns", site_cost_ns);
    report.row(
        "TELEM disabled-mode overhead",
        "instrumentation < 5% of request time when disabled (budget attainment = 1.0)",
        format!(
            "{spans_per_request} spans/request × {site_cost_ns:.2}ns/site = {added_us:.3}µs \
             vs {t_disabled:.0}µs/request ({:.4}% overhead; traced run {t_enabled:.0}µs)",
            overhead * 100.0
        ),
        overhead < 0.05,
    );
}

fn observability_experiment(report: &mut Report) {
    // OBS: the PR-10 request-observability layer — trace scope + span
    // stamping, the windowed SLO histograms, the flight-recorder push,
    // the Traceparent echo — measured end to end through
    // `Api::handle_with` on a warm registered-schema projection. The
    // baseline is the untraced dispatch with telemetry off (the
    // production default); the comparison is a fully traced request
    // with telemetry on — the most expensive configuration the server
    // ever runs (what `--slow-trace-dir` enables). The budget is 5% of
    // request time; the gated metric is budget attainment,
    // max(overhead, 0.05)/0.05 — the same clamp as TELEM, so the
    // baseline sits at exactly 1.0 whenever the budget holds.
    use td_server::{Api, RequestCtx};
    let w = call_heavy_workload(16, 40, 0xC0DE);
    let replay = td_workload::server_replay(&w.schema, &td_workload::ReplaySpec::default());
    let api = Api::new();
    for tenant in &replay.tenants {
        let put = api.handle(
            "PUT",
            &format!("/v1/tenants/{tenant}/schemas/{}", replay.schema_name),
            "",
            replay.schema_text.as_bytes(),
        );
        assert!(
            (200..300).contains(&put.status),
            "schema registration failed: {}",
            put.body
        );
    }
    let request = replay
        .requests
        .iter()
        .find(|r| r.path == "/v1/project")
        .expect("replay contains a /v1/project request");
    let (path, body) = (request.path.clone(), request.body.clone());

    td_telemetry::set_enabled(false);
    let check = api.handle("POST", &path, "", body.as_bytes());
    assert_eq!(check.status, 200, "{}", check.body);
    let t_plain = time_us(40, || {
        api.handle("POST", &path, "", body.as_bytes());
    });

    let ctx = RequestCtx {
        trace: Some(td_telemetry::TraceId::parse_hex("4bf92f3577b34da6a3ce929d0e0e4736").unwrap()),
        tenant: replay.tenants.first().cloned(),
        queue_us: 0,
    };
    td_telemetry::set_enabled(true);
    let _ = td_telemetry::drain();
    let traced = api.handle_with("POST", &path, "", body.as_bytes(), &ctx);
    assert_eq!(traced.status, 200, "{}", traced.body);
    assert!(
        traced
            .extra_headers
            .iter()
            .any(|(name, _)| name.eq_ignore_ascii_case("traceparent")),
        "traced response must echo a Traceparent header"
    );
    let t_traced = time_us(40, || {
        api.handle_with("POST", &path, "", body.as_bytes(), &ctx);
    });
    td_telemetry::set_enabled(false);
    let _ = td_telemetry::drain();

    let overhead = ((t_traced - t_plain) / t_plain.max(0.001)).max(0.0);
    report.metric("ratio_observability_overhead", overhead.max(0.05) / 0.05);
    report.metric("time_obs_plain_request_us", t_plain);
    report.metric("time_obs_traced_request_us", t_traced);
    report.row(
        "OBS traced-request overhead",
        "full request observability < 5% of untraced dispatch time (budget attainment = 1.0)",
        format!(
            "untraced+telemetry-off {t_plain:.0}µs vs traced+telemetry-on {t_traced:.0}µs \
             ({:.2}% overhead)",
            overhead * 100.0
        ),
        overhead < 0.05,
    );
}

fn baseline_audit(report: &mut Report) {
    let strategies: Vec<&dyn DerivationStrategy> = vec![
        &PaperStrategy,
        &StandaloneStrategy,
        &RootPlacementStrategy,
        &LocalEdgeStrategy,
    ];
    let definer = DefinerSpecifiedStrategy {
        choice: DefinerChoice::SignatureOnly,
    };

    // Fig. 3 workload.
    let s = figures::fig3();
    let a = s.type_id("A").expect("fig3");
    let proj = figures::FIG4_PROJECTION
        .iter()
        .map(|n| s.attr_id(n).expect("fig3 attr"))
        .collect();
    println!("\n== BASE: baseline audit on the Figure 3 workload ==");
    let mut results = audit_all(&strategies, &s, a, &proj);
    results.push(td_baselines::audit_strategy(&definer, &s, a, &proj));
    for r in &results {
        println!("  {}", r.row());
    }
    let paper_clean = results[0].total_violations() == 0;
    let all_baselines_dirty = results[1..].iter().all(|r| r.total_violations() > 0);
    report.row(
        "BASE fig3 audit",
        "paper: 0 violations; every related-work strategy: >0",
        format!(
            "paper={} violations; baselines min={} violations",
            results[0].total_violations(),
            results[1..]
                .iter()
                .map(|r| r.total_violations())
                .min()
                .expect("non-empty")
        ),
        paper_clean && all_baselines_dirty,
    );

    // Randomized workloads.
    let mut clean = 0usize;
    let mut dirty = 0usize;
    let runs = 25usize;
    for seed in 0..runs as u64 {
        let Workload {
            schema,
            source,
            projection,
        } = random_workload(24, 0x9000 + seed);
        let results = audit_all(&strategies, &schema, source, &projection);
        if results[0].total_violations() == 0 {
            clean += 1;
        }
        dirty += usize::from(results[1..].iter().all(|r| r.total_violations() > 0));
    }
    report.row(
        "BASE randomized audit",
        format!("paper clean on {runs}/{runs} seeds; baselines violate on all"),
        format!("paper clean on {clean}/{runs}; baselines all-dirty on {dirty}/{runs}"),
        clean == runs && dirty == runs,
    );
}

fn deviation_ablation(report: &mut Report) {
    // DEV: the paper's literal §4.1 dependency-list retraction vs the
    // repaired suffix retraction, both judged by the greatest-fixpoint
    // oracle over random schemas (see DESIGN.md deviation 2).
    use td_core::ablation::{compare_on, AblationOutcome};
    let mut outcome = AblationOutcome::default();
    let runs = 2000usize;
    for seed in 0..runs as u64 {
        // Cycle-dense shape: few types, deep call graphs, scarce accessors
        // and narrow projections — the regime where optimistic assumptions
        // actually fail and retraction precision matters.
        let schema = td_workload::random_schema(&td_workload::GenParams {
            seed,
            n_types: 4,
            attrs_per_type: 1,
            reader_fraction: 0.3,
            n_gfs: 6,
            methods_per_gf: 3,
            max_arity: 2,
            calls_per_body: 4,
            ..td_workload::GenParams::default()
        });
        let source = td_workload::deepest_type(&schema);
        let projection = td_workload::random_projection(&schema, source, 0.1, seed ^ 0x77);
        compare_on(&schema, source, &projection, &mut outcome).expect("ablation run");
    }
    report.row(
        "DEV retraction ablation",
        "the paper's literal dependency-list retraction under-retracts on some schemas; the repaired suffix retraction never disagrees with the fixpoint",
        format!(
            "literal mismatches {}/{} runs; repaired mismatches {}/{}",
            outcome.literal_mismatches, outcome.runs, outcome.repaired_mismatches, outcome.runs
        ),
        outcome.repaired_mismatches == 0,
    );
}

fn compose_ablation(report: &mut Report) {
    let mut s = figures::fig3();
    let a = s.type_id("A").expect("fig3");
    let outcomes = Pipeline::new()
        .project(&["a2", "e2", "h2"])
        .project(&["e2", "h2"])
        .project(&["h2"])
        .apply(&mut s, a, &ProjectionOptions::default())
        .expect("stacked views");
    let empties = count_empty_surrogates(&s);
    let protected: BTreeSet<TypeId> = outcomes.iter().map(|o| o.result_type()).collect();
    let (before, after, removed) =
        minimize_pipeline_surrogates(&mut s, &protected).expect("minimize");
    s.validate().expect("well-formed after minimization");
    report.row(
        "COMP views-over-views",
        "stacked views proliferate empty surrogates (§7); minimization reclaims a strict subset, invariants intact",
        format!("3 layers ⇒ {empties} empty surrogates; minimization {before}→{after} (removed {removed})"),
        empties > 0 && removed > 0 && after < before,
    );
}
