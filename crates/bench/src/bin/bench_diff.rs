//! The CI perf-regression gate: compares a fresh `repro --json` report
//! against the committed baseline.
//!
//! ```sh
//! cargo run -p td-bench --release --bin bench_diff -- \
//!     BENCH_baseline.json BENCH_current.json [--threshold 0.30]
//! ```
//!
//! Exits 0 when every baseline experiment still matches the paper and
//! every gated `ratio_*` metric is within ±threshold of the baseline;
//! exits 1 otherwise, after printing a per-metric diff table with a
//! status column and one `::error::` GitHub annotation per failure so
//! the gate reads as a verdict, not a raw JSON dump (see
//! `crates/bench/src/report.rs` for the gating rules).

use std::process::exit;
use td_bench::report::{compare, BenchReport, DEFAULT_THRESHOLD};

/// Per-metric verdict for the diff table.
fn metric_status(name: &str, base: f64, cur: Option<f64>, threshold: f64) -> &'static str {
    if !BenchReport::is_gated(name) {
        return "info";
    }
    match cur {
        None => "MISSING",
        Some(cur) => {
            let drift = (cur - base).abs() / base.abs().max(1e-12);
            if drift.is_finite() && drift <= threshold {
                "ok"
            } else {
                "FAIL"
            }
        }
    }
}

/// Renders a metric value for the diff table. `bytes_*` metrics are
/// on-disk sizes (one per snapshot the repro run wrote) and read better
/// as exact byte counts with a human-scale suffix than as `%.4f`.
fn fmt_value(name: &str, value: f64) -> String {
    if !name.starts_with("bytes_") {
        return format!("{value:.4}");
    }
    let bytes = value as u64;
    if bytes >= 1024 * 1024 {
        format!("{bytes} B ({:.1} MiB)", value / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{bytes} B ({:.1} KiB)", value / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Metric-name prefixes whose `time_*_us` samples belong to a verdict
/// row, keyed by the row's leading id token. The repro harness names
/// metrics after its experiment families; this is the one place the two
/// naming schemes meet, so the association is spelled out rather than
/// guessed from string distance.
fn time_prefixes(id: &str) -> &'static [&'static str] {
    match id.split_whitespace().next().unwrap_or("") {
        "SCALE-A" => &["time_scale_a_"],
        "SCALE-F" => &["time_scale_f_"],
        "SCALE-D" => &["time_dispatch_"],
        "SNAP-L" => &["time_snapshot_"],
        "PROJ-I" => &["time_project_"],
        "INDEX-C" => &["time_indexed_", "time_stack_"],
        "BATCH-P" => &["time_batch_"],
        "DELTA" => &["time_delta_"],
        "ANALYZE" => &["time_analyze_"],
        "SERVE-W" => &["time_serve_"],
        "TELEM" => &["time_telemetry_"],
        _ => &[],
    }
}

/// Sums a report's `time_*_us` metrics belonging to one verdict row;
/// `None` when the row has no timed component (the paper-figure rows).
fn experiment_micros(report: &BenchReport, id: &str) -> Option<f64> {
    let prefixes = time_prefixes(id);
    let mut sum = 0.0;
    let mut any = false;
    for (name, value) in &report.metrics {
        if name.ends_with("_us") && prefixes.iter().any(|p| name.starts_with(p)) {
            sum += value;
            any = true;
        }
    }
    any.then_some(sum)
}

fn usage() -> ! {
    eprintln!("usage: bench_diff <baseline.json> <current.json> [--threshold 0.30]");
    exit(2);
}

fn load(path: &str) -> BenchReport {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        exit(2);
    });
    BenchReport::parse(&src).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot parse {path}: {e}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|t| t.parse::<f64>().ok())
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage();
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    println!(
        "bench_diff: {baseline_path} vs {current_path} (gated ratios ±{:.0}%)",
        threshold * 100.0
    );

    // Experiments first: a reproduction row going red fails whatever the
    // timings say, so it leads the report.
    let current_experiments: std::collections::BTreeMap<&str, bool> = current
        .experiments
        .iter()
        .map(|(id, ok)| (id.as_str(), *ok))
        .collect();
    println!("\n| experiment | µs before | µs after | Δ | status |");
    println!("|---|---|---|---|---|");
    for (id, _) in &baseline.experiments {
        let status = match current_experiments.get(id.as_str()) {
            Some(true) => "ok",
            Some(false) => "FAIL (no longer matches the paper)",
            None => "MISSING from current report",
        };
        let fmt_us = |x: f64| {
            if x < 100.0 {
                format!("{x:.2}")
            } else {
                format!("{x:.0}")
            }
        };
        let before = experiment_micros(&baseline, id);
        let after = experiment_micros(&current, id);
        let (before_s, after_s, delta_s) = match (before, after) {
            (Some(b), Some(a)) => (
                fmt_us(b),
                fmt_us(a),
                format!("{:+.1}%", (a - b) / b.abs().max(1e-12) * 100.0),
            ),
            (Some(b), None) => (fmt_us(b), "—".into(), "—".into()),
            (None, Some(a)) => ("—".into(), fmt_us(a), "new".into()),
            (None, None) => ("—".into(), "—".into(), "—".into()),
        };
        println!("| {id} | {before_s} | {after_s} | {delta_s} | {status} |");
    }

    println!("\n| metric | baseline | current | drift | status |");
    println!("|---|---|---|---|---|");
    for (name, &base) in &baseline.metrics {
        let cur = current.metrics.get(name).copied();
        let status = metric_status(name, base, cur, threshold);
        match cur {
            Some(cur) => {
                let drift = (cur - base) / base.abs().max(1e-12) * 100.0;
                println!(
                    "| {name} | {} | {} | {drift:+.1}% | {status} |",
                    fmt_value(name, base),
                    fmt_value(name, cur)
                );
            }
            None => println!("| {name} | {} | — | — | {status} |", fmt_value(name, base)),
        }
    }
    for name in current
        .metrics
        .keys()
        .filter(|n| !baseline.metrics.contains_key(*n))
    {
        println!(
            "| {name} | — | {} | — | new |",
            fmt_value(name, current.metrics[name])
        );
    }

    let failures = compare(&baseline, &current, threshold);
    if failures.is_empty() {
        println!(
            "\nOK: {} experiments and {} gated metrics within ±{:.0}%",
            baseline.experiments.len(),
            baseline
                .metrics
                .keys()
                .filter(|n| BenchReport::is_gated(n))
                .count(),
            threshold * 100.0
        );
    } else {
        println!();
        for f in &failures {
            // `::error::` renders as a file-less annotation on GitHub
            // runners and is a plain greppable line everywhere else.
            println!("::error::bench gate: {f}");
        }
        println!(
            "\nFAILED: {} of {} gate checks (see table above)",
            failures.len(),
            baseline.experiments.len()
                + baseline
                    .metrics
                    .keys()
                    .filter(|n| BenchReport::is_gated(n))
                    .count()
        );
        exit(1);
    }
}
