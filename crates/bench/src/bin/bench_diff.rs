//! The CI perf-regression gate: compares a fresh `repro --json` report
//! against the committed baseline.
//!
//! ```sh
//! cargo run -p td-bench --release --bin bench_diff -- \
//!     BENCH_baseline.json BENCH_current.json [--threshold 0.30]
//! ```
//!
//! Exits 0 when every baseline experiment still matches the paper and
//! every gated `ratio_*` metric is within ±threshold of the baseline;
//! exits 1 with one line per failure otherwise (see
//! `crates/bench/src/report.rs` for the gating rules).

use std::process::exit;
use td_bench::report::{compare, BenchReport, DEFAULT_THRESHOLD};

fn usage() -> ! {
    eprintln!("usage: bench_diff <baseline.json> <current.json> [--threshold 0.30]");
    exit(2);
}

fn load(path: &str) -> BenchReport {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        exit(2);
    });
    BenchReport::parse(&src).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot parse {path}: {e}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|t| t.parse::<f64>().ok())
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        usage();
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    println!(
        "bench_diff: {baseline_path} vs {current_path} (±{:.0}%)",
        threshold * 100.0
    );
    println!("| metric | baseline | current | drift | gated |");
    println!("|---|---|---|---|---|");
    for (name, &base) in &baseline.metrics {
        let gated = BenchReport::is_gated(name);
        match current.metrics.get(name) {
            Some(&cur) => {
                let drift = (cur - base) / base.abs().max(1e-12) * 100.0;
                println!(
                    "| {name} | {base:.4} | {cur:.4} | {drift:+.1}% | {} |",
                    if gated { "yes" } else { "no" }
                );
            }
            None => println!(
                "| {name} | {base:.4} | — | — | {} |",
                if gated { "yes" } else { "no" }
            ),
        }
    }

    let failures = compare(&baseline, &current, threshold);
    if failures.is_empty() {
        println!(
            "\nOK: {} experiments and {} gated metrics within ±{:.0}%",
            baseline.experiments.len(),
            baseline
                .metrics
                .keys()
                .filter(|n| BenchReport::is_gated(n))
                .count(),
            threshold * 100.0
        );
    } else {
        println!();
        for f in &failures {
            println!("FAIL: {f}");
        }
        exit(1);
    }
}
