//! The *type instantiation* problem: obtaining instances of a derived
//! type from instances of its source (§1 — the half of view support the
//! paper explicitly leaves to a companion mechanism).
//!
//! Two standard realizations are provided:
//!
//! * [`MaterializedView`] — eagerly creates first-class objects of the
//!   derived type by projecting every source instance, remembering the
//!   source↔view correspondence; [`MaterializedView::refresh`] picks up
//!   source objects created later (incremental maintenance).
//! * [`VirtualView`] — computes projected tuples on demand with no
//!   storage; reads always see current source state.

use std::collections::BTreeSet;
use td_core::Derivation;
use td_model::{AttrId, TypeId};

use crate::error::Result;
use crate::object::{Database, ObjId};
use crate::value::Value;

/// An eagerly materialized view extent.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The derived type.
    pub derived: TypeId,
    /// The source type.
    pub source: TypeId,
    /// The projected attributes.
    pub projection: BTreeSet<AttrId>,
    /// `(source object, view object)` pairs, in materialization order.
    pub pairs: Vec<(ObjId, ObjId)>,
}

impl MaterializedView {
    /// Materializes the current deep extent of the derivation's source.
    pub fn materialize(db: &mut Database, derivation: &Derivation) -> Result<MaterializedView> {
        let mut view = MaterializedView {
            derived: derivation.derived,
            source: derivation.source,
            projection: derivation.projection.clone(),
            pairs: Vec::new(),
        };
        view.refresh(db)?;
        Ok(view)
    }

    /// Materializes any source object not yet reflected in the view.
    /// Returns the number of view objects created.
    pub fn refresh(&mut self, db: &mut Database) -> Result<usize> {
        let seen: BTreeSet<ObjId> = self.pairs.iter().map(|&(s, _)| s).collect();
        let todo: Vec<ObjId> = db
            .deep_extent(self.source)
            .into_iter()
            .filter(|o| !seen.contains(o))
            .collect();
        let n = todo.len();
        for src in todo {
            let fields: Vec<(AttrId, Value)> = self
                .projection
                .iter()
                .map(|&a| Ok((a, db.get_field(src, a)?)))
                .collect::<Result<_>>()?;
            let v = db.create(self.derived, fields)?;
            self.pairs.push((src, v));
        }
        Ok(n)
    }

    /// The view object materialized from `source`, if any.
    pub fn view_of(&self, source: ObjId) -> Option<ObjId> {
        self.pairs
            .iter()
            .find(|&&(s, _)| s == source)
            .map(|&(_, v)| v)
    }

    /// The source object behind a view object, if any.
    pub fn source_of(&self, view: ObjId) -> Option<ObjId> {
        self.pairs
            .iter()
            .find(|&&(_, v)| v == view)
            .map(|&(s, _)| s)
    }
}

/// One projected tuple: `(attribute, value)` pairs in projection order.
pub type ViewTuple = Vec<(AttrId, Value)>;

/// A virtual (unmaterialized) view: tuples are computed from the live
/// source extent at read time.
#[derive(Debug, Clone)]
pub struct VirtualView {
    /// The derived type.
    pub derived: TypeId,
    /// The source type.
    pub source: TypeId,
    /// The projected attributes.
    pub projection: BTreeSet<AttrId>,
}

impl VirtualView {
    /// Wraps a derivation as a virtual view.
    pub fn new(derivation: &Derivation) -> VirtualView {
        VirtualView {
            derived: derivation.derived,
            source: derivation.source,
            projection: derivation.projection.clone(),
        }
    }

    /// Projects one source object to its view tuple.
    pub fn tuple(&self, db: &Database, source: ObjId) -> Result<ViewTuple> {
        self.projection
            .iter()
            .map(|&a| Ok((a, db.get_field(source, a)?)))
            .collect()
    }

    /// Projects the whole (current) deep extent of the source.
    pub fn tuples(&self, db: &Database) -> Result<Vec<(ObjId, ViewTuple)>> {
        db.deep_extent(self.source)
            .into_iter()
            .map(|o| Ok((o, self.tuple(db, o)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{project_named, ProjectionOptions};
    use td_workload::figures;

    fn setup() -> (Database, Derivation) {
        let mut db = Database::new(figures::fig1());
        for (ssn, dob, pay, hrs) in [(1, 1990, 50.0, 10.0), (2, 1980, 70.0, 20.0)] {
            db.create_named(
                "Employee",
                &[
                    ("SSN", Value::Int(ssn)),
                    ("date_of_birth", Value::Int(dob)),
                    ("pay_rate", Value::Float(pay)),
                    ("hrs_worked", Value::Float(hrs)),
                    ("name", Value::Str(format!("e{ssn}"))),
                ],
            )
            .unwrap();
        }
        let d = project_named(
            db.schema_mut(),
            "Employee",
            &["SSN", "date_of_birth", "pay_rate"],
            &ProjectionOptions::default(),
        )
        .unwrap();
        (db, d)
    }

    #[test]
    fn materialized_view_projects_each_source() {
        let (mut db, d) = setup();
        let view = MaterializedView::materialize(&mut db, &d).unwrap();
        assert_eq!(view.pairs.len(), 2);
        let ssn = db.schema().attr_id("SSN").unwrap();
        let name = db.schema().attr_id("name").unwrap();
        for &(src, v) in &view.pairs {
            assert_eq!(
                db.get_field(v, ssn).unwrap(),
                db.get_field(src, ssn).unwrap()
            );
            // The view object has no `name` field.
            assert!(db.get_field(v, name).is_err());
            assert_eq!(view.view_of(src), Some(v));
            assert_eq!(view.source_of(v), Some(src));
        }
    }

    #[test]
    fn applicable_methods_run_on_view_objects() {
        let (mut db, d) = setup();
        let view = MaterializedView::materialize(&mut db, &d).unwrap();
        let (_, v0) = view.pairs[0];
        // age and promote survive the projection and run on view objects.
        assert_eq!(
            db.call_named("age", &[Value::Ref(v0)]).unwrap(),
            Value::Int(36)
        );
        assert_eq!(
            db.call_named("promote", &[Value::Ref(v0)]).unwrap(),
            Value::Bool(true)
        );
        // income does not (hrs_worked was projected away).
        let err = db.call_named("income", &[Value::Ref(v0)]).unwrap_err();
        assert!(matches!(
            err,
            crate::error::StoreError::NoApplicableMethod { .. }
        ));
        // Source objects still answer everything exactly as before.
        let (s0, _) = view.pairs[0];
        assert_eq!(
            db.call_named("income", &[Value::Ref(s0)]).unwrap(),
            Value::Float(500.0)
        );
    }

    #[test]
    fn refresh_is_incremental() {
        let (mut db, d) = setup();
        let mut view = MaterializedView::materialize(&mut db, &d).unwrap();
        assert_eq!(view.refresh(&mut db).unwrap(), 0);
        db.create_named("Employee", &[("SSN", Value::Int(3))])
            .unwrap();
        assert_eq!(view.refresh(&mut db).unwrap(), 1);
        assert_eq!(view.pairs.len(), 3);
    }

    #[test]
    fn virtual_view_reads_live_state() {
        let (mut db, d) = setup();
        let view = VirtualView::new(&d);
        let tuples = view.tuples(&db).unwrap();
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[0].1.len(), 3);
        // Mutate the source; the virtual view sees it immediately.
        let (src, _) = tuples[0];
        let ssn = db.schema().attr_id("SSN").unwrap();
        db.set_field(src, ssn, Value::Int(99)).unwrap();
        let t = view.tuple(&db, src).unwrap();
        assert!(t.contains(&(ssn, Value::Int(99))));
    }
}
