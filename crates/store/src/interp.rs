//! The method interpreter: executable multi-method dispatch.
//!
//! Generic-function calls dispatch on the runtime types of **all**
//! arguments (§2), ranked by the class precedence lists of the actual
//! argument types. Accessor methods read/write object state — the only
//! state access in the model — and general methods execute their IR
//! bodies, which may invoke further generic functions.
//!
//! The interpreter is what makes behavior preservation *observable*: the
//! examples call the same generic functions on the same objects before
//! and after a derivation and compare results.

use td_model::{BinOp, CallArg, Expr, GfId, MethodId, MethodKind, Stmt};

use crate::error::{Result, StoreError};
use crate::object::Database;
use crate::value::Value;

/// Maximum method-call nesting before the interpreter gives up (the IR
/// has no loops, so nontermination can only come from inter-method
/// recursion).
pub const MAX_CALL_DEPTH: usize = 256;

impl Database {
    /// Calls generic function `gf` with the given argument values,
    /// dispatching to the most specific applicable method.
    pub fn call(&mut self, gf: GfId, args: &[Value]) -> Result<Value> {
        self.call_at_depth(gf, args, 0)
    }

    /// Calls a generic function by name.
    pub fn call_named(&mut self, gf: &str, args: &[Value]) -> Result<Value> {
        let gf = self.schema().gf_id(gf)?;
        self.call(gf, args)
    }

    /// The runtime [`CallArg`] of a value (object values report their
    /// stored type).
    pub fn runtime_arg(&self, v: &Value) -> Result<CallArg> {
        Ok(match v {
            Value::Ref(o) => CallArg::Object(self.object(*o)?.ty),
            Value::Null => CallArg::Null,
            prim => CallArg::Prim(prim.prim_type().expect("non-ref, non-null is prim")),
        })
    }

    fn call_at_depth(&mut self, gf: GfId, args: &[Value], depth: usize) -> Result<Value> {
        if depth > MAX_CALL_DEPTH {
            return Err(StoreError::DepthExceeded(MAX_CALL_DEPTH));
        }
        if gf.index() >= self.schema().n_gfs() {
            return Err(StoreError::Model(td_model::ModelError::BadGfId(gf)));
        }
        let expected = self.schema().gf(gf).arity;
        if args.len() != expected {
            return Err(StoreError::ArityMismatch {
                gf,
                expected,
                got: args.len(),
            });
        }
        let rt_args: Vec<CallArg> = args
            .iter()
            .map(|v| self.runtime_arg(v))
            .collect::<Result<_>>()?;
        let method = self
            .schema()
            .most_specific(gf, &rt_args)
            .map_err(StoreError::Model)?
            .ok_or_else(|| StoreError::NoApplicableMethod {
                gf: self.schema().gf_name(gf).to_string(),
                args: rt_args
                    .iter()
                    .map(|a| format!("{a:?}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            })?;
        self.execute(method, args, depth)
    }

    fn execute(&mut self, method: MethodId, args: &[Value], depth: usize) -> Result<Value> {
        match self.schema().method(method).kind.clone() {
            MethodKind::Reader(attr) => {
                let obj = args[0]
                    .as_ref_id()
                    .ok_or_else(|| StoreError::TypeError("reader on null/non-object".into()))?;
                self.get_field(obj, attr)
            }
            MethodKind::Writer(attr) => {
                let obj = args[0]
                    .as_ref_id()
                    .ok_or_else(|| StoreError::TypeError("writer on null/non-object".into()))?;
                self.set_field(obj, attr, args[1].clone())?;
                Ok(Value::Null)
            }
            MethodKind::General(body) => {
                let mut env = Env {
                    params: args.to_vec(),
                    locals: vec![Value::Null; body.locals.len()],
                };
                match self.exec_block(&body.stmts, &mut env, depth)? {
                    Flow::Return(v) => Ok(v),
                    Flow::Fall => Ok(Value::Null),
                }
            }
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env, depth: usize) -> Result<Flow> {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { var, value } => {
                    let v = self.eval(value, env, depth)?;
                    env.locals[var.index()] = v;
                }
                Stmt::Expr(e) => {
                    self.eval(e, env, depth)?;
                }
                Stmt::Return(e) => {
                    let v = self.eval(e, env, depth)?;
                    return Ok(Flow::Return(v));
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c = self
                        .eval(cond, env, depth)?
                        .as_bool()
                        .ok_or_else(|| StoreError::TypeError("if condition not boolean".into()))?;
                    let branch = if c { then_branch } else { else_branch };
                    if let Flow::Return(v) = self.exec_block(branch, env, depth)? {
                        return Ok(Flow::Return(v));
                    }
                }
            }
        }
        Ok(Flow::Fall)
    }

    fn eval(&mut self, e: &Expr, env: &mut Env, depth: usize) -> Result<Value> {
        match e {
            Expr::Param(i) => Ok(env.params[*i].clone()),
            Expr::Var(v) => Ok(env.locals[v.index()].clone()),
            Expr::Lit(l) => Ok(Value::from(l)),
            Expr::Call { gf, args } => {
                let values: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval(a, env, depth))
                    .collect::<Result<_>>()?;
                self.call_at_depth(*gf, &values, depth + 1)
            }
            Expr::BinOp { op, lhs, rhs } => {
                let l = self.eval(lhs, env, depth)?;
                let r = self.eval(rhs, env, depth)?;
                apply_binop(*op, l, r)
            }
        }
    }
}

enum Flow {
    Return(Value),
    Fall,
}

struct Env {
    params: Vec<Value>,
    locals: Vec<Value>,
}

fn apply_binop(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => arith(op, l, r),
        Lt => match (l.as_float(), r.as_float()) {
            (Some(a), Some(b)) => Ok(Value::Bool(a < b)),
            _ => Err(StoreError::TypeError("`<` needs numbers".into())),
        },
        Eq => Ok(Value::Bool(l == r)),
        And | Or => match (l.as_bool(), r.as_bool()) {
            (Some(a), Some(b)) => Ok(Value::Bool(if op == And { a && b } else { a || b })),
            _ => Err(StoreError::TypeError("logical op needs booleans".into())),
        },
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match (&l, &r) {
        (Value::Str(a), Value::Str(b)) if op == Add => Ok(Value::Str(format!("{a}{b}"))),
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
            Add => a.wrapping_add(*b),
            Sub => a.wrapping_sub(*b),
            Mul => a.wrapping_mul(*b),
            Div => {
                if *b == 0 {
                    return Err(StoreError::DivisionByZero);
                }
                a.wrapping_div(*b)
            }
            _ => unreachable!("arith called with comparison"),
        })),
        _ => match (l.as_float(), r.as_float()) {
            (Some(a), Some(b)) => Ok(Value::Float(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                _ => unreachable!("arith called with comparison"),
            })),
            _ => Err(StoreError::TypeError(format!(
                "cannot apply {op} to {l} and {r}"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workload::figures;

    fn fig1_db() -> Database {
        Database::new(figures::fig1())
    }

    #[test]
    fn accessors_read_and_write() {
        let mut db = fig1_db();
        let o = db
            .create_named("Employee", &[("SSN", Value::Int(42))])
            .unwrap();
        assert_eq!(
            db.call_named("get_SSN", &[Value::Ref(o)]).unwrap(),
            Value::Int(42)
        );
        db.call_named("set_SSN", &[Value::Ref(o), Value::Int(7)])
            .unwrap();
        assert_eq!(
            db.call_named("get_SSN", &[Value::Ref(o)]).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn general_methods_compute() {
        let mut db = fig1_db();
        let o = db
            .create_named(
                "Employee",
                &[
                    ("date_of_birth", Value::Int(1990)),
                    ("pay_rate", Value::Float(50.0)),
                    ("hrs_worked", Value::Float(10.0)),
                ],
            )
            .unwrap();
        // age = 2026 - 1990
        assert_eq!(
            db.call_named("age", &[Value::Ref(o)]).unwrap(),
            Value::Int(36)
        );
        // income = 50 * 10
        assert_eq!(
            db.call_named("income", &[Value::Ref(o)]).unwrap(),
            Value::Float(500.0)
        );
        // promote: (2026-1990)=36 < 50 -> true
        assert_eq!(
            db.call_named("promote", &[Value::Ref(o)]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn age_applies_to_plain_persons_too() {
        let mut db = fig1_db();
        let p = db
            .create_named("Person", &[("date_of_birth", Value::Int(2000))])
            .unwrap();
        assert_eq!(
            db.call_named("age", &[Value::Ref(p)]).unwrap(),
            Value::Int(26)
        );
        // income does not apply to a Person.
        let err = db.call_named("income", &[Value::Ref(p)]).unwrap_err();
        assert!(matches!(err, StoreError::NoApplicableMethod { .. }));
    }

    #[test]
    fn subtype_method_overrides() {
        use td_model::{BodyBuilder, Expr, MethodKind, Specializer, ValueType};
        let mut s = td_model::Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let f = s.add_gf("f", 1, Some(ValueType::INT)).unwrap();
        let mut bb = BodyBuilder::new();
        bb.ret(Expr::int(1));
        s.add_method(
            f,
            "f_a",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            Some(ValueType::INT),
        )
        .unwrap();
        let mut bb = BodyBuilder::new();
        bb.ret(Expr::int(2));
        s.add_method(
            f,
            "f_b",
            vec![Specializer::Type(b)],
            MethodKind::General(bb.finish()),
            Some(ValueType::INT),
        )
        .unwrap();
        let mut db = Database::new(s);
        let oa = db.create(a, vec![]).unwrap();
        let ob = db.create(b, vec![]).unwrap();
        assert_eq!(
            db.call_named("f", &[Value::Ref(oa)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            db.call_named("f", &[Value::Ref(ob)]).unwrap(),
            Value::Int(2)
        );
    }

    #[test]
    fn runaway_recursion_is_bounded() {
        use td_model::{BodyBuilder, Expr, MethodKind, Specializer};
        let mut s = td_model::Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let f = s.add_gf("f", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        s.add_method(
            f,
            "f1",
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();
        let mut db = Database::new(s);
        let o = db.create(a, vec![]).unwrap();
        let err = db.call_named("f", &[Value::Ref(o)]).unwrap_err();
        assert!(matches!(err, StoreError::DepthExceeded(_)));
    }

    #[test]
    fn arity_checked_at_call() {
        let mut db = fig1_db();
        let o = db.create_named("Person", &[]).unwrap();
        let err = db
            .call_named("age", &[Value::Ref(o), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }));
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(
            apply_binop(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            apply_binop(BinOp::Add, Value::Str("a".into()), Value::Str("b".into())).unwrap(),
            Value::Str("ab".into())
        );
        assert_eq!(
            apply_binop(BinOp::Div, Value::Int(7), Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert!(matches!(
            apply_binop(BinOp::Div, Value::Int(1), Value::Int(0)),
            Err(StoreError::DivisionByZero)
        ));
        assert_eq!(
            apply_binop(BinOp::Mul, Value::Int(2), Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            apply_binop(BinOp::Eq, Value::Null, Value::Null).unwrap(),
            Value::Bool(true)
        );
        assert!(apply_binop(BinOp::And, Value::Int(1), Value::Bool(true)).is_err());
    }
}
