//! Updatable materialized views (after the paper's reference \[16\],
//! Scholl, Laasch & Tresch, *Updatable Views in Object-Oriented
//! Databases*, DOOD '91).
//!
//! A projection view is trivially updatable: every view attribute *is* a
//! source attribute (identity is preserved by derivation), so updates
//! translate 1:1. Three synchronization primitives are provided:
//!
//! * [`MaterializedView::set_through`] — write one view field and its
//!   source field atomically;
//! * [`MaterializedView::push`] — propagate all view-object fields back
//!   to their sources;
//! * [`MaterializedView::pull`] — refresh all view-object fields from
//!   their sources (after direct source updates).

use td_model::AttrId;

use crate::error::{Result, StoreError};
use crate::object::{Database, ObjId};
use crate::value::Value;
use crate::view::MaterializedView;

impl MaterializedView {
    /// Verifies that `attr` is part of the view and that `view_obj` was
    /// materialized by this view, returning its source object.
    fn check_update(&self, attr: AttrId, view_obj: ObjId) -> Result<ObjId> {
        if !self.projection.contains(&attr) {
            return Err(StoreError::AttrNotInType {
                attr,
                ty: self.derived,
            });
        }
        self.source_of(view_obj)
            .ok_or(StoreError::BadObjId(view_obj))
    }

    /// Writes `attr` on a view object **and** on the source object it was
    /// materialized from. Fails (changing nothing) if the attribute is
    /// outside the projection or the object is not part of this view.
    pub fn set_through(
        &self,
        db: &mut Database,
        view_obj: ObjId,
        attr: AttrId,
        value: Value,
    ) -> Result<()> {
        let src = self.check_update(attr, view_obj)?;
        // Validate against the source first so a type error cannot leave
        // the pair half-updated.
        db.check_value(attr, &value)?;
        db.set_field(src, attr, value.clone())?;
        db.set_field(view_obj, attr, value)?;
        Ok(())
    }

    /// Propagates every projected field of every view object back to its
    /// source. Returns the number of fields actually changed.
    pub fn push(&self, db: &mut Database) -> Result<usize> {
        let mut changed = 0usize;
        for &(src, view) in &self.pairs {
            for &attr in &self.projection {
                let new = db.get_field(view, attr)?;
                if db.get_field(src, attr)? != new {
                    db.set_field(src, attr, new)?;
                    changed += 1;
                }
            }
        }
        Ok(changed)
    }

    /// Refreshes every projected field of every view object from its
    /// source. Returns the number of fields actually changed.
    pub fn pull(&self, db: &mut Database) -> Result<usize> {
        let mut changed = 0usize;
        for &(src, view) in &self.pairs {
            for &attr in &self.projection {
                let new = db.get_field(src, attr)?;
                if db.get_field(view, attr)? != new {
                    db.set_field(view, attr, new)?;
                    changed += 1;
                }
            }
        }
        Ok(changed)
    }

    /// Fields whose view and source values currently disagree:
    /// `(source, view, attr)` triples. Empty means fully synchronized.
    pub fn divergent(&self, db: &Database) -> Result<Vec<(ObjId, ObjId, AttrId)>> {
        let mut out = Vec::new();
        for &(src, view) in &self.pairs {
            for &attr in &self.projection {
                if db.get_field(src, attr)? != db.get_field(view, attr)? {
                    out.push((src, view, attr));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{project_named, ProjectionOptions};
    use td_workload::figures;

    fn setup() -> (Database, MaterializedView, ObjId, ObjId, AttrId, AttrId) {
        let mut db = Database::new(figures::fig1());
        let src = db
            .create_named(
                "Employee",
                &[("SSN", Value::Int(1)), ("name", Value::Str("ada".into()))],
            )
            .unwrap();
        let d = project_named(
            db.schema_mut(),
            "Employee",
            &["SSN", "pay_rate"],
            &ProjectionOptions::default(),
        )
        .unwrap();
        let view = MaterializedView::materialize(&mut db, &d).unwrap();
        let v = view.view_of(src).unwrap();
        let ssn = db.schema().attr_id("SSN").unwrap();
        let name = db.schema().attr_id("name").unwrap();
        (db, view, src, v, ssn, name)
    }

    #[test]
    fn set_through_updates_both_sides() {
        let (mut db, view, src, v, ssn, _) = setup();
        view.set_through(&mut db, v, ssn, Value::Int(99)).unwrap();
        assert_eq!(db.get_field(src, ssn).unwrap(), Value::Int(99));
        assert_eq!(db.get_field(v, ssn).unwrap(), Value::Int(99));
        assert!(view.divergent(&db).unwrap().is_empty());
    }

    #[test]
    fn unprojected_attr_rejected() {
        let (mut db, view, src, v, _, name) = setup();
        let err = view
            .set_through(&mut db, v, name, Value::Str("x".into()))
            .unwrap_err();
        assert!(matches!(err, StoreError::AttrNotInType { .. }));
        // Neither side changed.
        assert_eq!(db.get_field(src, name).unwrap(), Value::Str("ada".into()));
    }

    #[test]
    fn foreign_object_rejected() {
        let (mut db, view, src, _, ssn, _) = setup();
        // The source itself is not a view object of this view.
        let err = view
            .set_through(&mut db, src, ssn, Value::Int(5))
            .unwrap_err();
        assert!(matches!(err, StoreError::BadObjId(_)));
    }

    #[test]
    fn type_error_leaves_pair_consistent() {
        let (mut db, view, _, v, ssn, _) = setup();
        let err = view
            .set_through(&mut db, v, ssn, Value::Str("oops".into()))
            .unwrap_err();
        assert!(matches!(err, StoreError::ValueTypeMismatch { .. }));
        assert!(view.divergent(&db).unwrap().is_empty());
    }

    #[test]
    fn push_and_pull_converge() {
        let (mut db, view, src, v, ssn, _) = setup();
        // Diverge via a direct write to the view object only.
        db.set_field(v, ssn, Value::Int(7)).unwrap();
        assert_eq!(view.divergent(&db).unwrap().len(), 1);
        assert_eq!(view.push(&mut db).unwrap(), 1);
        assert_eq!(db.get_field(src, ssn).unwrap(), Value::Int(7));
        assert!(view.divergent(&db).unwrap().is_empty());

        // Diverge via a direct write to the source.
        db.set_field(src, ssn, Value::Int(8)).unwrap();
        assert_eq!(view.pull(&mut db).unwrap(), 1);
        assert_eq!(db.get_field(v, ssn).unwrap(), Value::Int(8));

        // Idempotent when synchronized.
        assert_eq!(view.push(&mut db).unwrap(), 0);
        assert_eq!(view.pull(&mut db).unwrap(), 0);
    }
}
