//! Runtime values.

use std::fmt;
use td_model::{Literal, PrimType, ValueType};

use crate::object::ObjId;

/// A runtime value: a primitive, an object reference or null.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// Reference to a stored object.
    Ref(ObjId),
    /// The null reference.
    Null,
}

impl Value {
    /// The primitive kind, if this is a primitive.
    pub fn prim_type(&self) -> Option<PrimType> {
        match self {
            Value::Int(_) => Some(PrimType::Int),
            Value::Float(_) => Some(PrimType::Float),
            Value::Bool(_) => Some(PrimType::Bool),
            Value::Str(_) => Some(PrimType::Str),
            Value::Ref(_) | Value::Null => None,
        }
    }

    /// True when the value is compatible with the declared type
    /// (object-typed checks need the store and live in
    /// [`crate::object::Database::check_value`]).
    pub fn prim_compatible(&self, ty: ValueType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (v, ValueType::Prim(p)) => v.prim_type() == Some(p),
            (Value::Ref(_), ValueType::Object(_)) => true,
            _ => false,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float accessor (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Reference accessor.
    pub fn as_ref_id(&self) -> Option<ObjId> {
        match self {
            Value::Ref(o) => Some(*o),
            _ => None,
        }
    }
}

impl From<&Literal> for Value {
    fn from(l: &Literal) -> Self {
        match l {
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(f) => Value::Float(*f),
            Literal::Bool(b) => Value::Bool(*b),
            Literal::Str(s) => Value::Str(s.clone()),
            Literal::Null => Value::Null,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(o) => write!(f, "{o}"),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(3i64).as_float(), Some(3.0));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(&Literal::Null), Value::Null);
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn prim_compat() {
        assert!(Value::Int(1).prim_compatible(ValueType::INT));
        assert!(!Value::Int(1).prim_compatible(ValueType::STR));
        assert!(Value::Null.prim_compatible(ValueType::INT));
        assert!(Value::Ref(ObjId(0)).prim_compatible(ValueType::Object(td_model::TypeId(0))));
        assert!(!Value::Ref(ObjId(0)).prim_compatible(ValueType::BOOL));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
