//! # td-store — the OODB instantiation substrate
//!
//! The paper separates the *type derivation* problem (solved by
//! `td-core`) from the *type instantiation* problem — "the manipulation
//! of instances of the source types of the view to obtain the instances
//! of the type derived by the view operation" (§1) — which it leaves to
//! the host system. This crate is that host system: an in-memory object
//! database with
//!
//! * typed objects with flat state ([`Database`], [`Object`], [`Value`]),
//! * per-type direct extents and subtype-closed deep extents,
//! * an interpreter executing method bodies with true multi-method
//!   dispatch ([`Database::call`]),
//! * materialized and virtual view extents for derived types
//!   ([`MaterializedView`], [`VirtualView`]), with write-through /
//!   push / pull synchronization ([`update`]).
//!
//! Because the interpreter exists, behavior preservation stops being a
//! theorem and becomes a test: run the same calls on the same objects
//! before and after a derivation and compare the values.
//!
//! ```
//! use td_store::{Database, Value};
//! use td_workload::figures;
//!
//! let mut db = Database::new(figures::fig1());
//! let o = db.create_named("Employee", &[
//!     ("date_of_birth", Value::Int(1990)),
//!     ("pay_rate", Value::Float(50.0)),
//!     ("hrs_worked", Value::Float(10.0)),
//! ]).unwrap();
//! assert_eq!(db.call_named("income", &[Value::Ref(o)]).unwrap(), Value::Float(500.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod error;
pub mod interp;
pub mod object;
pub mod text;
pub mod txn;
pub mod update;
pub mod value;
pub mod view;

pub use error::{Result, StoreError};
pub use object::{Database, ObjId, Object};
pub use text::{parse_objects, DataError};
pub use txn::Savepoint;
pub use value::Value;
pub use view::{MaterializedView, VirtualView};
