//! A small data definition language: populate a [`Database`] from text.
//!
//! Complements the schema DSL in [`td_model::text`] — a schema file
//! defines the types, a data file defines named objects:
//!
//! ```text
//! obj alice = Employee {
//!     SSN = 12345
//!     name = "Alice"
//!     pay_rate = 55.0
//!     manager = bob        # reference to another named object
//! }
//! obj bob = Manager { SSN = 1 }
//! ```
//!
//! References may be forward (objects are created first, fields assigned
//! second). The lexer is shared with the schema DSL.

use std::collections::HashMap;
use std::fmt;
use td_model::text::{lex, LexError, Token, TokenKind};

use crate::error::StoreError;
use crate::object::{Database, ObjId};
use crate::value::Value;

/// Errors from parsing data text.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Tokenization failed.
    Lex(LexError),
    /// The token stream did not match the grammar.
    Parse {
        /// Description.
        message: String,
        /// 1-based line.
        line: usize,
    },
    /// Creating or populating an object failed.
    Store {
        /// The underlying store error.
        error: StoreError,
        /// 1-based line of the object declaration.
        line: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Lex(e) => write!(f, "lex error at {e}"),
            DataError::Parse { message, line } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Store { error, line } => write!(f, "data error at line {line}: {error}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Store { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct ObjDecl {
    name: String,
    ty: String,
    fields: Vec<(String, RawValue, usize)>,
    line: usize,
}

#[derive(Debug)]
enum RawValue {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    Ref(String),
}

/// Parses object declarations and creates them in `db`. Returns the
/// name → object-id map.
pub fn parse_objects(db: &mut Database, src: &str) -> Result<HashMap<String, ObjId>, DataError> {
    let tokens = lex(src).map_err(DataError::Lex)?;
    let decls = parse_decls(&tokens)?;

    // Duplicate names?
    let mut by_name: HashMap<String, ObjId> = HashMap::new();

    // Phase 1: create every object (all fields null) so references may be
    // forward.
    for decl in &decls {
        if by_name.contains_key(&decl.name) {
            return Err(DataError::Parse {
                message: format!("duplicate object name `{}`", decl.name),
                line: decl.line,
            });
        }
        let ty = db
            .schema()
            .type_id(&decl.ty)
            .map_err(|e| DataError::Store {
                error: StoreError::Model(e),
                line: decl.line,
            })?;
        let id = db.create(ty, vec![]).map_err(|error| DataError::Store {
            error,
            line: decl.line,
        })?;
        by_name.insert(decl.name.clone(), id);
    }

    // Phase 2: assign fields.
    for decl in &decls {
        let obj = by_name[&decl.name];
        for (attr_name, raw, line) in &decl.fields {
            let attr = db
                .schema()
                .attr_id(attr_name)
                .map_err(|e| DataError::Store {
                    error: StoreError::Model(e),
                    line: *line,
                })?;
            let value = match raw {
                RawValue::Int(i) => Value::Int(*i),
                RawValue::Float(x) => Value::Float(*x),
                RawValue::Str(s) => Value::Str(s.clone()),
                RawValue::Bool(b) => Value::Bool(*b),
                RawValue::Null => Value::Null,
                RawValue::Ref(name) => match by_name.get(name) {
                    Some(&id) => Value::Ref(id),
                    None => {
                        return Err(DataError::Parse {
                            message: format!("unknown object `{name}`"),
                            line: *line,
                        })
                    }
                },
            };
            db.set_field(obj, attr, value)
                .map_err(|error| DataError::Store { error, line: *line })?;
        }
    }
    Ok(by_name)
}

fn parse_decls(tokens: &[Token]) -> Result<Vec<ObjDecl>, DataError> {
    let mut pos = 0usize;
    let mut decls = Vec::new();

    let err = |message: String, line: usize| DataError::Parse { message, line };

    macro_rules! tok {
        () => {
            &tokens[pos.min(tokens.len() - 1)]
        };
    }

    while tok!().kind != TokenKind::Eof {
        // `obj NAME = TYPE { fields }`
        let t = tok!().clone();
        let TokenKind::Ident(kw) = &t.kind else {
            return Err(err(format!("expected `obj`, found {}", t.kind), t.line));
        };
        if kw != "obj" {
            return Err(err(format!("expected `obj`, found `{kw}`"), t.line));
        }
        pos += 1;
        let t = tok!().clone();
        let TokenKind::Ident(name) = t.kind else {
            return Err(err(
                format!("expected object name, found {}", t.kind),
                t.line,
            ));
        };
        pos += 1;
        if tok!().kind != TokenKind::Assign {
            let t = tok!();
            return Err(err(format!("expected `=`, found {}", t.kind), t.line));
        }
        pos += 1;
        let t = tok!().clone();
        let TokenKind::Ident(ty) = t.kind else {
            return Err(err(format!("expected type name, found {}", t.kind), t.line));
        };
        let decl_line = t.line;
        pos += 1;
        if tok!().kind != TokenKind::LBrace {
            let t = tok!();
            return Err(err(format!("expected `{{`, found {}", t.kind), t.line));
        }
        pos += 1;

        let mut fields = Vec::new();
        while tok!().kind != TokenKind::RBrace {
            let t = tok!().clone();
            let TokenKind::Ident(attr) = t.kind else {
                return Err(err(
                    format!("expected attribute name, found {}", t.kind),
                    t.line,
                ));
            };
            let field_line = t.line;
            pos += 1;
            if tok!().kind != TokenKind::Assign {
                let t = tok!();
                return Err(err(format!("expected `=`, found {}", t.kind), t.line));
            }
            pos += 1;
            let t = tok!().clone();
            let (raw, extra) = match &t.kind {
                TokenKind::Int(i) => (RawValue::Int(*i), 0),
                TokenKind::Float(x) => (RawValue::Float(*x), 0),
                TokenKind::Str(s) => (RawValue::Str(s.clone()), 0),
                TokenKind::Minus => {
                    let t2 = tokens.get(pos + 1).cloned();
                    match t2.map(|t| t.kind) {
                        Some(TokenKind::Int(i)) => (RawValue::Int(-i), 1),
                        Some(TokenKind::Float(x)) => (RawValue::Float(-x), 1),
                        _ => return Err(err("expected number after `-`".into(), t.line)),
                    }
                }
                TokenKind::Ident(id) => match id.as_str() {
                    "true" => (RawValue::Bool(true), 0),
                    "false" => (RawValue::Bool(false), 0),
                    "null" => (RawValue::Null, 0),
                    other => (RawValue::Ref(other.to_string()), 0),
                },
                other => {
                    return Err(err(format!("expected a value, found {other}"), t.line));
                }
            };
            pos += 1 + extra;
            fields.push((attr, raw, field_line));
        }
        pos += 1; // consume `}`
        decls.push(ObjDecl {
            name,
            ty,
            fields,
            line: decl_line,
        });
    }
    Ok(decls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workload::figures;

    fn db() -> Database {
        Database::new(figures::fig1())
    }

    #[test]
    fn objects_parse_and_populate() {
        let mut db = db();
        let names = parse_objects(
            &mut db,
            r#"
            obj alice = Employee {
                SSN = 12345
                name = "Alice"
                pay_rate = 55.0
                hrs_worked = 38.0
                date_of_birth = 1990
            }
            obj bob = Person { SSN = 2  name = "Bob" }
            "#,
        )
        .unwrap();
        assert_eq!(names.len(), 2);
        let alice = names["alice"];
        assert_eq!(
            db.call_named("income", &[Value::Ref(alice)]).unwrap(),
            Value::Float(2090.0)
        );
        let bob = names["bob"];
        let name = db.schema().attr_id("name").unwrap();
        assert_eq!(db.get_field(bob, name).unwrap(), Value::Str("Bob".into()));
    }

    #[test]
    fn forward_references_between_objects() {
        let mut s = td_model::Schema::new();
        let person = s.add_type("Person", &[]).unwrap();
        s.add_attr("friend", td_model::ValueType::Object(person), person)
            .unwrap();
        let mut db = Database::new(s);
        let names = parse_objects(
            &mut db,
            r#"
            obj a = Person { friend = b }
            obj b = Person { friend = a }
            "#,
        )
        .unwrap();
        let friend = db.schema().attr_id("friend").unwrap();
        assert_eq!(
            db.get_field(names["a"], friend).unwrap(),
            Value::Ref(names["b"])
        );
        assert_eq!(
            db.get_field(names["b"], friend).unwrap(),
            Value::Ref(names["a"])
        );
    }

    #[test]
    fn negative_numbers_booleans_and_null() {
        let mut s = td_model::Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        s.add_attr("i", td_model::ValueType::INT, a).unwrap();
        s.add_attr("f", td_model::ValueType::FLOAT, a).unwrap();
        s.add_attr("b", td_model::ValueType::BOOL, a).unwrap();
        s.add_attr("s", td_model::ValueType::STR, a).unwrap();
        let mut db = Database::new(s);
        let names = parse_objects(
            &mut db,
            r#"obj o = A { i = -3  f = -2.5  b = true  s = null }"#,
        )
        .unwrap();
        let o = names["o"];
        let get = |n: &str| db.get_field(o, db.schema().attr_id(n).unwrap()).unwrap();
        assert_eq!(get("i"), Value::Int(-3));
        assert_eq!(get("f"), Value::Float(-2.5));
        assert_eq!(get("b"), Value::Bool(true));
        assert_eq!(get("s"), Value::Null);
    }

    #[test]
    fn errors_are_positioned() {
        let mut db = db();
        let e = parse_objects(&mut db, "obj x = Nope { }").unwrap_err();
        assert!(e.to_string().contains("Nope"));
        let e = parse_objects(&mut db, "obj x = Person { pay_rate = 1.0 }").unwrap_err();
        assert!(e.to_string().contains("not part of type"));
        let e = parse_objects(&mut db, "obj x = Person { SSN = missing_obj }").unwrap_err();
        assert!(e.to_string().contains("unknown object"));
        let e = parse_objects(&mut db, "obj x = Person { }\nobj x = Person { }").unwrap_err();
        assert!(e.to_string().contains("duplicate object name"));
        let e = parse_objects(&mut db, "notobj").unwrap_err();
        assert!(e.to_string().contains("expected `obj`"));
    }

    #[test]
    fn type_mismatch_reported_with_line() {
        let mut db = db();
        let e = parse_objects(&mut db, "obj x = Person {\n  SSN = \"oops\"\n}").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("wrong type"), "{msg}");
    }
}
