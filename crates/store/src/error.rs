//! Error type for the object store and interpreter.

use std::fmt;
use td_model::{AttrId, GfId, ModelError, TypeId};

use crate::object::ObjId;

/// Errors raised by object creation, attribute access and method
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An underlying schema operation failed.
    Model(ModelError),
    /// A referenced object id is out of range.
    BadObjId(ObjId),
    /// An attribute was supplied or requested that is not part of the
    /// object's cumulative state.
    AttrNotInType {
        /// The attribute.
        attr: AttrId,
        /// The object's type.
        ty: TypeId,
    },
    /// A supplied value does not match the attribute's declared type.
    ValueTypeMismatch {
        /// The attribute.
        attr: AttrId,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A generic-function call had no applicable method for the actual
    /// argument types.
    NoApplicableMethod {
        /// The called generic function's name.
        gf: String,
        /// Rendered actual argument types.
        args: String,
    },
    /// A call passed the wrong number of arguments.
    ArityMismatch {
        /// The called generic function.
        gf: GfId,
        /// Declared arity.
        expected: usize,
        /// Supplied argument count.
        got: usize,
    },
    /// A runtime type error inside a method body (bad operand kinds,
    /// null dereference, …).
    TypeError(String),
    /// Method-call recursion exceeded the interpreter's depth limit.
    DepthExceeded(usize),
    /// Integer division by zero.
    DivisionByZero,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Model(e) => write!(f, "schema error: {e}"),
            StoreError::BadObjId(o) => write!(f, "object id {o} out of range"),
            StoreError::AttrNotInType { attr, ty } => {
                write!(f, "attribute {attr} is not part of type {ty}")
            }
            StoreError::ValueTypeMismatch { attr, detail } => {
                write!(f, "value for attribute {attr} has wrong type: {detail}")
            }
            StoreError::NoApplicableMethod { gf, args } => {
                write!(f, "no applicable method for {gf}({args})")
            }
            StoreError::ArityMismatch { gf, expected, got } => {
                write!(f, "{gf} expects {expected} arguments, got {got}")
            }
            StoreError::TypeError(msg) => write!(f, "runtime type error: {msg}"),
            StoreError::DepthExceeded(d) => write!(f, "call depth limit {d} exceeded"),
            StoreError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for StoreError {
    fn from(e: ModelError) -> Self {
        StoreError::Model(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
