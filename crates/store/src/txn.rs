//! Snapshot transactions for the [`Database`].
//!
//! Multi-step operations (materializing a view, a batch of writes through
//! an updatable view) should be all-or-nothing. The database is a value
//! (schema + objects), so transactions are snapshot-based: `begin` clones
//! the state, `rollback` restores it, `commit` discards the snapshot.
//! Transactions nest (a stack of snapshots).
//!
//! [`Database::transact`] wraps the pattern: run a closure, committing on
//! `Ok` and rolling back on `Err`.

use crate::error::Result;
use crate::object::Database;

/// Saved state for one open transaction.
#[derive(Debug, Clone)]
pub struct Savepoint {
    db: Database,
}

impl Database {
    /// Opens a transaction: captures the current state.
    pub fn begin(&self) -> Savepoint {
        Savepoint { db: self.clone() }
    }

    /// Abandons changes made since the savepoint was taken.
    pub fn rollback(&mut self, savepoint: Savepoint) {
        *self = savepoint.db;
    }

    /// Runs `f` transactionally: on `Ok` the changes stay, on `Err` the
    /// database is restored to its pre-call state and the error returned.
    pub fn transact<T>(&mut self, f: impl FnOnce(&mut Database) -> Result<T>) -> Result<T> {
        let savepoint = self.begin();
        match f(self) {
            Ok(v) => Ok(v),
            Err(e) => {
                self.rollback(savepoint);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;
    use crate::value::Value;
    use td_workload::figures;

    #[test]
    fn rollback_restores_objects_and_schema() {
        let mut db = Database::new(figures::fig1());
        let o = db
            .create_named("Person", &[("SSN", Value::Int(1))])
            .unwrap();
        let save = db.begin();

        // Mutate objects AND the schema.
        db.create_named("Person", &[("SSN", Value::Int(2))])
            .unwrap();
        let ssn = db.schema().attr_id("SSN").unwrap();
        db.set_field(o, ssn, Value::Int(99)).unwrap();
        td_core::project_named(
            db.schema_mut(),
            "Employee",
            &["SSN"],
            &td_core::ProjectionOptions::fast(),
        )
        .unwrap();
        assert_eq!(db.n_objects(), 2);
        assert!(db.schema().type_id("^Employee").is_ok());

        db.rollback(save);
        assert_eq!(db.n_objects(), 1);
        assert_eq!(db.get_field(o, ssn).unwrap(), Value::Int(1));
        assert!(db.schema().type_id("^Employee").is_err());
    }

    #[test]
    fn transact_commits_on_ok() {
        let mut db = Database::new(figures::fig1());
        let created = db
            .transact(|db| db.create_named("Person", &[("SSN", Value::Int(7))]))
            .unwrap();
        let ssn = db.schema().attr_id("SSN").unwrap();
        assert_eq!(db.get_field(created, ssn).unwrap(), Value::Int(7));
    }

    #[test]
    fn transact_rolls_back_on_err() {
        let mut db = Database::new(figures::fig1());
        let err = db
            .transact(|db| {
                db.create_named("Person", &[("SSN", Value::Int(1))])?;
                db.create_named("Person", &[("SSN", Value::Str("bad".into()))])
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::ValueTypeMismatch { .. }));
        // The first create was rolled back with the second's failure.
        assert_eq!(db.n_objects(), 0);
    }

    #[test]
    fn transactions_nest() {
        let mut db = Database::new(figures::fig1());
        db.transact(|db| {
            db.create_named("Person", &[])?;
            let inner = db.transact(|db| {
                db.create_named("Person", &[])?;
                Err::<(), _>(StoreError::DivisionByZero)
            });
            assert!(inner.is_err());
            assert_eq!(db.n_objects(), 1); // inner rolled back, outer intact
            Ok(())
        })
        .unwrap();
        assert_eq!(db.n_objects(), 1);
    }
}
