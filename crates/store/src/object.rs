//! Objects, extents and the [`Database`].
//!
//! Types and type extents are decoupled in the paper's model (§1, citing
//! the OODB manifesto); the store keeps a *direct* extent per type and
//! computes *deep* extents (instances of a type or any subtype) on
//! demand, which is what inclusion polymorphism means operationally.

use std::collections::HashMap;
use std::fmt;
use td_model::{AttrId, Schema, TypeId, ValueType};

use crate::error::{Result, StoreError};
use crate::value::Value;

/// Identifies a stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Raw index accessor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A stored object: its (most specific) type and a flat field map holding
/// both local and inherited attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    /// The object's type.
    pub ty: TypeId,
    fields: HashMap<AttrId, Value>,
}

impl Object {
    /// Reads a field (`None` when the attribute is not part of the
    /// object's state).
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.fields.get(&attr)
    }

    /// Iterates `(attribute, value)` pairs in unspecified order.
    pub fn fields(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.fields.iter().map(|(&a, v)| (a, v))
    }
}

/// An in-memory object database bound to a [`Schema`].
///
/// The schema is owned (and mutable through [`Database::schema_mut`])
/// because deriving view types rewrites it in place; existing objects are
/// unaffected by a derivation — that is precisely the state-preservation
/// guarantee the paper proves and [`td_core::invariants`] checks.
#[derive(Debug, Clone)]
pub struct Database {
    schema: Schema,
    objects: Vec<Object>,
    direct_extents: HashMap<TypeId, Vec<ObjId>>,
}

impl Database {
    /// Wraps a schema in an empty database.
    pub fn new(schema: Schema) -> Database {
        Database {
            schema,
            objects: Vec::new(),
            direct_extents: HashMap::new(),
        }
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (used to derive view types with
    /// `td_core::project`).
    #[inline]
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Verifies that `value` may be stored in `attr`.
    pub fn check_value(&self, attr: AttrId, value: &Value) -> Result<()> {
        let ty = self.schema.attr(attr).ty;
        match (value, ty) {
            (Value::Null, _) => Ok(()),
            (Value::Ref(o), ValueType::Object(t)) => {
                let obj = self.object(*o)?;
                if self.schema.is_subtype(obj.ty, t) {
                    Ok(())
                } else {
                    Err(StoreError::ValueTypeMismatch {
                        attr,
                        detail: format!(
                            "object of type {} is not a subtype of {}",
                            self.schema.type_name(obj.ty),
                            self.schema.type_name(t)
                        ),
                    })
                }
            }
            (v, ty) if v.prim_compatible(ty) => Ok(()),
            (v, ty) => Err(StoreError::ValueTypeMismatch {
                attr,
                detail: format!("{v} is not a {ty}"),
            }),
        }
    }

    /// Creates an object of type `ty`. Every supplied attribute must be
    /// part of the type's cumulative state and type-compatible; attributes
    /// not supplied are initialized to [`Value::Null`].
    pub fn create(&mut self, ty: TypeId, values: Vec<(AttrId, Value)>) -> Result<ObjId> {
        self.schema
            .is_live(ty)
            .then_some(())
            .ok_or(StoreError::Model(td_model::ModelError::BadTypeId(ty)))?;
        let cumulative = self.schema.cumulative_attrs(ty);
        let mut fields: HashMap<AttrId, Value> =
            cumulative.iter().map(|&a| (a, Value::Null)).collect();
        for (attr, value) in values {
            if !cumulative.contains(&attr) {
                return Err(StoreError::AttrNotInType { attr, ty });
            }
            self.check_value(attr, &value)?;
            fields.insert(attr, value);
        }
        let id = ObjId(u32::try_from(self.objects.len()).expect("store overflow"));
        self.objects.push(Object { ty, fields });
        self.direct_extents.entry(ty).or_default().push(id);
        Ok(id)
    }

    /// Creates an object addressing attributes by name.
    pub fn create_named(&mut self, ty_name: &str, values: &[(&str, Value)]) -> Result<ObjId> {
        let ty = self.schema.type_id(ty_name)?;
        let resolved = values
            .iter()
            .map(|(n, v)| Ok((self.schema.attr_id(n)?, v.clone())))
            .collect::<Result<Vec<_>>>()?;
        self.create(ty, resolved)
    }

    /// Immutable object access.
    pub fn object(&self, id: ObjId) -> Result<&Object> {
        self.objects.get(id.index()).ok_or(StoreError::BadObjId(id))
    }

    /// Reads `attr` from `obj`, checking availability.
    pub fn get_field(&self, obj: ObjId, attr: AttrId) -> Result<Value> {
        let o = self.object(obj)?;
        o.get(attr)
            .cloned()
            .ok_or(StoreError::AttrNotInType { attr, ty: o.ty })
    }

    /// Writes `attr` on `obj`, checking availability and value type.
    pub fn set_field(&mut self, obj: ObjId, attr: AttrId, value: Value) -> Result<()> {
        self.check_value(attr, &value)?;
        let o = self
            .objects
            .get_mut(obj.index())
            .ok_or(StoreError::BadObjId(obj))?;
        match o.fields.get_mut(&attr) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(StoreError::AttrNotInType { attr, ty: o.ty }),
        }
    }

    /// Number of stored objects.
    #[inline]
    pub fn n_objects(&self) -> usize {
        self.objects.len()
    }

    /// The objects whose most-specific type is exactly `ty`.
    pub fn direct_extent(&self, ty: TypeId) -> &[ObjId] {
        self.direct_extents
            .get(&ty)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The deep extent of `ty`: every object whose type is `ty` or a
    /// subtype — "every instance of A is also an instance of B" (§2).
    pub fn deep_extent(&self, ty: TypeId) -> Vec<ObjId> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| self.schema.is_subtype(o.ty, ty))
            .map(|(i, _)| ObjId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_db() -> (Database, TypeId, TypeId, AttrId, AttrId) {
        let mut s = Schema::new();
        let person = s.add_type("Person", &[]).unwrap();
        let employee = s.add_type("Employee", &[person]).unwrap();
        let name = s.add_attr("name", ValueType::STR, person).unwrap();
        let pay = s.add_attr("pay", ValueType::FLOAT, employee).unwrap();
        (Database::new(s), person, employee, name, pay)
    }

    #[test]
    fn create_and_read() {
        let (mut db, _p, e, name, pay) = person_db();
        let o = db
            .create(e, vec![(name, "ada".into()), (pay, Value::Float(99.0))])
            .unwrap();
        assert_eq!(db.get_field(o, name).unwrap(), Value::Str("ada".into()));
        assert_eq!(db.get_field(o, pay).unwrap(), Value::Float(99.0));
    }

    #[test]
    fn missing_fields_default_to_null() {
        let (mut db, _p, e, name, pay) = person_db();
        let o = db.create(e, vec![]).unwrap();
        assert_eq!(db.get_field(o, name).unwrap(), Value::Null);
        assert_eq!(db.get_field(o, pay).unwrap(), Value::Null);
    }

    #[test]
    fn person_cannot_have_employee_state() {
        let (mut db, p, _e, _name, pay) = person_db();
        let err = db.create(p, vec![(pay, Value::Float(1.0))]).unwrap_err();
        assert!(matches!(err, StoreError::AttrNotInType { .. }));
        let o = db.create(p, vec![]).unwrap();
        assert!(matches!(
            db.get_field(o, pay),
            Err(StoreError::AttrNotInType { .. })
        ));
        assert!(matches!(
            db.set_field(o, pay, Value::Float(2.0)),
            Err(StoreError::AttrNotInType { .. })
        ));
    }

    #[test]
    fn value_types_enforced() {
        let (mut db, _p, e, name, _pay) = person_db();
        let err = db.create(e, vec![(name, Value::Int(3))]).unwrap_err();
        assert!(matches!(err, StoreError::ValueTypeMismatch { .. }));
        // Null is always allowed.
        db.create(e, vec![(name, Value::Null)]).unwrap();
    }

    #[test]
    fn ref_values_checked_against_subtyping() {
        let mut s = Schema::new();
        let person = s.add_type("Person", &[]).unwrap();
        let dept = s.add_type("Dept", &[]).unwrap();
        let boss = s.add_attr("boss", ValueType::Object(person), dept).unwrap();
        let mut db = Database::new(s);
        let p = db.create(person, vec![]).unwrap();
        let d = db.create(dept, vec![(boss, Value::Ref(p))]).unwrap();
        assert_eq!(db.get_field(d, boss).unwrap(), Value::Ref(p));
        // A Dept is not a Person.
        let d2 = db.create(dept, vec![]).unwrap();
        let err = db.set_field(d2, boss, Value::Ref(d)).unwrap_err();
        assert!(matches!(err, StoreError::ValueTypeMismatch { .. }));
    }

    #[test]
    fn extents_are_deep_through_subtyping() {
        let (mut db, p, e, _name, _pay) = person_db();
        let o1 = db.create(p, vec![]).unwrap();
        let o2 = db.create(e, vec![]).unwrap();
        assert_eq!(db.direct_extent(p), &[o1]);
        assert_eq!(db.direct_extent(e), &[o2]);
        assert_eq!(db.deep_extent(p), vec![o1, o2]);
        assert_eq!(db.deep_extent(e), vec![o2]);
    }
}
