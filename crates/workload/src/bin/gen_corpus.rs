//! Writes the pathological lint corpus (or, with `--analysis`, the
//! interprocedural analysis corpus) to disk for the CI gates.
//!
//! ```text
//! gen_corpus <out-dir> [n-cases] [seed] [--analysis]
//! ```
//!
//! Emits one `.td` file per case plus `manifest.txt`, whose lines are the
//! positional arguments for `tdv lint` (or `tdv analyze`) on that case:
//!
//! ```text
//! case_000_ambiguous.td
//! case_002_trap.td T t_a1,t_a2
//! ```
//!
//! CI runs the verb with `--deny warnings` on every line and requires
//! each one to exit nonzero — the corpora are the gates' negative
//! fixture sets. The analysis corpus additionally must pass the ordinary
//! `tdv lint`: its defects are visible only interprocedurally.

use std::fmt::Write as _;
use td_model::text::schema_to_text;
use td_workload::{analysis_corpus, pathological_corpus};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let analysis = args.iter().any(|a| a == "--analysis");
    args.retain(|a| a != "--analysis");
    let Some(out_dir) = args.first() else {
        eprintln!("usage: gen_corpus <out-dir> [n-cases] [seed] [--analysis]");
        std::process::exit(2);
    };
    let n: usize = args.get(1).map_or(9, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("gen_corpus: `{v}` is not a case count");
            std::process::exit(2);
        })
    });
    let seed: u64 = args.get(2).map_or(0xBAD, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("gen_corpus: `{v}` is not a seed");
            std::process::exit(2);
        })
    });

    std::fs::create_dir_all(out_dir).expect("create corpus directory");
    let cases = if analysis {
        analysis_corpus(n, seed)
    } else {
        pathological_corpus(n, seed)
    };
    let mut manifest = String::new();
    for (i, case) in cases.into_iter().enumerate() {
        let file = format!("case_{i:03}_{}.td", case.name);
        let path = format!("{out_dir}/{file}");
        std::fs::write(&path, schema_to_text(&case.schema)).expect("write case schema");
        let mut line = file;
        if let Some((source, projection)) = &case.request {
            let attrs: Vec<&str> = projection
                .iter()
                .map(|&a| case.schema.attr_name(a))
                .collect();
            let _ = write!(
                line,
                " {} {}",
                case.schema.type_name(*source),
                attrs.join(",")
            );
        }
        manifest.push_str(&line);
        manifest.push('\n');
    }
    std::fs::write(format!("{out_dir}/manifest.txt"), manifest).expect("write manifest");
    println!(
        "wrote {n} {} cases to {out_dir}",
        if analysis { "analysis" } else { "lint" }
    );
}
