//! Writes one generated random schema as TDL text — the CI
//! `snapshot-gate` job uses this to build the large cold-start fixture
//! it snapshots and reloads.
//!
//! ```text
//! gen_schema <out.td> [n-types] [seed]
//! ```
//!
//! The generator is deterministic in its parameters, so the same
//! arguments reproduce the same file on any machine.

use td_model::text::schema_to_text;
use td_workload::wide_schema;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(out) = args.first() else {
        eprintln!("usage: gen_schema <out.td> [n-types] [seed]");
        std::process::exit(2);
    };
    let n_types: usize = args.get(1).map_or(10_000, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("gen_schema: `{v}` is not a type count");
            std::process::exit(2);
        })
    });
    let seed: u64 = args.get(2).map_or(0x5EED, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("gen_schema: `{v}` is not a seed");
            std::process::exit(2);
        })
    });

    let schema = wide_schema(n_types, seed);
    std::fs::write(out, schema_to_text(&schema)).expect("write schema text");
    println!(
        "wrote {out}: {} types, {} methods",
        schema.live_type_ids().count(),
        schema.n_methods()
    );
}
