//! A realistic mid-size scenario: a university schema with diamond
//! inheritance and genuine multi-methods.
//!
//! The paper's figures are minimal by design; this scenario is what a
//! downstream OODB schema actually looks like — a `TA` that is both a
//! `Student` and an `Employee` (diamond through `Person`), compensation
//! logic split across overrides, and a binary multi-method
//! `assign(TA, Section)` whose applicability depends on state from *both*
//! argument hierarchies. Used by integration tests and available for
//! benches.

use td_model::{BodyBuilder, Expr, MethodKind, Schema, Specializer, ValueType};

/// Builds the university schema:
///
/// ```text
/// Person {pid, name, birth_year}
/// Student : Person {program, credits}
/// Employee : Person {salary, dept_id}
/// Faculty : Employee {tenure}
/// TA : Student(1), Employee(2) {stipend_pct}
/// Section {sec_id, enrollment, weekly_hours}
/// ```
///
/// Methods:
/// * `age(Person)` — birth_year;
/// * `comp(Employee)` — salary; `comp(TA)` override — salary × stipend_pct;
/// * `load(Student)` — credits;
/// * `assign(TA, Section)` — multi-method reading `stipend_pct` (left) and
///   `weekly_hours` (right);
/// * `evaluate(Faculty)` — tenure + salary.
pub fn university() -> Schema {
    let mut s = Schema::new();
    let person = s.add_type("Person", &[]).expect("fresh");
    let student = s.add_type("Student", &[person]).expect("fresh");
    let employee = s.add_type("Employee", &[person]).expect("fresh");
    let faculty = s.add_type("Faculty", &[employee]).expect("fresh");
    let ta = s.add_type("TA", &[student, employee]).expect("fresh");
    let section = s.add_type("Section", &[]).expect("fresh");

    for (name, ty, owner) in [
        ("pid", ValueType::INT, person),
        ("name", ValueType::STR, person),
        ("birth_year", ValueType::INT, person),
        ("program", ValueType::STR, student),
        ("credits", ValueType::INT, student),
        ("salary", ValueType::FLOAT, employee),
        ("dept_id", ValueType::INT, employee),
        ("tenure", ValueType::BOOL, faculty),
        ("stipend_pct", ValueType::FLOAT, ta),
        ("sec_id", ValueType::INT, section),
        ("enrollment", ValueType::INT, section),
        ("weekly_hours", ValueType::INT, section),
    ] {
        let a = s.add_attr(name, ty, owner).expect("unique");
        s.add_accessors(a).expect("accessors");
    }

    let get = |s: &Schema, n: &str| s.gf_id(&format!("get_{n}")).expect("accessor exists");

    // age(Person) = 2026 - birth_year
    let age = s.add_gf("age", 1, Some(ValueType::INT)).expect("fresh");
    let g_by = get(&s, "birth_year");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::binop(
        td_model::BinOp::Sub,
        Expr::int(2026),
        Expr::call(g_by, vec![Expr::Param(0)]),
    ));
    s.add_method(
        age,
        "age",
        vec![Specializer::Type(person)],
        MethodKind::General(bb.finish()),
        Some(ValueType::INT),
    )
    .expect("fresh");

    // comp(Employee) = salary; comp(TA) = salary * stipend_pct
    let comp = s.add_gf("comp", 1, Some(ValueType::FLOAT)).expect("fresh");
    let g_salary = get(&s, "salary");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::call(g_salary, vec![Expr::Param(0)]));
    s.add_method(
        comp,
        "comp_employee",
        vec![Specializer::Type(employee)],
        MethodKind::General(bb.finish()),
        Some(ValueType::FLOAT),
    )
    .expect("fresh");
    let g_stipend = get(&s, "stipend_pct");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::binop(
        td_model::BinOp::Mul,
        Expr::call(g_salary, vec![Expr::Param(0)]),
        Expr::call(g_stipend, vec![Expr::Param(0)]),
    ));
    s.add_method(
        comp,
        "comp_ta",
        vec![Specializer::Type(ta)],
        MethodKind::General(bb.finish()),
        Some(ValueType::FLOAT),
    )
    .expect("fresh");

    // load(Student) = credits
    let load = s.add_gf("load", 1, Some(ValueType::INT)).expect("fresh");
    let g_credits = get(&s, "credits");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::call(g_credits, vec![Expr::Param(0)]));
    s.add_method(
        load,
        "load",
        vec![Specializer::Type(student)],
        MethodKind::General(bb.finish()),
        Some(ValueType::INT),
    )
    .expect("fresh");

    // assign(TA, Section) = stipend_pct(left) used against
    // weekly_hours(right): a genuine binary multi-method.
    let assign = s.add_gf("assign", 2, Some(ValueType::BOOL)).expect("fresh");
    let g_hours = get(&s, "weekly_hours");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::binop(
        td_model::BinOp::Lt,
        Expr::call(g_hours, vec![Expr::Param(1)]),
        Expr::binop(
            td_model::BinOp::Mul,
            Expr::call(g_stipend, vec![Expr::Param(0)]),
            Expr::int(40),
        ),
    ));
    s.add_method(
        assign,
        "assign_ta_section",
        vec![Specializer::Type(ta), Specializer::Type(section)],
        MethodKind::General(bb.finish()),
        Some(ValueType::BOOL),
    )
    .expect("fresh");

    // evaluate(Faculty) = tenure || salary < 100k
    let evaluate = s
        .add_gf("evaluate", 1, Some(ValueType::BOOL))
        .expect("fresh");
    let g_tenure = get(&s, "tenure");
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::binop(
        td_model::BinOp::Or,
        Expr::call(g_tenure, vec![Expr::Param(0)]),
        Expr::binop(
            td_model::BinOp::Lt,
            Expr::call(g_salary, vec![Expr::Param(0)]),
            Expr::Lit(td_model::Literal::Float(100_000.0)),
        ),
    ));
    s.add_method(
        evaluate,
        "evaluate",
        vec![Specializer::Type(faculty)],
        MethodKind::General(bb.finish()),
        Some(ValueType::BOOL),
    )
    .expect("fresh");

    s.validate().expect("university schema is well-formed");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let s = university();
        let ta = s.type_id("TA").unwrap();
        let person = s.type_id("Person").unwrap();
        assert!(s.is_subtype(ta, person));
        // The diamond: TA reaches Person through both parents, inheriting
        // pid exactly once.
        assert_eq!(s.cumulative_attrs(ta).len(), 8);
        assert_eq!(s.cpl(ta).unwrap().len(), 4); // TA, Student, Employee, Person
                                                 // 12 attrs × 2 accessors + 6 general methods.
        assert_eq!(s.n_methods(), 30);
    }

    #[test]
    fn ta_dispatch_prefers_its_override() {
        use td_model::CallArg;
        let s = university();
        let ta = s.type_id("TA").unwrap();
        let comp = s.gf_id("comp").unwrap();
        let m = s
            .most_specific(comp, &[CallArg::Object(ta)])
            .unwrap()
            .unwrap();
        assert_eq!(s.method_label(m), "comp_ta");
        let employee = s.type_id("Employee").unwrap();
        let m = s
            .most_specific(comp, &[CallArg::Object(employee)])
            .unwrap()
            .unwrap();
        assert_eq!(s.method_label(m), "comp_employee");
    }
}
