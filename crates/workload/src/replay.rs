//! Deterministic server request streams.
//!
//! The derivation server (td-server) is exercised by three very
//! different drivers — the loopback end-to-end tests, the CI smoke job
//! and the `serve_warm_vs_cold` repro experiment — and all three need
//! the same thing: a reproducible, mixed-endpoint sequence of request
//! bodies over a known schema. This module generates exactly that, with
//! no HTTP knowledge: a [`Replay`] is plain data (paths + JSON bodies),
//! and whoever holds it decides whether to POST it over a socket or feed
//! it straight into the server's dispatch table.
//!
//! Determinism matters for the same reason it does in
//! [`batch_requests`]: given the same seed, two
//! runs produce byte-identical bodies, so sequential and concurrent
//! executions of a replay can be compared response-by-response.

use std::collections::BTreeSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use td_model::text::schema_to_text;
use td_model::{AttrId, Schema, TypeId};

use crate::gen::{batch_requests, deepest_type, random_projection};

/// One request of a replay: where to send it and what to send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRequest {
    /// Tenant the request belongs to (also embedded in the body).
    pub tenant: String,
    /// Endpoint path, e.g. `/v1/project`.
    pub path: String,
    /// The JSON body.
    pub body: String,
}

/// A generated request stream plus everything needed to set it up.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The schema text to register (`PUT
    /// /v1/tenants/{t}/schemas/{name}`) for every tenant up front.
    pub schema_text: String,
    /// The schema name the request bodies reference.
    pub schema_name: String,
    /// The tenants the stream is spread across (`tenant-0`, `tenant-1`,
    /// …).
    pub tenants: Vec<String>,
    /// The requests, in replay order.
    pub requests: Vec<ReplayRequest>,
}

/// Knobs for [`server_replay`].
#[derive(Debug, Clone)]
pub struct ReplaySpec {
    /// How many tenants the stream rotates over (≥ 1).
    pub tenants: usize,
    /// Total requests to generate.
    pub requests: usize,
    /// Fraction of available attributes each projection keeps.
    pub keep_fraction: f64,
    /// Seed for every pseudo-random choice.
    pub seed: u64,
}

impl Default for ReplaySpec {
    fn default() -> ReplaySpec {
        ReplaySpec {
            tenants: 2,
            requests: 24,
            keep_fraction: 0.5,
            seed: 0xD0_1994,
        }
    }
}

/// Generates a deterministic mixed-endpoint request stream over
/// `schema`. Requests rotate round-robin across tenants and cycle
/// through the server's compute endpoints (`project`, `applicable`,
/// `lint`, `explain`, `batch`), each with a seeded pseudo-random view.
/// All bodies reference the registered schema by name — the warm path;
/// swap `schema` for `schema_text` in a body to make the same request
/// cold.
pub fn server_replay(schema: &Schema, spec: &ReplaySpec) -> Replay {
    let schema_name = "replay".to_string();
    let tenants: Vec<String> = (0..spec.tenants.max(1))
        .map(|i| format!("tenant-{i}"))
        .collect();
    let views = batch_requests(schema, spec.requests, spec.keep_fraction, spec.seed);
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5EED);
    let requests = views
        .iter()
        .enumerate()
        .map(|(i, (source, projection))| {
            let tenant = tenants[i % tenants.len()].clone();
            let endpoint = ENDPOINT_CYCLE[i % ENDPOINT_CYCLE.len()];
            let body = body_for(
                schema,
                endpoint,
                &tenant,
                &schema_name,
                *source,
                projection,
                &mut rng,
            );
            ReplayRequest {
                tenant,
                path: format!("/v1/{endpoint}"),
                body,
            }
        })
        .collect();
    Replay {
        schema_text: schema_to_text(schema),
        schema_name,
        tenants,
        requests,
    }
}

const ENDPOINT_CYCLE: [&str; 5] = ["project", "applicable", "lint", "explain", "batch"];

fn body_for(
    schema: &Schema,
    endpoint: &str,
    tenant: &str,
    schema_name: &str,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    rng: &mut SmallRng,
) -> String {
    let head = format!(
        "\"tenant\": {}, \"schema\": {}",
        json_quote(tenant),
        json_quote(schema_name)
    );
    let view = format!(
        "\"type\": {}, \"attrs\": {}",
        json_quote(schema.type_name(source)),
        json_array(projection.iter().map(|&a| schema.attr_name(a)))
    );
    match endpoint {
        "explain" => {
            // Explain a deterministic method from the source's universe;
            // fall back to `project` semantics if the schema has none.
            let methods: Vec<&str> = schema
                .method_ids()
                .map(|m| schema.method_label(m))
                .collect();
            if methods.is_empty() {
                return format!("{{{head}, {view}}}");
            }
            let label = methods[rng.gen_range(0..methods.len())];
            format!("{{{head}, {view}, \"method\": {}}}", json_quote(label))
        }
        "batch" => {
            // A small nested batch around the deepest type keeps batch
            // requests meaningfully heavier than single derivations.
            let deep = deepest_type(schema);
            let lines: String = (0..3)
                .map(|j| {
                    let p = random_projection(schema, deep, 0.5, rng.gen::<u64>() ^ j);
                    format!(
                        "{}: {}\n",
                        schema.type_name(deep),
                        p.iter()
                            .map(|&a| schema.attr_name(a))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
                .collect();
            format!("{{{head}, \"requests\": {}}}", json_quote(&lines))
        }
        _ => format!("{{{head}, {view}}}"),
    }
}

fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_array<'a>(items: impl Iterator<Item = &'a str>) -> String {
    let inner = items.map(json_quote).collect::<Vec<_>>().join(", ");
    format!("[{inner}]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig3_with_z1;

    #[test]
    fn replay_is_deterministic_and_mixed() {
        let schema = fig3_with_z1();
        let spec = ReplaySpec {
            tenants: 3,
            requests: 10,
            ..ReplaySpec::default()
        };
        let a = server_replay(&schema, &spec);
        let b = server_replay(&schema, &spec);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.tenants.len(), 3);
        assert_eq!(a.requests.len(), 10);
        // Round-robin tenants and cycling endpoints.
        assert_eq!(a.requests[0].tenant, "tenant-0");
        assert_eq!(a.requests[1].tenant, "tenant-1");
        assert_eq!(a.requests[2].tenant, "tenant-2");
        assert_eq!(a.requests[3].tenant, "tenant-0");
        let paths: BTreeSet<&str> = a.requests.iter().map(|r| r.path.as_str()).collect();
        assert!(paths.contains("/v1/project"));
        assert!(paths.contains("/v1/batch"));
        assert!(paths.len() >= 4, "{paths:?}");
        // A different seed changes the stream.
        let c = server_replay(
            &schema,
            &ReplaySpec {
                seed: 7,
                ..spec.clone()
            },
        );
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn schema_text_round_trips() {
        let schema = fig3_with_z1();
        let replay = server_replay(&schema, &ReplaySpec::default());
        let reparsed = td_model::parse_schema(&replay.schema_text).expect("round-trip");
        assert_eq!(
            reparsed.live_type_ids().count(),
            schema.live_type_ids().count()
        );
        // Bodies reference the registered schema name, never inline text.
        for r in &replay.requests {
            assert!(r.body.contains("\"schema\": \"replay\""), "{}", r.body);
            assert!(!r.body.contains("schema_text"), "{}", r.body);
        }
    }
}
