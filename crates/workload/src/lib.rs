//! # td-workload — schemas for tests, benches and the reproduction harness
//!
//! Two families:
//!
//! * [`figures`] — exact reconstructions of the paper's Figure 1 and
//!   Figure 3 schemas (plus the §6.3 `z1` extension), together with the
//!   outcomes the paper states for Examples 1, 3 and 4. These are the
//!   ground truth the reproduction harness checks against.
//! * [`gen`] — deterministic structured families (chains, ladders, call
//!   chains, call cycles, single-dispatch class chains) and a seeded
//!   random-schema generator for property tests and scaling benchmarks.
//! * [`mutate`] — seeded schema mutation streams replayed by the
//!   delta-invalidation property suite (same seed, same edits).
//! * [`scenarios`] — a realistic mid-size university schema with diamond
//!   inheritance and genuine binary multi-methods.
//! * [`pathological`] — adversarial schemas the TDL lints must flag
//!   (dispatch ambiguity, precedence diamonds, load-bearing-attribute
//!   traps), plus a seeded corpus generator for the CI lint gate.
//! * [`replay`] — deterministic mixed-endpoint request streams for the
//!   derivation server (td-server): plain paths + JSON bodies, shared by
//!   the end-to-end tests and the serve repro experiment.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod gen;
pub mod mutate;
pub mod pathological;
pub mod replay;
pub mod scenarios;

pub use figures::{fig1, fig3, fig3_with_z1};
pub use gen::{
    batch_requests, call_chain_schema, call_cycle_schema, call_heavy_schema, chain_schema,
    deepest_type, disjunctive_schema, ladder_schema, random_projection, random_schema,
    single_dispatch_schema, wide_schema, GenParams,
};
pub use mutate::apply_random_mutations;
pub use pathological::{
    ambiguous_multimethod_schema, analysis_corpus, dead_branch_schema, diamond_conflict_schema,
    load_bearing_trap_schema, null_arg_trap_schema, pathological_corpus, unreachable_method_schema,
    PathologicalCase,
};
pub use replay::{server_replay, Replay, ReplayRequest, ReplaySpec};
pub use scenarios::university;
