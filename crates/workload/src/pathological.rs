//! Pathological schema generators: inputs the TDL lints (td-core's
//! `lint`) must flag.
//!
//! Three families, each targeting one check:
//!
//! * [`ambiguous_multimethod_schema`] — multi-method pairs with no most
//!   specific member at a common subtype (TDL001, §3);
//! * [`diamond_conflict_schema`] — a CLOS-style precedence diamond whose
//!   join type has no consistent linearization (TDL002, §2);
//! * [`load_bearing_trap_schema`] — a projection request that silently
//!   strands every non-accessor method by dropping the one attribute
//!   their bodies need (TDL004, §4).
//!
//! [`pathological_corpus`] mixes seeded variations of all three into a
//! deterministic corpus; CI lints it with `--deny warnings` and expects
//! every case to fail.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use td_model::{
    AttrId, BinOp, BodyBuilder, Expr, Literal, MethodKind, PrimType, Schema, Specializer, Stmt,
    TypeId, ValueType,
};

/// A corpus entry: a schema plus (optionally) the projection request that
/// triggers its diagnostic. Every case fails `lint --deny warnings`.
#[derive(Debug, Clone)]
pub struct PathologicalCase {
    /// Short family name (`ambiguous`, `diamond`, `trap`), used for file
    /// naming in the generated corpus.
    pub name: String,
    /// The schema itself. May be intentionally ill-formed (the diamond
    /// family), so load it leniently.
    pub schema: Schema,
    /// The request part, when the hazard is request-dependent.
    pub request: Option<(TypeId, BTreeSet<AttrId>)>,
}

/// `pairs` sibling pairs `(A_i, B_i)` under a shared root, each with a
/// common subtype `C_i` and a binary generic function `g_i` carrying the
/// incomparable methods `g_i(A_i, B_i)` and `g_i(B_i, A_i)`: at a call
/// `g_i(C_i, C_i)` neither is most specific. Validates cleanly — the
/// ambiguity is latent until dispatch, which is exactly why TDL001 exists.
pub fn ambiguous_multimethod_schema(pairs: usize) -> Schema {
    let mut s = Schema::new();
    let root = s.add_type("P", &[]).expect("fresh");
    for i in 0..pairs.max(1) {
        let a = s.add_type(format!("A{i}"), &[root]).expect("unique");
        let b = s.add_type(format!("B{i}"), &[root]).expect("unique");
        let _c = s.add_type(format!("C{i}"), &[a, b]).expect("unique");
        let g = s.add_gf(format!("g{i}"), 2, None).expect("unique");
        for (label, specs) in [
            (format!("g{i}_ab"), vec![a, b]),
            (format!("g{i}_ba"), vec![b, a]),
        ] {
            s.add_method(
                g,
                label,
                specs.into_iter().map(Specializer::Type).collect(),
                MethodKind::General(BodyBuilder::new().finish()),
                None,
            )
            .expect("distinct signatures");
        }
    }
    s.validate().expect("ambiguity is not a validation error");
    s
}

/// A precedence diamond: `X` orders `{P, Q}` one way, `Y` the other, and
/// `Z : X, Y` inherits both orders — no class precedence list for `Z` is
/// consistent (§2). `width` adds extra conflicted join types `Z2, Z3, …`
/// over the same arms. The schema is intentionally ill-formed: load it
/// with `parse_schema_lenient` and let TDL002 report the conflict.
pub fn diamond_conflict_schema(width: usize) -> Schema {
    let mut s = Schema::new();
    let p = s.add_type("P", &[]).expect("fresh");
    let q = s.add_type("Q", &[]).expect("fresh");
    let x = s.add_type("X", &[p, q]).expect("fresh");
    let y = s.add_type("Y", &[q, p]).expect("fresh");
    for i in 0..width.max(1) {
        let name = if i == 0 {
            "Z".to_string()
        } else {
            format!("Z{}", i + 1)
        };
        s.add_type(name, &[x, y]).expect("unique");
    }
    s
}

/// One type `T` with `n_attrs` attributes (readers on all of them) and
/// one non-accessor method per *load-bearing* attribute — every general
/// method reads `t_a0`. Returns the schema plus the trap request: project
/// everything **except** `t_a0`. The derived type keeps most of its state
/// yet loses every general method (TDL004), and the lint names `t_a0` as
/// the missing load-bearing attribute.
pub fn load_bearing_trap_schema(n_attrs: usize) -> (Schema, TypeId, BTreeSet<AttrId>) {
    let n_attrs = n_attrs.max(2);
    let mut s = Schema::new();
    let t = s.add_type("T", &[]).expect("fresh");
    let mut attrs = Vec::with_capacity(n_attrs);
    for j in 0..n_attrs {
        let a = s
            .add_attr(format!("t_a{j}"), ValueType::INT, t)
            .expect("unique");
        s.add_reader(a, t).expect("available");
        attrs.push(a);
    }
    let get_first = s.gf_id("get_t_a0").expect("reader added above");
    for j in 0..n_attrs.min(3) {
        let gf = s.add_gf(format!("f{j}"), 1, None).expect("unique");
        let mut bb = BodyBuilder::new();
        bb.call(get_first, vec![Expr::Param(0)]);
        s.add_method(
            gf,
            format!("f{j}_t"),
            vec![Specializer::Type(t)],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh");
    }
    s.validate().expect("trap schema is well-formed");
    let request: BTreeSet<AttrId> = attrs.iter().copied().skip(1).collect();
    (s, t, request)
}

/// One type `A`, a generic function `sink` whose only method demands a
/// primitive `int`, and `n` trap methods that call it with a
/// definitely-null argument — even traps pass the literal `null`, odd
/// traps launder it through a helper generic function that has no
/// result type (so its call value is the null object reference). Every
/// candidate of `sink` dies at the null position: TDL201 flags each trap
/// as a guaranteed dispatch failure.
pub fn null_arg_trap_schema(n: usize) -> Schema {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).expect("fresh");
    let sink = s.add_gf("sink", 1, None).expect("fresh");
    s.add_method(
        sink,
        "sink_int",
        vec![Specializer::Prim(PrimType::Int)],
        MethodKind::General(BodyBuilder::new().finish()),
        None,
    )
    .expect("fresh");
    let mk_null = s.add_gf("mk_null", 1, None).expect("fresh");
    s.add_method(
        mk_null,
        "mk_null_a",
        vec![Specializer::Type(a)],
        MethodKind::General(BodyBuilder::new().finish()),
        None,
    )
    .expect("fresh");
    for i in 0..n.max(1) {
        let gf = s.add_gf(format!("trap{i}"), 1, None).expect("unique");
        let mut bb = BodyBuilder::new();
        let arg = if i % 2 == 0 {
            Expr::Lit(Literal::Null)
        } else {
            Expr::call(mk_null, vec![Expr::Param(0)])
        };
        bb.call(sink, vec![arg]);
        s.add_method(
            gf,
            format!("trap{i}_a"),
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh");
    }
    s.validate().expect("null-trap schema is well-formed");
    s
}

/// One type `A` and `n` methods each branching on the constant `1 < 2`:
/// the else arm — `i % 3 + 1` statements of it — can never execute.
/// TDL202 flags every method with the folded condition and the dead
/// statement count.
pub fn dead_branch_schema(n: usize) -> Schema {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).expect("fresh");
    let x = s.add_attr("x", ValueType::INT, a).expect("fresh");
    let (get_x, _) = s.add_reader(x, a).expect("available");
    for i in 0..n.max(1) {
        let gf = s.add_gf(format!("d{i}"), 1, None).expect("unique");
        let mut bb = BodyBuilder::new();
        let dead: Vec<Stmt> = (0..i % 3 + 1)
            .map(|_| Stmt::Expr(Expr::call(get_x, vec![Expr::Param(0)])))
            .collect();
        bb.if_(
            Expr::binop(BinOp::Lt, Expr::int(1), Expr::int(2)),
            vec![Stmt::Expr(Expr::call(get_x, vec![Expr::Param(0)]))],
            dead,
        );
        s.add_method(
            gf,
            format!("d{i}_a"),
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh");
    }
    s.validate().expect("dead-branch schema is well-formed");
    s
}

/// Base type `A`, subtype `B`, attribute `x`, and `n` overload pairs
/// `f{i}_a(A)` / `f{i}_b(B)` with identical bodies (both read `x`).
/// From the returned request — source `B`, projection `{x}` — both
/// overloads survive, but dispatch from `B` always prefers `f{i}_b` and
/// nothing else calls `f{i}_a`: TDL203 flags every general overload as
/// shadowed and unreachable.
pub fn unreachable_method_schema(n: usize) -> (Schema, TypeId, BTreeSet<AttrId>) {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).expect("fresh");
    let b = s.add_type("B", &[a]).expect("fresh");
    let x = s.add_attr("x", ValueType::INT, a).expect("fresh");
    let (get_x, _) = s.add_reader(x, a).expect("available");
    for i in 0..n.max(1) {
        let f = s.add_gf(format!("f{i}"), 1, None).expect("unique");
        for (label, spec) in [(format!("f{i}_a"), a), (format!("f{i}_b"), b)] {
            let mut bb = BodyBuilder::new();
            bb.call(get_x, vec![Expr::Param(0)]);
            s.add_method(
                f,
                label,
                vec![Specializer::Type(spec)],
                MethodKind::General(bb.finish()),
                None,
            )
            .expect("fresh");
        }
    }
    s.validate()
        .expect("unreachable-method schema is well-formed");
    let projection: BTreeSet<AttrId> = [x].into_iter().collect();
    (s, b, projection)
}

/// A deterministic corpus of `n` pathological cases cycling through the
/// three families with seeded size variation. Every case fails
/// `lint --deny warnings`; the diamond cases fail plain `lint` too.
pub fn pathological_corpus(n: usize, seed: u64) -> Vec<PathologicalCase> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 3 {
            0 => PathologicalCase {
                name: "ambiguous".to_string(),
                schema: ambiguous_multimethod_schema(rng.gen_range(1..=4)),
                request: None,
            },
            1 => PathologicalCase {
                name: "diamond".to_string(),
                schema: diamond_conflict_schema(rng.gen_range(1..=3)),
                request: None,
            },
            _ => {
                let (schema, source, projection) = load_bearing_trap_schema(rng.gen_range(2..=6));
                PathologicalCase {
                    name: "trap".to_string(),
                    schema,
                    request: Some((source, projection)),
                }
            }
        })
        .collect()
}

/// A deterministic corpus of `n` interprocedural-analysis traps cycling
/// through the [`null_arg_trap_schema`] (TDL201),
/// [`dead_branch_schema`] (TDL202) and [`unreachable_method_schema`]
/// (TDL203) families with seeded size variation. Every case passes the
/// ordinary TDL lints but fails `analyze --deny warnings` — the findings
/// exist only interprocedurally, which is exactly what separates
/// `td-analyze` from `td_core::lint`. [`pathological_corpus`] stays
/// TDL0xx-only, so the two corpora gate the two tools independently.
pub fn analysis_corpus(n: usize, seed: u64) -> Vec<PathologicalCase> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 3 {
            0 => PathologicalCase {
                name: "nulltrap".to_string(),
                schema: null_arg_trap_schema(rng.gen_range(1..=4)),
                request: None,
            },
            1 => PathologicalCase {
                name: "deadbranch".to_string(),
                schema: dead_branch_schema(rng.gen_range(1..=4)),
                request: None,
            },
            _ => {
                let (schema, source, projection) = unreachable_method_schema(rng.gen_range(1..=3));
                PathologicalCase {
                    name: "unreachable".to_string(),
                    schema,
                    request: Some((source, projection)),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambiguous_schema_validates_but_has_incomparable_pairs() {
        let s = ambiguous_multimethod_schema(3);
        s.validate().unwrap();
        assert_eq!(s.n_methods(), 6);
        // Each C_i genuinely sits under both siblings.
        let c0 = s.type_id("C0").unwrap();
        assert!(s.is_subtype(c0, s.type_id("A0").unwrap()));
        assert!(s.is_subtype(c0, s.type_id("B0").unwrap()));
    }

    #[test]
    fn diamond_schema_has_no_consistent_cpl_at_the_join() {
        let s = diamond_conflict_schema(2);
        assert!(s.cpl(s.type_id("Z").unwrap()).is_err());
        assert!(s.cpl(s.type_id("Z2").unwrap()).is_err());
        // The arms themselves still linearize.
        assert!(s.cpl(s.type_id("X").unwrap()).is_ok());
    }

    #[test]
    fn trap_request_strands_every_general_method() {
        let (s, t, projection) = load_bearing_trap_schema(4);
        s.validate().unwrap();
        let a0 = s.attr_id("t_a0").unwrap();
        assert!(!projection.contains(&a0), "the trap drops t_a0");
        assert_eq!(projection.len(), 3);
        assert!(s.is_live(t));
    }

    #[test]
    fn corpus_is_deterministic_and_covers_all_families() {
        let c1 = pathological_corpus(9, 42);
        let c2 = pathological_corpus(9, 42);
        assert_eq!(c1.len(), 9);
        for (a, b) in c1.iter().zip(&c2) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.schema.n_types(), b.schema.n_types());
            assert_eq!(a.request, b.request);
        }
        for family in ["ambiguous", "diamond", "trap"] {
            assert_eq!(c1.iter().filter(|c| c.name == family).count(), 3);
        }
    }

    #[test]
    fn analysis_corpus_is_deterministic_and_covers_all_families() {
        let c1 = analysis_corpus(9, 7);
        let c2 = analysis_corpus(9, 7);
        assert_eq!(c1.len(), 9);
        for (a, b) in c1.iter().zip(&c2) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.schema.n_methods(), b.schema.n_methods());
            assert_eq!(a.request, b.request);
        }
        for family in ["nulltrap", "deadbranch", "unreachable"] {
            assert_eq!(c1.iter().filter(|c| c.name == family).count(), 3);
        }
        // Every case validates: unlike the diamond family these schemas
        // are well-formed — their hazards are interprocedural.
        for c in &c1 {
            c.schema.validate().unwrap();
        }
    }
}
