//! Exact reconstructions of the schemas in the paper's figures and worked
//! examples, together with the outcomes the paper states for them.
//!
//! * [`fig1`] — the §3.1 Person/Employee hierarchy with `age`, `income`
//!   and `promote` (Figure 1); projecting
//!   `Π_{SSN,date_of_birth,pay_rate}(Employee)` must yield Figure 2.
//! * [`fig3`] — the §4.2 eight-type A–H multiple-inheritance hierarchy
//!   with the `u`/`v`/`w`/`x`/`y` method suite (Figure 3, Example 1);
//!   projecting `Π_{a2,e2,h2}(A)` must yield Figure 4 and the Example 1
//!   classification, and factoring must produce the Example 3 signatures.
//! * [`fig3_with_z1`] — [`fig3`] extended with the §6.3 method
//!   `z1(c: C, b: B) = { g: G; d: D; g ← c; d ← b; u(c); return g }`,
//!   which forces `Z = {D, G}` so that `Augment` reproduces Figure 5.

use td_model::{BodyBuilder, Expr, MethodKind, Schema, Specializer, ValueType};

/// Methods the paper says survive `Π_{a2,e2,h2}(A)` (Example 1 / 3).
pub const EX1_APPLICABLE: &[&str] = &["v1", "u3", "w2", "get_h2"];

/// Methods the paper says are ruled out (Example 1).
pub const EX1_NOT_APPLICABLE: &[&str] = &[
    "u1", "u2", "w1", "v2", "x1", "y1", "get_a1", "get_b1", "get_g1",
];

/// Factored signatures of Example 3, rendered as
/// `label(specializer, …)` with `^` marking surrogates.
pub const EX3_SIGNATURES: &[&str] = &["v1(^A, ^C)", "u3(^B)", "w2(^C)", "get_h2(^B)"];

/// The projection list of §4.2 / Figure 4.
pub const FIG4_PROJECTION: &[&str] = &["a2", "e2", "h2"];

/// The surrogates Figure 4 contains (sources). `D` and `G` must *not*
/// have surrogates after `FactorState` alone.
pub const FIG4_SURROGATE_SOURCES: &[&str] = &["A", "B", "C", "E", "F", "H"];

/// The additional surrogates of Figure 5 (sources), created by `Augment`
/// for `Z = {D, G}`.
pub const FIG5_AUGMENT_SOURCES: &[&str] = &["G", "D"];

/// Builds the Figure 1 schema.
///
/// `Person {SSN, name, date_of_birth}`; `Employee <= Person` adds
/// `{pay_rate, hrs_worked}`. Every attribute gets reader/writer
/// accessors, and the three §3.1 methods are defined:
///
/// * `age(Person)` — uses `date_of_birth`;
/// * `income(Employee)` — uses `pay_rate` and `hrs_worked`;
/// * `promote(Employee)` — uses `date_of_birth` and `pay_rate`.
pub fn fig1() -> Schema {
    let mut s = Schema::new();
    let person = s.add_type("Person", &[]).expect("fresh schema");
    let employee = s.add_type("Employee", &[person]).expect("fresh schema");
    for (name, ty, owner) in [
        ("SSN", ValueType::INT, person),
        ("name", ValueType::STR, person),
        ("date_of_birth", ValueType::INT, person),
        ("pay_rate", ValueType::FLOAT, employee),
        ("hrs_worked", ValueType::FLOAT, employee),
    ] {
        let a = s.add_attr(name, ty, owner).expect("unique attr");
        s.add_accessors(a).expect("accessors");
    }
    let get_dob = s.gf_id("get_date_of_birth").expect("created above");
    let get_pay = s.gf_id("get_pay_rate").expect("created above");
    let get_hrs = s.gf_id("get_hrs_worked").expect("created above");

    let age = s.add_gf("age", 1, Some(ValueType::INT)).expect("fresh gf");
    let mut bb = BodyBuilder::new();
    // age(p) = { return 2026 - get_date_of_birth(p) }
    bb.ret(Expr::binop(
        td_model::BinOp::Sub,
        Expr::int(2026),
        Expr::call(get_dob, vec![Expr::Param(0)]),
    ));
    s.add_method(
        age,
        "age",
        vec![Specializer::Type(person)],
        MethodKind::General(bb.finish()),
        Some(ValueType::INT),
    )
    .expect("age method");

    let income = s
        .add_gf("income", 1, Some(ValueType::FLOAT))
        .expect("fresh gf");
    let mut bb = BodyBuilder::new();
    // income(e) = { return get_pay_rate(e) * get_hrs_worked(e) }
    bb.ret(Expr::binop(
        td_model::BinOp::Mul,
        Expr::call(get_pay, vec![Expr::Param(0)]),
        Expr::call(get_hrs, vec![Expr::Param(0)]),
    ));
    s.add_method(
        income,
        "income",
        vec![Specializer::Type(employee)],
        MethodKind::General(bb.finish()),
        Some(ValueType::FLOAT),
    )
    .expect("income method");

    let promote = s
        .add_gf("promote", 1, Some(ValueType::BOOL))
        .expect("fresh gf");
    let mut bb = BodyBuilder::new();
    // promote(e) = { return (2026 - get_date_of_birth(e)) < get_pay_rate(e) }
    bb.ret(Expr::binop(
        td_model::BinOp::Lt,
        Expr::binop(
            td_model::BinOp::Sub,
            Expr::int(2026),
            Expr::call(get_dob, vec![Expr::Param(0)]),
        ),
        Expr::call(get_pay, vec![Expr::Param(0)]),
    ));
    s.add_method(
        promote,
        "promote",
        vec![Specializer::Type(employee)],
        MethodKind::General(bb.finish()),
        Some(ValueType::BOOL),
    )
    .expect("promote method");

    s.validate().expect("figure 1 schema is well-formed");
    s
}

/// Builds the Figure 3 schema (§4.2, Example 1).
///
/// Hierarchy (arrow annotations are the paper's precedence integers):
///
/// ```text
/// A {a1,a2} <- C(1) B(2)      C {c1} <- F(1) E(2)     B {b1} <- D(1) E(2)
/// F {f1}    <- H(1)           E {e1,e2} <- G(1) H(2)
/// D {d1}    G {g1}    H {h1,h2}
/// ```
///
/// Accessor methods (only the four the paper lists): `get_a1(A)`,
/// `get_b1(B)`, `get_h2(B)`, `get_g1(C)`. General methods:
///
/// ```text
/// u1(A) = {get_a1(A)}     u2(C) = {get_g1(C)}     u3(B) = {get_h2(B)}
/// v1(A,C) = {u(A); w(C)}  v2(B,C) = {get_b1(B); u(C)}
/// w1(A) = {get_a1(A)}     w2(C) = {u(C)}
/// x1(A,B) = {y(A,B); v(B,A)}
/// y1(A,B) = {x(A,B)}
/// ```
pub fn fig3() -> Schema {
    let mut s = Schema::new();
    let d = s.add_type("D", &[]).expect("fresh schema");
    let g = s.add_type("G", &[]).expect("fresh schema");
    let h = s.add_type("H", &[]).expect("fresh schema");
    let f = s.add_type("F", &[h]).expect("fresh schema");
    let e = s.add_type("E", &[g, h]).expect("fresh schema");
    let c = s.add_type("C", &[f, e]).expect("fresh schema");
    let b = s.add_type("B", &[d, e]).expect("fresh schema");
    let a = s.add_type("A", &[c, b]).expect("fresh schema");

    for (name, owner) in [
        ("a1", a),
        ("a2", a),
        ("b1", b),
        ("c1", c),
        ("d1", d),
        ("e1", e),
        ("e2", e),
        ("f1", f),
        ("g1", g),
        ("h1", h),
        ("h2", h),
    ] {
        s.add_attr(name, ValueType::INT, owner)
            .expect("unique attr");
    }

    // The four accessors of Example 1 — note get_h2 and get_g1 are
    // specialized below the attribute's owner.
    let a1 = s.attr_id("a1").expect("defined above");
    let b1 = s.attr_id("b1").expect("defined above");
    let h2 = s.attr_id("h2").expect("defined above");
    let g1 = s.attr_id("g1").expect("defined above");
    let (get_a1, _) = s.add_reader(a1, a).expect("accessor");
    let (get_b1, _) = s.add_reader(b1, b).expect("accessor");
    let (get_h2, _) = s.add_reader(h2, b).expect("accessor");
    let (get_g1, _) = s.add_reader(g1, c).expect("accessor");

    let u = s.add_gf("u", 1, None).expect("fresh gf");
    let v = s.add_gf("v", 2, None).expect("fresh gf");
    let w = s.add_gf("w", 1, None).expect("fresh gf");
    let x = s.add_gf("x", 2, None).expect("fresh gf");
    let y = s.add_gf("y", 2, None).expect("fresh gf");

    let body1 = |calls: Vec<Expr>| {
        let mut bb = BodyBuilder::new();
        for call in calls {
            bb.expr(call);
        }
        bb.finish()
    };

    // u1(A) = {get_a1(A)}
    s.add_method(
        u,
        "u1",
        vec![Specializer::Type(a)],
        MethodKind::General(body1(vec![Expr::call(get_a1, vec![Expr::Param(0)])])),
        None,
    )
    .expect("u1");
    // u2(C) = {get_g1(C)}
    s.add_method(
        u,
        "u2",
        vec![Specializer::Type(c)],
        MethodKind::General(body1(vec![Expr::call(get_g1, vec![Expr::Param(0)])])),
        None,
    )
    .expect("u2");
    // u3(B) = {get_h2(B)}
    s.add_method(
        u,
        "u3",
        vec![Specializer::Type(b)],
        MethodKind::General(body1(vec![Expr::call(get_h2, vec![Expr::Param(0)])])),
        None,
    )
    .expect("u3");
    // v1(A,C) = {u(A); w(C)}
    s.add_method(
        v,
        "v1",
        vec![Specializer::Type(a), Specializer::Type(c)],
        MethodKind::General(body1(vec![
            Expr::call(u, vec![Expr::Param(0)]),
            Expr::call(w, vec![Expr::Param(1)]),
        ])),
        None,
    )
    .expect("v1");
    // v2(B,C) = {get_b1(B); u(C)}
    s.add_method(
        v,
        "v2",
        vec![Specializer::Type(b), Specializer::Type(c)],
        MethodKind::General(body1(vec![
            Expr::call(get_b1, vec![Expr::Param(0)]),
            Expr::call(u, vec![Expr::Param(1)]),
        ])),
        None,
    )
    .expect("v2");
    // w1(A) = {get_a1(A)}
    s.add_method(
        w,
        "w1",
        vec![Specializer::Type(a)],
        MethodKind::General(body1(vec![Expr::call(get_a1, vec![Expr::Param(0)])])),
        None,
    )
    .expect("w1");
    // w2(C) = {u(C)}
    s.add_method(
        w,
        "w2",
        vec![Specializer::Type(c)],
        MethodKind::General(body1(vec![Expr::call(u, vec![Expr::Param(0)])])),
        None,
    )
    .expect("w2");
    // x1(A,B) = {y(A,B); v(B,A)}
    s.add_method(
        x,
        "x1",
        vec![Specializer::Type(a), Specializer::Type(b)],
        MethodKind::General(body1(vec![
            Expr::call(y, vec![Expr::Param(0), Expr::Param(1)]),
            Expr::call(v, vec![Expr::Param(1), Expr::Param(0)]),
        ])),
        None,
    )
    .expect("x1");
    // y1(A,B) = {x(A,B)}
    s.add_method(
        y,
        "y1",
        vec![Specializer::Type(a), Specializer::Type(b)],
        MethodKind::General(body1(vec![Expr::call(
            x,
            vec![Expr::Param(0), Expr::Param(1)],
        )])),
        None,
    )
    .expect("y1");

    s.validate().expect("figure 3 schema is well-formed");
    s
}

/// [`fig3`] plus the §6.3 method that drives Example 4 / Figure 5:
///
/// ```text
/// z1(c: C, b: B) = { g: G; d: D; g ← c; d ← b; u(c); return g }
/// ```
///
/// Assignments force `Y ⊇ {G, D}`; neither has a `FactorState` surrogate
/// under `Π_{a2,e2,h2}(A)`, so `Z = {D, G}` exactly as the paper posits.
pub fn fig3_with_z1() -> Schema {
    let mut s = fig3();
    let c = s.type_id("C").expect("fig3 type");
    let b = s.type_id("B").expect("fig3 type");
    let g = s.type_id("G").expect("fig3 type");
    let d = s.type_id("D").expect("fig3 type");
    let u = s.gf_id("u").expect("fig3 gf");
    let z = s
        .add_gf("z", 2, Some(ValueType::Object(g)))
        .expect("fresh gf");
    let mut bb = BodyBuilder::new();
    let g_var = bb.local("g", ValueType::Object(g));
    let d_var = bb.local("d", ValueType::Object(d));
    bb.assign(g_var, Expr::Param(0));
    bb.assign(d_var, Expr::Param(1));
    bb.call(u, vec![Expr::Param(0)]);
    bb.ret(Expr::Var(g_var));
    s.add_method(
        z,
        "z1",
        vec![Specializer::Type(c), Specializer::Type(b)],
        MethodKind::General(bb.finish()),
        Some(ValueType::Object(g)),
    )
    .expect("z1");
    s.validate()
        .expect("extended figure 3 schema is well-formed");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let s = fig1();
        let person = s.type_id("Person").unwrap();
        let employee = s.type_id("Employee").unwrap();
        assert!(s.is_subtype(employee, person));
        assert_eq!(s.cumulative_attrs(employee).len(), 5);
        assert_eq!(s.cumulative_attrs(person).len(), 3);
        // 5 attrs × (get+set) + age + income + promote = 13 methods.
        assert_eq!(s.n_methods(), 13);
    }

    #[test]
    fn fig3_shape() {
        let s = fig3();
        let a = s.type_id("A").unwrap();
        // A's supertypes per Figure 3.
        let anc = s.ancestors(a);
        assert_eq!(anc.len(), 7);
        // Precedence order of direct supers: C then B.
        let supers: Vec<&str> = s.type_(a).super_ids().map(|t| s.type_name(t)).collect();
        assert_eq!(supers, vec!["C", "B"]);
        let e = s.type_id("E").unwrap();
        let supers: Vec<&str> = s.type_(e).super_ids().map(|t| s.type_name(t)).collect();
        assert_eq!(supers, vec!["G", "H"]);
        // 4 accessors + 9 general methods.
        assert_eq!(s.n_methods(), 13);
        // All methods are applicable to the source type A (the paper
        // notes this explicitly).
        assert_eq!(s.methods_applicable_to_type(a).len(), 13);
    }

    #[test]
    fn fig3_render_is_stable() {
        let s = fig3();
        let r = s.render_hierarchy();
        assert!(r.contains("A {a1, a2} <- C(1) B(2)"));
        assert!(r.contains("E {e1, e2} <- G(1) H(2)"));
        assert!(r.contains("H {h1, h2}"));
    }

    #[test]
    fn fig3_with_z1_adds_one_method() {
        let s = fig3_with_z1();
        assert_eq!(s.n_methods(), 14);
        let z1 = s.method_by_label("z1").unwrap();
        let edges = s.assignment_edges(z1);
        let g = s.type_id("G").unwrap();
        let d = s.type_id("D").unwrap();
        let c = s.type_id("C").unwrap();
        let b = s.type_id("B").unwrap();
        assert!(edges.contains(&(g, c)));
        assert!(edges.contains(&(d, b)));
    }
}
