//! Seeded schema **mutation streams** for the delta-invalidation
//! property suite.
//!
//! [`apply_random_mutations`] evolves a live schema in place through a
//! deterministic, seeded sequence of edits — new subtypes, new
//! attributes with accessors, new generic functions, new methods on
//! existing generic functions, and no-op touches through the `*_mut`
//! accessors. Every edit goes through the ordinary `td_model::Schema`
//! mutation API, so each one emits its `SchemaDelta` into the dispatch
//! cache exactly as production edits do.
//!
//! The point is equivalence testing: replay the same stream into two
//! copies of a schema, let one keep its delta-invalidated warm caches
//! and force the other through a full `clear_dispatch_cache` rebuild,
//! and every derivation report must come out byte-identical. The
//! returned log describes each step so a failing seed prints a usable
//! reproduction recipe.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use td_model::{BodyBuilder, Expr, MethodKind, Schema, Specializer, TypeId, ValueType};

/// Applies `n` seeded random mutations to `schema` and returns a
/// human-readable log of what each step did.
///
/// Every mutation keeps the schema well-formed (the stream only adds
/// entities or touches existing ones; it never breaks a linearization).
/// Given equal starting schemas and equal `(n, seed)`, two replays make
/// exactly the same edits in the same order.
pub fn apply_random_mutations(schema: &mut Schema, n: usize, seed: u64) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x_DE17A_u64);
    let mut log = Vec::with_capacity(n);
    for step in 0..n {
        let live: Vec<TypeId> = schema.live_type_ids().collect();
        let kind = rng.gen_range(0..5);
        let entry = match kind {
            // A new leaf subtype under a random live type: dirties the
            // parent's descendant cone (which is empty — it's a leaf).
            0 => {
                let parent = live[rng.gen_range(0..live.len())];
                let name = format!("Mut{step}");
                let t = schema
                    .add_type(name.clone(), &[parent])
                    .expect("fresh name cannot collide");
                format!(
                    "step {step}: add type {name} : {} ({t:?})",
                    schema.type_name(parent)
                )
            }
            // A new attribute plus reader on a random type: extends the
            // footprint universe without touching existing CPLs.
            1 => {
                let owner = live[rng.gen_range(0..live.len())];
                let name = format!("mut{step}_a");
                let a = schema
                    .add_attr(name.clone(), ValueType::INT, owner)
                    .expect("fresh attr cannot collide");
                schema.add_reader(a, owner).expect("owner has the attr");
                format!(
                    "step {step}: add attr {name} + reader on {}",
                    schema.type_name(owner)
                )
            }
            // A brand-new unary generic function with one method whose
            // body reads a random accessor.
            2 => {
                let spec = live[rng.gen_range(0..live.len())];
                let gf_name = format!("mutf{step}");
                let gf = schema
                    .add_gf(gf_name.clone(), 1, None)
                    .expect("fresh gf cannot collide");
                let accessors: Vec<_> = schema
                    .gf_ids()
                    .filter(|&g| schema.gf_name(g).starts_with("get_"))
                    .collect();
                let mut bb = BodyBuilder::new();
                if !accessors.is_empty() {
                    let callee = accessors[rng.gen_range(0..accessors.len())];
                    bb.call(callee, vec![Expr::Param(0)]);
                }
                schema
                    .add_method(
                        gf,
                        format!("mutf{step}_m"),
                        vec![Specializer::Type(spec)],
                        MethodKind::General(bb.finish()),
                        None,
                    )
                    .expect("first method of a fresh gf cannot collide");
                format!(
                    "step {step}: add gf {gf_name} with method on {}",
                    schema.type_name(spec)
                )
            }
            // A new method on a random *existing* generic function —
            // the single-method-edit shape the DELTA experiment gates.
            // Duplicate specializer tuples are rejected by the schema;
            // the rejection is itself deterministic, so both replays
            // agree on whether the method landed.
            3 => {
                let gfs: Vec<_> = schema.gf_ids().collect();
                let gf = gfs[rng.gen_range(0..gfs.len())];
                let arity = schema.gf(gf).arity;
                let specs: Vec<Specializer> = (0..arity)
                    .map(|_| Specializer::Type(live[rng.gen_range(0..live.len())]))
                    .collect();
                let mut bb = BodyBuilder::new();
                bb.call(gf, (0..arity).map(Expr::Param).collect());
                let landed = schema
                    .add_method(
                        gf,
                        format!("mut{step}_m"),
                        specs,
                        MethodKind::General(bb.finish()),
                        None,
                    )
                    .is_ok();
                format!(
                    "step {step}: add method mut{step}_m to {} (landed: {landed})",
                    schema.gf_name(gf)
                )
            }
            // A touch: borrow a random method mutably without changing
            // it. The delta must still evict every index that could see
            // the method — over-invalidation is allowed, staleness is
            // not — and the reports must stay identical.
            _ => {
                let methods: Vec<_> = schema.method_ids().collect();
                if methods.is_empty() {
                    log.push(format!("step {step}: touch skipped (no methods)"));
                    continue;
                }
                let m = methods[rng.gen_range(0..methods.len())];
                let label = schema.method_label(m).to_string();
                let _ = schema.method_mut(m);
                format!("step {step}: touch method {label}")
            }
        };
        log.push(entry);
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_schema, GenParams};

    #[test]
    fn streams_are_deterministic_and_keep_the_schema_valid() {
        let params = GenParams {
            seed: 7,
            ..GenParams::default()
        };
        let mut a = random_schema(&params);
        let mut b = random_schema(&params);
        let la = apply_random_mutations(&mut a, 12, 99);
        let lb = apply_random_mutations(&mut b, 12, 99);
        assert_eq!(la, lb, "same seed must replay the same stream");
        assert_eq!(la.len(), 12);
        a.validate().expect("mutated schema stays well-formed");
        assert_eq!(
            td_model::schema_to_text(&a),
            td_model::schema_to_text(&b),
            "replayed schemas must be structurally identical"
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let params = GenParams::default();
        let mut a = random_schema(&params);
        let mut b = random_schema(&params);
        let la = apply_random_mutations(&mut a, 12, 1);
        let lb = apply_random_mutations(&mut b, 12, 2);
        assert_ne!(la, lb);
    }
}
