//! Seeded schema generators: structured families for scaling benches and
//! a randomized family for property tests.
//!
//! Everything here is deterministic given its parameters (random families
//! take an explicit seed), so benchmark rows and property-test failures
//! are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use td_model::{
    AttrId, BodyBuilder, Expr, GfId, MethodKind, Schema, Specializer, TypeId, ValueType,
};

/// Parameters for [`random_schema`].
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Number of types.
    pub n_types: usize,
    /// Maximum direct supertypes per type.
    pub max_supers: usize,
    /// Probability that a non-root type has more than one supertype.
    pub mi_fraction: f64,
    /// Attributes defined locally at each type.
    pub attrs_per_type: usize,
    /// Probability that an attribute gets a reader accessor.
    pub reader_fraction: f64,
    /// Number of general generic functions.
    pub n_gfs: usize,
    /// Methods defined per generic function.
    pub methods_per_gf: usize,
    /// Maximum method arity.
    pub max_arity: usize,
    /// Generic-function calls per method body.
    pub calls_per_body: usize,
    /// Probability that a body declares a local bound to a parameter
    /// (exercising the §6.3/§6.4 def-use machinery).
    pub assign_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            n_types: 24,
            max_supers: 3,
            mi_fraction: 0.35,
            attrs_per_type: 2,
            reader_fraction: 0.8,
            n_gfs: 10,
            methods_per_gf: 3,
            max_arity: 2,
            calls_per_body: 3,
            assign_fraction: 0.3,
            seed: 0xD0_0D,
        }
    }
}

/// Generates a random well-formed schema (validated before returning).
///
/// Multiple-inheritance edges that would make a class precedence list
/// inconsistent are retried with fewer supertypes, so every generated
/// schema linearizes.
pub fn random_schema(params: &GenParams) -> Schema {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut s = Schema::new();

    // ---- types -------------------------------------------------------------
    let mut types: Vec<TypeId> = Vec::with_capacity(params.n_types);
    for i in 0..params.n_types {
        let t = s.add_type(format!("T{i}"), &[]).expect("unique name");
        if !types.is_empty() {
            let want_multi = rng.gen_bool(params.mi_fraction.clamp(0.0, 1.0));
            let mut k = if want_multi {
                rng.gen_range(2..=params.max_supers.max(2))
            } else {
                1
            };
            k = k.min(types.len());
            // Retry with fewer supers until the CPL is consistent.
            loop {
                let mut chosen: Vec<TypeId> = Vec::new();
                while chosen.len() < k {
                    let cand = types[rng.gen_range(0..types.len())];
                    if !chosen.contains(&cand) {
                        chosen.push(cand);
                    }
                }
                for (p, &sup) in chosen.iter().enumerate() {
                    s.add_super_with_prec(t, sup, p as i32 + 1)
                        .expect("edge to earlier type cannot cycle");
                }
                if s.cpl(t).is_ok() {
                    break;
                }
                for &sup in &chosen {
                    s.remove_super_edge(t, sup);
                }
                if k == 1 {
                    break; // single inheritance always linearizes
                }
                k -= 1;
            }
        }
        types.push(t);
    }

    // ---- attributes ----------------------------------------------------------
    let mut attrs: Vec<AttrId> = Vec::new();
    for (i, &t) in types.iter().enumerate() {
        for j in 0..params.attrs_per_type {
            let a = s
                .add_attr(format!("t{i}_a{j}"), ValueType::INT, t)
                .expect("unique attr");
            attrs.push(a);
            if rng.gen_bool(params.reader_fraction.clamp(0.0, 1.0)) {
                // Occasionally specialize the reader below the owner, like
                // the paper's get_h2(B).
                let descendants = s.descendants(t);
                let at = if !descendants.is_empty() && rng.gen_bool(0.2) {
                    descendants[rng.gen_range(0..descendants.len())]
                } else {
                    t
                };
                s.add_reader(a, at).expect("attr available at descendant");
            }
        }
    }

    // ---- generic functions ---------------------------------------------------
    let mut gfs: Vec<GfId> = Vec::new();
    for k in 0..params.n_gfs {
        let arity = rng.gen_range(1..=params.max_arity.max(1));
        gfs.push(s.add_gf(format!("gf{k}"), arity, None).expect("unique gf"));
    }

    // ---- methods ---------------------------------------------------------------
    let accessor_gfs: Vec<GfId> = s
        .gf_ids()
        .filter(|&g| s.gf_name(g).starts_with("get_"))
        .collect();
    for (k, &gf) in gfs.iter().enumerate() {
        let arity = s.gf(gf).arity;
        for mi in 0..params.methods_per_gf {
            let specs: Vec<Specializer> = (0..arity)
                .map(|_| Specializer::Type(types[rng.gen_range(0..types.len())]))
                .collect();
            let spec_types: Vec<TypeId> = specs.iter().filter_map(|sp| sp.as_type()).collect();
            let mut bb = BodyBuilder::new();

            // Optionally bind a parameter into a local of a supertype —
            // feeds Y/Z computation and body re-typing.
            if rng.gen_bool(params.assign_fraction.clamp(0.0, 1.0)) {
                let pi = rng
                    .gen_range(0..spec_types.len().max(1))
                    .min(spec_types.len() - 1);
                let param_ty = spec_types[pi];
                let ups = s.ancestors_inclusive(param_ty);
                let target = ups[rng.gen_range(0..ups.len())];
                let v = bb.local(format!("l{mi}"), ValueType::Object(target));
                bb.assign(v, Expr::Param(pi));
            }

            for _ in 0..params.calls_per_body {
                // Call a random callee: mostly general gfs, sometimes an
                // accessor (which is what grounds applicability).
                let callee = if !accessor_gfs.is_empty() && rng.gen_bool(0.45) {
                    accessor_gfs[rng.gen_range(0..accessor_gfs.len())]
                } else {
                    gfs[rng.gen_range(0..gfs.len())]
                };
                let callee_arity = s.gf(callee).arity;
                let args: Vec<Expr> = (0..callee_arity)
                    .map(|_| Expr::Param(rng.gen_range(0..arity)))
                    .collect();
                bb.call(callee, args);
            }
            // A randomly drawn specializer tuple may collide with an
            // earlier method of the same generic function; such duplicates
            // are rejected by the schema (ambiguous dispatch), so skip.
            let _ = s.add_method(
                gf,
                format!("gf{k}_m{mi}"),
                specs,
                MethodKind::General(bb.finish()),
                None,
            );
        }
    }

    s.validate().expect("generated schema is well-formed");
    s
}

/// Picks the type with the most ancestors (ties: lowest id) — the most
/// interesting projection source.
pub fn deepest_type(s: &Schema) -> TypeId {
    s.live_type_ids()
        .max_by_key(|&t| (s.ancestors(t).len(), std::cmp::Reverse(t)))
        .expect("schema has at least one type")
}

/// Selects a deterministic pseudo-random subset of the attributes
/// available at `source`, keeping roughly `keep_fraction` of them (always
/// at least one when any is available).
pub fn random_projection(
    s: &Schema,
    source: TypeId,
    keep_fraction: f64,
    seed: u64,
) -> BTreeSet<AttrId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let all: Vec<AttrId> = s.cumulative_attrs(source).into_iter().collect();
    let mut kept: BTreeSet<AttrId> = all
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(keep_fraction.clamp(0.0, 1.0)))
        .collect();
    if kept.is_empty() {
        if let Some(&first) = all.first() {
            kept.insert(first);
        }
    }
    kept
}

/// Generates a deterministic batch of projection requests over `s`: each
/// request is a live source type with at least one available attribute,
/// paired with a pseudo-random projection keeping roughly
/// `keep_fraction` of its attributes. Sources are drawn with replacement
/// biased toward deeper types (more ancestors ⇒ more factoring work), so
/// a batch exercises the whole pipeline rather than trivial roots.
///
/// This is the workload behind the batch derivation engine's benches and
/// the `tdv batch` scenario; determinism (given `seed`) is what lets the
/// 1-thread and N-thread runs be compared byte for byte.
pub fn batch_requests(
    s: &Schema,
    n_requests: usize,
    keep_fraction: f64,
    seed: u64,
) -> Vec<(TypeId, BTreeSet<AttrId>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Candidate sources, each repeated once per ancestor so deep types
    // are proportionally more likely.
    let mut weighted: Vec<TypeId> = Vec::new();
    for t in s.live_type_ids() {
        if s.cumulative_attrs(t).is_empty() {
            continue;
        }
        for _ in 0..=s.ancestors(t).len() {
            weighted.push(t);
        }
    }
    if weighted.is_empty() {
        return Vec::new();
    }
    (0..n_requests)
        .map(|i| {
            let source = weighted[rng.gen_range(0..weighted.len())];
            let projection = random_projection(s, source, keep_fraction, seed ^ (i as u64) << 17);
            (source, projection)
        })
        .collect()
}

/// A linear chain `T0 <- T1 <- … <- T(n-1)` with one attribute and one
/// reader per level. Deterministic; used for depth-scaling benches.
pub fn chain_schema(n: usize) -> Schema {
    let mut s = Schema::new();
    let mut prev: Option<TypeId> = None;
    for i in 0..n {
        let supers: Vec<TypeId> = prev.into_iter().collect();
        let t = s.add_type(format!("T{i}"), &supers).expect("unique");
        let a = s
            .add_attr(format!("t{i}_a"), ValueType::INT, t)
            .expect("unique");
        s.add_reader(a, t).expect("available");
        prev = Some(t);
    }
    s
}

/// A "ladder" with heavy multiple inheritance: type `i` inherits from
/// `i-1` and `i-2`. Stresses CPLs and the factorization recursion.
pub fn ladder_schema(n: usize) -> Schema {
    let mut s = Schema::new();
    let mut types: Vec<TypeId> = Vec::with_capacity(n);
    for i in 0..n {
        let supers: Vec<TypeId> = match i {
            0 => vec![],
            1 => vec![types[0]],
            _ => vec![types[i - 1], types[i - 2]],
        };
        let t = s.add_type(format!("L{i}"), &supers).expect("unique");
        let a = s
            .add_attr(format!("l{i}_a"), ValueType::INT, t)
            .expect("unique");
        s.add_reader(a, t).expect("available");
        types.push(t);
    }
    s
}

/// A wide forest schema that generates in linear time: `n_types` types
/// in independent 8-type clusters (small diamonds inside a cluster, no
/// edges across), two attributes per type with readers, and a small
/// per-cluster call graph over the accessors. [`random_schema`] pays a
/// superlinear price for hierarchy-wide CPL retries and descendant
/// scans, which is fine at bench scale and prohibitive at the 10k-type
/// scale the snapshot cold-start experiment needs — bounded-depth
/// clusters keep every per-type step O(1).
pub fn wide_schema(n_types: usize, seed: u64) -> Schema {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = Schema::new();
    const CLUSTER: usize = 8;
    let n_clusters = n_types.div_ceil(CLUSTER);
    for c in 0..n_clusters {
        let size = CLUSTER.min(n_types - c * CLUSTER);
        let mut members: Vec<TypeId> = Vec::with_capacity(size);
        let mut accessors: Vec<GfId> = Vec::new();
        for j in 0..size {
            let i = c * CLUSTER + j;
            let t = s.add_type(format!("W{i}"), &[]).expect("unique name");
            if j > 0 {
                let mut chosen = vec![members[j - 1]];
                if j >= 2 && rng.gen_bool(0.35) {
                    chosen.push(members[rng.gen_range(0..j - 1)]);
                }
                // Same retry trick as `random_schema`, but over at most 8
                // cluster members, so the CPL check is constant-time.
                loop {
                    for (p, &sup) in chosen.iter().enumerate() {
                        s.add_super_with_prec(t, sup, p as i32 + 1)
                            .expect("edge to earlier type cannot cycle");
                    }
                    if s.cpl(t).is_ok() {
                        break;
                    }
                    for &sup in &chosen {
                        s.remove_super_edge(t, sup);
                    }
                    chosen.truncate(1); // single inheritance always linearizes
                }
            }
            for k in 0..2 {
                let a = s
                    .add_attr(format!("w{i}_a{k}"), ValueType::INT, t)
                    .expect("unique attr");
                if rng.gen_bool(0.8) {
                    let (gf, _) = s.add_reader(a, t).expect("attr available at owner");
                    accessors.push(gf);
                }
            }
            members.push(t);
        }
        // A two-gf call graph per cluster: `wf` reads a few of the
        // cluster's attributes, `wg` calls `wf` — enough structure for
        // applicability analysis to have real work per cluster.
        let f = s.add_gf(format!("wf{c}"), 1, None).expect("unique gf");
        let g = s.add_gf(format!("wg{c}"), 1, None).expect("unique gf");
        let mut bb = BodyBuilder::new();
        for _ in 0..3 {
            if accessors.is_empty() {
                break;
            }
            let callee = accessors[rng.gen_range(0..accessors.len())];
            bb.call(callee, vec![Expr::Param(0)]);
        }
        s.add_method(
            f,
            format!("wf{c}_m"),
            vec![Specializer::Type(members[0])],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh method");
        let mut bb = BodyBuilder::new();
        bb.call(f, vec![Expr::Param(0)]);
        s.add_method(
            g,
            format!("wg{c}_m"),
            vec![Specializer::Type(
                *members.last().expect("non-empty cluster"),
            )],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh method");
    }
    s.validate().expect("wide schema is well-formed");
    s
}

/// A single-dispatch (C++/Smalltalk-style) schema: a class chain
/// `C0 <- C1 <- … <- C(n-1)`, one attribute + accessors per class, and
/// for each class an override of the unary generic function `describe`
/// whose body reads that class's own attribute. The paper (§2) notes
/// single-argument dispatch is the special case of multi-methods where
/// only the first specializer varies — this family exercises exactly it.
pub fn single_dispatch_schema(n_classes: usize) -> Schema {
    let mut s = Schema::new();
    let describe = s
        .add_gf("describe", 1, Some(ValueType::INT))
        .expect("fresh");
    let mut prev: Option<TypeId> = None;
    for i in 0..n_classes {
        let supers: Vec<TypeId> = prev.into_iter().collect();
        let c = s.add_type(format!("C{i}"), &supers).expect("unique");
        let a = s
            .add_attr(format!("c{i}_f"), ValueType::INT, c)
            .expect("unique");
        s.add_accessors(a).expect("accessors");
        let getter = s.gf_id(&format!("get_c{i}_f")).expect("created above");
        let mut bb = BodyBuilder::new();
        bb.ret(Expr::call(getter, vec![Expr::Param(0)]));
        s.add_method(
            describe,
            format!("describe_c{i}"),
            vec![Specializer::Type(c)],
            MethodKind::General(bb.finish()),
            Some(ValueType::INT),
        )
        .expect("override per class");
        prev = Some(c);
    }
    s.validate().expect("single-dispatch schema is well-formed");
    s
}

/// One type with an attribute, plus a chain of `depth` methods
/// `m0 → m1 → … → m(depth-1) → get_x`. Used to scale `IsApplicable` call
/// graph depth. Returns the schema; the source type is named `"A"` and
/// the entry method `"m0"`.
pub fn call_chain_schema(depth: usize) -> Schema {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).expect("fresh");
    let x = s.add_attr("x", ValueType::INT, a).expect("fresh");
    let (get_x, _) = s.add_reader(x, a).expect("fresh");
    let mut next_callee = get_x;
    for i in (0..depth).rev() {
        let gf = s.add_gf(format!("f{i}"), 1, None).expect("unique");
        let mut bb = BodyBuilder::new();
        bb.call(next_callee, vec![Expr::Param(0)]);
        s.add_method(
            gf,
            format!("m{i}"),
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh");
        next_callee = gf;
    }
    s
}

/// One type plus a ring of `len` mutually recursive methods, the last of
/// which also reads the attribute. Scales the cycle machinery.
pub fn call_cycle_schema(len: usize) -> Schema {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).expect("fresh");
    let x = s.add_attr("x", ValueType::INT, a).expect("fresh");
    let (get_x, _) = s.add_reader(x, a).expect("fresh");
    let gfs: Vec<GfId> = (0..len)
        .map(|i| s.add_gf(format!("f{i}"), 1, None).expect("unique"))
        .collect();
    for i in 0..len {
        let mut bb = BodyBuilder::new();
        bb.call(gfs[(i + 1) % len], vec![Expr::Param(0)]);
        if i == len - 1 {
            bb.call(get_x, vec![Expr::Param(0)]);
        }
        s.add_method(
            gfs[i],
            format!("m{i}"),
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh");
    }
    s
}

/// A call-graph stress schema for the condensation index: one type `"A"`
/// carrying `chains` deep single-candidate call chains (each `depth`
/// methods ending in its own attribute reader), `rings` mutually
/// recursive cycle rings of `ring_len` methods that overlap the chains
/// (each ring member also calls into a chain picked by the seeded RNG,
/// and the rings share members with each other via extra cross-calls),
/// plus seeded fan-out methods calling several chain heads at once.
///
/// Every generic function has exactly one method, so from `A` every call
/// site is single-candidate: the whole schema is answerable by the
/// applicability index without fallback, which is what makes it a useful
/// best-case stressor (large SCC condensation, wide footprints).
/// Deterministic for a given parameter set.
pub fn call_heavy_schema(
    chains: usize,
    depth: usize,
    rings: usize,
    ring_len: usize,
    seed: u64,
) -> Schema {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).expect("fresh");

    // Chains: c{i}_x attribute + f{i}_{j} methods, leaf-first, exactly as
    // call_chain_schema but namespaced per chain. chain_heads[i] is the
    // gf whose (single) method starts chain i.
    let mut chain_heads: Vec<GfId> = Vec::with_capacity(chains);
    for i in 0..chains {
        let x = s
            .add_attr(format!("c{i}_x"), ValueType::INT, a)
            .expect("fresh");
        let (get_x, _) = s.add_reader(x, a).expect("fresh");
        let mut next_callee = get_x;
        for j in (0..depth).rev() {
            let gf = s.add_gf(format!("f{i}_{j}"), 1, None).expect("unique");
            let mut bb = BodyBuilder::new();
            bb.call(next_callee, vec![Expr::Param(0)]);
            s.add_method(
                gf,
                format!("m{i}_{j}"),
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .expect("fresh");
            next_callee = gf;
        }
        chain_heads.push(next_callee);
    }

    // Rings: r{k}_{j} methods in a cycle; each member also calls a seeded
    // chain head (grounding the ring's footprint in that chain's
    // attribute), and ring k > 0 cross-calls into ring k-1, merging the
    // rings into larger SCC structure.
    let mut prev_ring: Vec<GfId> = Vec::new();
    for k in 0..rings {
        let gfs: Vec<GfId> = (0..ring_len)
            .map(|j| s.add_gf(format!("r{k}_{j}"), 1, None).expect("unique"))
            .collect();
        for j in 0..ring_len {
            let mut bb = BodyBuilder::new();
            bb.call(gfs[(j + 1) % ring_len], vec![Expr::Param(0)]);
            if !chain_heads.is_empty() {
                let pick = rng.gen_range(0..chain_heads.len());
                bb.call(chain_heads[pick], vec![Expr::Param(0)]);
            }
            if j == 0 && !prev_ring.is_empty() {
                bb.call(prev_ring[0], vec![Expr::Param(0)]);
            }
            s.add_method(
                gfs[j],
                format!("rm{k}_{j}"),
                vec![Specializer::Type(a)],
                MethodKind::General(bb.finish()),
                None,
            )
            .expect("fresh");
        }
        prev_ring = gfs;
    }

    // Fan-out: one method per chain calling 1–4 seeded chain heads, the
    // wide-footprint consumers a batch of projections hammers.
    for i in 0..chains {
        let gf = s.add_gf(format!("fan{i}"), 1, None).expect("unique");
        let mut bb = BodyBuilder::new();
        let width = rng.gen_range(1..=4usize.min(chains));
        for _ in 0..width {
            let pick = rng.gen_range(0..chain_heads.len());
            bb.call(chain_heads[pick], vec![Expr::Param(0)]);
        }
        s.add_method(
            gf,
            format!("fanm{i}"),
            vec![Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .expect("fresh");
    }
    s.validate().expect("call-heavy schema is well-formed");
    s
}

/// A dispatch-polymorphic stressor for the semantic footprint
/// refinement: base type `A`, subtype `B` (the intended projection
/// source), and two flavours of disjunctive call unit.
///
/// A *demotable* unit's generic function has two candidates from `B` —
/// an `A`-specialized method reading the unit's attribute and an empty
/// `B`-specialized override — whose footprints nest (`∅ ⊆ {x}`), so the
/// semantic refinement collapses the disjunction to one conjunctive
/// edge. An *incomparable* unit's candidates read different attributes;
/// no footprint is a minimum and the fallback seam survives at every
/// precision. Each unit is topped by a chain of `depth` callers (the
/// first holds the disjunctive site, the rest inherit the seam
/// caller-ward), so the syntactic index marks
/// `(demotable + incomparable) × depth` methods fallback while the
/// semantic one marks only `incomparable × depth`: the demotion ratio
/// is `demotable / (demotable + incomparable)`.
pub fn disjunctive_schema(demotable: usize, incomparable: usize, depth: usize) -> Schema {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).expect("fresh");
    let b = s.add_type("B", &[a]).expect("fresh");
    for (flavour, count) in [("d", demotable), ("i", incomparable)] {
        for u in 0..count {
            let x = s
                .add_attr(format!("{flavour}{u}_x"), ValueType::INT, a)
                .expect("unique");
            let (get_x, _) = s.add_reader(x, a).expect("available");
            let g = s
                .add_gf(format!("g_{flavour}{u}"), 1, None)
                .expect("unique");
            let mut ga = BodyBuilder::new();
            ga.call(get_x, vec![Expr::Param(0)]);
            s.add_method(
                g,
                format!("g_{flavour}{u}_a"),
                vec![Specializer::Type(a)],
                MethodKind::General(ga.finish()),
                None,
            )
            .expect("fresh");
            let override_body = if flavour == "d" {
                // Empty footprint: a ⊆-minimum of the candidate set.
                BodyBuilder::new().finish()
            } else {
                // Reads a different attribute: incomparable with `{x}`.
                let y = s
                    .add_attr(format!("{flavour}{u}_y"), ValueType::INT, a)
                    .expect("unique");
                let (get_y, _) = s.add_reader(y, a).expect("available");
                let mut gb = BodyBuilder::new();
                gb.call(get_y, vec![Expr::Param(0)]);
                gb.finish()
            };
            s.add_method(
                g,
                format!("g_{flavour}{u}_b"),
                vec![Specializer::Type(b)],
                MethodKind::General(override_body),
                None,
            )
            .expect("fresh");
            // The caller chain above the disjunctive site. From `B` the
            // call to `g` sees both candidates, so the direct caller is
            // the seam and the rest of the chain inherits it.
            let mut callee = g;
            for j in 0..depth.max(1) {
                let h = s
                    .add_gf(format!("h_{flavour}{u}_{j}"), 1, None)
                    .expect("unique");
                let mut bb = BodyBuilder::new();
                bb.call(callee, vec![Expr::Param(0)]);
                s.add_method(
                    h,
                    format!("h_{flavour}{u}_{j}_m"),
                    vec![Specializer::Type(a)],
                    MethodKind::General(bb.finish()),
                    None,
                )
                .expect("fresh");
                callee = h;
            }
        }
    }
    s.validate().expect("disjunctive schema is well-formed");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_schema_is_deterministic() {
        let p = GenParams::default();
        let s1 = random_schema(&p);
        let s2 = random_schema(&p);
        assert_eq!(s1.render_hierarchy(), s2.render_hierarchy());
        assert_eq!(s1.n_methods(), s2.n_methods());
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = random_schema(&GenParams::default());
        let s2 = random_schema(&GenParams {
            seed: 99,
            ..GenParams::default()
        });
        // Hierarchies are generated randomly; distinct seeds should give
        // distinct shapes for the default size.
        assert_ne!(s1.render_hierarchy(), s2.render_hierarchy());
    }

    #[test]
    fn generated_schemas_validate_across_seeds() {
        for seed in 0..25 {
            let s = random_schema(&GenParams {
                seed,
                n_types: 15,
                ..GenParams::default()
            });
            s.validate().unwrap();
            for t in s.live_type_ids() {
                s.cpl(t).unwrap();
            }
        }
    }

    #[test]
    fn projection_picker_nonempty_and_available() {
        let s = random_schema(&GenParams::default());
        let src = deepest_type(&s);
        let proj = random_projection(&s, src, 0.5, 7);
        assert!(!proj.is_empty());
        for a in proj {
            assert!(s.attr_available_at(a, src));
        }
    }

    #[test]
    fn batch_requests_are_deterministic_and_wellformed() {
        let s = random_schema(&GenParams::default());
        let batch = batch_requests(&s, 64, 0.5, 0xBA7C);
        assert_eq!(batch.len(), 64);
        for (source, projection) in &batch {
            assert!(s.is_live(*source));
            assert!(!projection.is_empty());
            for &a in projection {
                assert!(s.attr_available_at(a, *source));
            }
        }
        // Same seed reproduces the batch; a different seed diverges.
        assert_eq!(batch, batch_requests(&s, 64, 0.5, 0xBA7C));
        assert_ne!(batch, batch_requests(&s, 64, 0.5, 0xBA7D));
    }

    #[test]
    fn chain_and_ladder_shapes() {
        let c = chain_schema(10);
        let top = c.type_id("T9").unwrap();
        assert_eq!(c.ancestors(top).len(), 9);
        let l = ladder_schema(10);
        let top = l.type_id("L9").unwrap();
        assert_eq!(l.ancestors(top).len(), 9);
        l.validate().unwrap();
        l.cpl(top).unwrap();
    }

    #[test]
    fn call_chain_and_cycle_validate() {
        let s = call_chain_schema(50);
        s.validate().unwrap();
        assert_eq!(s.n_methods(), 51);
        let s = call_cycle_schema(12);
        s.validate().unwrap();
        assert_eq!(s.n_methods(), 13);
    }

    #[test]
    fn call_heavy_is_deterministic_and_validates() {
        let s1 = call_heavy_schema(4, 10, 3, 5, 7);
        let s2 = call_heavy_schema(4, 10, 3, 5, 7);
        assert_eq!(s1.render_methods(), s2.render_methods());
        // 4 chains × (10 methods + 1 reader) + 3 rings × 5 + 4 fan-outs.
        assert_eq!(s1.n_methods(), 4 * 11 + 3 * 5 + 4);
    }

    #[test]
    fn call_heavy_is_degenerate_safely() {
        // No chains / no rings still validates.
        call_heavy_schema(0, 5, 2, 3, 1).validate().unwrap();
        call_heavy_schema(3, 0, 0, 4, 1).validate().unwrap();
    }

    #[test]
    fn disjunctive_schema_demotes_exactly_the_nested_units() {
        use td_model::AnalysisPrecision;
        let s = disjunctive_schema(3, 1, 2);
        let b = s.type_id("B").unwrap();
        let syn = s
            .cached_applicability_index_at(b, AnalysisPrecision::Syntactic)
            .unwrap();
        let sem = s
            .cached_applicability_index_at(b, AnalysisPrecision::Semantic)
            .unwrap();
        // 4 units × a 2-caller chain syntactically; the 3 demotable
        // units collapse, the incomparable one survives.
        assert_eq!(syn.fallback_methods(), 4 * 2);
        assert_eq!(sem.fallback_methods(), 2);
        let demoted = syn.fallback_methods() - sem.fallback_methods();
        assert!(demoted as f64 / syn.fallback_methods() as f64 >= 0.3);
    }
}
