//! The paper's §2 remark, verified: "since such single-argument method
//! dispatch is a special case of multi-method dispatch, the results of
//! our work can be applied to such languages as well." These tests run
//! the whole pipeline over a C++/Smalltalk-style single-dispatch schema.

use std::collections::BTreeSet;
use td_core::{project, unproject, ProjectionOptions};
use td_model::{AttrId, CallArg};
use td_workload::gen::single_dispatch_schema;

#[test]
fn overrides_dispatch_by_receiver_only() {
    let s = single_dispatch_schema(4);
    let describe = s.gf_id("describe").unwrap();
    for i in 0..4 {
        let c = s.type_id(&format!("C{i}")).unwrap();
        let m = s
            .most_specific(describe, &[CallArg::Object(c)])
            .unwrap()
            .unwrap();
        assert_eq!(s.method_label(m), format!("describe_c{i}"));
    }
}

#[test]
fn projection_keeps_exactly_the_reachable_overrides() {
    let mut s = single_dispatch_schema(5);
    let leaf = s.type_id("C4").unwrap();
    // Project the leaf onto the fields of C0 and C2 only.
    let projection: BTreeSet<AttrId> = ["c0_f", "c2_f"]
        .iter()
        .map(|n| s.attr_id(n).unwrap())
        .collect();
    let d = project(&mut s, leaf, &projection, &ProjectionOptions::default()).unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);

    let labels: Vec<&str> = d.applicable().iter().map(|&m| s.method_label(m)).collect();
    // describe_c0 and describe_c2 read projected fields; the other
    // overrides read fields that were projected away.
    assert!(labels.contains(&"describe_c0"));
    assert!(labels.contains(&"describe_c2"));
    assert!(!labels.contains(&"describe_c1"));
    assert!(!labels.contains(&"describe_c3"));
    assert!(!labels.contains(&"describe_c4"));

    // The view's own dispatch selects the most specific surviving
    // override — describe_c2, now sitting on ^C2.
    let describe = s.gf_id("describe").unwrap();
    let m = s
        .most_specific(describe, &[CallArg::Object(d.derived)])
        .unwrap()
        .unwrap();
    assert_eq!(s.method_label(m), "describe_c2");

    // Original classes still dispatch to their own overrides.
    for i in 0..5 {
        let c = s.type_id(&format!("C{i}")).unwrap();
        let m = s
            .most_specific(describe, &[CallArg::Object(c)])
            .unwrap()
            .unwrap();
        assert_eq!(s.method_label(m), format!("describe_c{i}"));
    }
}

#[test]
fn single_dispatch_roundtrip_through_drop() {
    let mut s = single_dispatch_schema(3);
    let before = (s.render_hierarchy(), s.render_methods());
    let leaf = s.type_id("C2").unwrap();
    let projection: BTreeSet<AttrId> = [s.attr_id("c1_f").unwrap()].into_iter().collect();
    let d = project(&mut s, leaf, &projection, &ProjectionOptions::default()).unwrap();
    assert!(d.invariants_ok());
    unproject(&mut s, &d).unwrap();
    assert_eq!((s.render_hierarchy(), s.render_methods()), before);
}
