//! Golden tests: the paper's worked examples, end to end.
//!
//! * Example 1 (§4.2): `IsApplicable` over the Figure 3 schema for
//!   `Π_{a2,e2,h2}(A)` classifies exactly {v1, u3, w2, get_h2} applicable.
//! * Figure 4 (§5.2): `FactorState` produces surrogates for A, B, C, E,
//!   F, H (not D, G) with the exact wiring and attribute moves drawn.
//! * Example 3 (§6.2): factored signatures v1(Â,Ĉ), u3(B̂), w2(Ĉ),
//!   get_h2(B̂).
//! * Example 4 / Figure 5 (§6.4–6.5): with the z1 body, Z = {D, G} and
//!   `Augment` adds D̂ and Ĝ wired as in Figure 5.

use std::collections::BTreeSet;
use td_core::{applicability_fixpoint, project_named, ProjectionOptions, TraceEvent};
use td_model::{MethodId, Schema, Specializer, TypeId};
use td_workload::figures;

fn labels(s: &Schema, ms: &[MethodId]) -> BTreeSet<String> {
    ms.iter().map(|&m| s.method_label(m).to_string()).collect()
}

fn set(names: &[&str]) -> BTreeSet<String> {
    names.iter().map(|n| n.to_string()).collect()
}

#[test]
fn example_1_applicability() {
    let mut s = figures::fig3();
    let opts = ProjectionOptions {
        record_trace: true,
        ..Default::default()
    };
    let d = project_named(&mut s, "A", figures::FIG4_PROJECTION, &opts).unwrap();

    assert_eq!(
        labels(&s, d.applicable()),
        set(figures::EX1_APPLICABLE),
        "applicable set must match Example 1"
    );
    assert_eq!(
        labels(&s, d.not_applicable()),
        set(figures::EX1_NOT_APPLICABLE),
        "not-applicable set must match Example 1"
    );

    // The x1/y1 interplay the paper narrates: y1 is optimistically
    // assumed applicable during the x1 test, then retracted when x1
    // fails, and finally classified not applicable.
    let y1 = s.method_by_label("y1").unwrap();
    let x1 = s.method_by_label("x1").unwrap();
    let retraction = d.applicability.trace.iter().any(|e| {
        matches!(e, TraceEvent::DependentsRetracted { failed, removed }
                 if *failed == x1 && removed.contains(&y1))
    });
    assert!(retraction, "y1 must be retracted when x1 fails");
    let cycle = d.applicability.trace.iter().any(|e| {
        matches!(e, TraceEvent::CycleAssumed { method, dependents }
                 if *method == x1 && dependents.contains(&y1))
    });
    assert!(cycle, "x1 must be optimistically assumed while testing y1");

    // Independent oracle agrees.
    let a = s2_source();
    let (schema2, proj2) = a;
    let fix = applicability_fixpoint(&schema2, proj2.0, &proj2.1).unwrap();
    let fix_labels: BTreeSet<String> = fix
        .iter()
        .map(|&m| schema2.method_label(m).to_string())
        .collect();
    assert_eq!(fix_labels, set(figures::EX1_APPLICABLE));
}

/// Fresh Figure 3 schema plus the (source, projection) pair of §4.2, for
/// runs that must not see the mutated hierarchy.
fn s2_source() -> (Schema, (TypeId, BTreeSet<td_model::AttrId>)) {
    let s = figures::fig3();
    let a = s.type_id("A").unwrap();
    let proj = figures::FIG4_PROJECTION
        .iter()
        .map(|n| s.attr_id(n).unwrap())
        .collect();
    (s, (a, proj))
}

#[test]
fn figure_4_factored_hierarchy() {
    let mut s = figures::fig3();
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions::default(),
    )
    .unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);

    // Exactly the six surrogates of Figure 4, none for D or G.
    let sources: BTreeSet<String> = d
        .factor_surrogates
        .iter()
        .map(|&(src, _)| s.type_name(src).to_string())
        .collect();
    assert_eq!(
        sources,
        figures::FIG4_SURROGATE_SOURCES
            .iter()
            .map(|n| n.to_string())
            .collect::<BTreeSet<_>>()
    );
    assert!(d.augment_surrogates.is_empty(), "no Augment without z1");

    // Attribute moves: a2 -> ^A, e2 -> ^E, h2 -> ^H (exact order of the
    // §5.2 trace: a2 first, then the C-branch reaches H, then E).
    let moved: Vec<(String, String, String)> = d
        .moved_attrs
        .iter()
        .map(|&(a, from, to)| {
            (
                s.attr_name(a).to_string(),
                s.type_name(from).to_string(),
                s.type_name(to).to_string(),
            )
        })
        .collect();
    assert_eq!(
        moved,
        vec![
            ("a2".into(), "A".into(), "^A".into()),
            ("h2".into(), "H".into(), "^H".into()),
            ("e2".into(), "E".into(), "^E".into()),
        ]
    );

    // The exact wiring of Figure 4 (supertype lists with precedences).
    let render = s.render_hierarchy();
    let expect_lines = [
        "A {a1} <- ^A(0) C(1) B(2)",
        "^A [surrogate of A] {a2} <- ^C(1) ^B(2)",
        "B {b1} <- ^B(0) D(1) E(2)",
        "^B [surrogate of B] {} <- ^E(2)",
        "C {c1} <- ^C(0) F(1) E(2)",
        "^C [surrogate of C] {} <- ^F(1) ^E(2)",
        "E {e1} <- ^E(0) G(1) H(2)",
        "^E [surrogate of E] {e2} <- ^H(2)",
        "F {f1} <- ^F(0) H(1)",
        "^F [surrogate of F] {} <- ^H(1)",
        "H {h1} <- ^H(0)",
        "^H [surrogate of H] {h2}",
        "D {d1}",
        "G {g1}",
    ];
    for line in expect_lines {
        assert!(
            render.lines().any(|l| l == line),
            "missing hierarchy line `{line}` in:\n{render}"
        );
    }

    // Derived type state is exactly the projection.
    let e_hat = s.type_id("^A").unwrap();
    assert_eq!(d.derived, e_hat);
    let cum: BTreeSet<String> = s
        .cumulative_attrs(e_hat)
        .into_iter()
        .map(|a| s.attr_name(a).to_string())
        .collect();
    assert_eq!(cum, set(figures::FIG4_PROJECTION));
}

#[test]
fn example_3_factored_signatures() {
    let mut s = figures::fig3();
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions::default(),
    )
    .unwrap();
    let rendered: BTreeSet<String> = d
        .applicable()
        .iter()
        .map(|&m| s.render_signature(m))
        .collect();
    assert_eq!(rendered, set(figures::EX3_SIGNATURES));
    // Non-applicable methods keep their original signatures.
    let x1 = s.method_by_label("x1").unwrap();
    assert_eq!(s.render_signature(x1), "x1(A, B)");
}

#[test]
fn example_4_and_figure_5_augmentation() {
    let mut s = figures::fig3_with_z1();
    let d = project_named(
        &mut s,
        "A",
        figures::FIG4_PROJECTION,
        &ProjectionOptions::default(),
    )
    .unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);

    // z1 is applicable (its only relevant call resolves through u3).
    assert!(labels(&s, d.applicable()).contains("z1"));

    // Z = {D, G} exactly as Example 4 posits.
    let z_names: BTreeSet<String> = d
        .z_types
        .iter()
        .map(|&t| s.type_name(t).to_string())
        .collect();
    assert_eq!(z_names, set(&["D", "G"]));

    // Augment created ^G then ^D (the §6.4 walk reaches G through C's
    // branch before it reaches D through B's).
    let aug: Vec<(String, String)> = d
        .augment_surrogates
        .iter()
        .map(|&(src, hat)| (s.type_name(src).to_string(), s.type_name(hat).to_string()))
        .collect();
    assert_eq!(
        aug,
        vec![
            ("G".to_string(), "^G".to_string()),
            ("D".to_string(), "^D".to_string())
        ]
    );

    // Figure 5 wiring.
    let render = s.render_hierarchy();
    for line in [
        "^G [surrogate of G] {}",
        "G {g1} <- ^G(0)",
        "^D [surrogate of D] {}",
        "D {d1} <- ^D(0)",
        "^E [surrogate of E] {e2} <- ^G(1) ^H(2)",
        "^B [surrogate of B] {} <- ^D(1) ^E(2)",
    ] {
        assert!(
            render.lines().any(|l| l == line),
            "missing hierarchy line `{line}` in:\n{render}"
        );
    }

    // z1's signature and body were re-typed: z1(^C, ^B), locals g: ^G and
    // d: ^D, result ^G.
    let z1 = s.method_by_label("z1").unwrap();
    assert_eq!(s.render_signature(z1), "z1(^C, ^B)");
    let c_hat = s.type_id("^C").unwrap();
    let b_hat = s.type_id("^B").unwrap();
    assert_eq!(
        s.method(z1).specializers,
        vec![Specializer::Type(c_hat), Specializer::Type(b_hat)]
    );
    let g_hat = s.type_id("^G").unwrap();
    let d_hat = s.type_id("^D").unwrap();
    let body = s.method(z1).body().unwrap();
    assert_eq!(body.locals[0].ty, td_model::ValueType::Object(g_hat));
    assert_eq!(body.locals[1].ty, td_model::ValueType::Object(d_hat));
    assert_eq!(
        s.method(z1).result,
        Some(td_model::ValueType::Object(g_hat))
    );

    // The re-typed assignment is type-correct: ^C <= ^G through ^E.
    assert!(s.is_subtype(c_hat, g_hat));
    assert!(s.is_subtype(b_hat, d_hat));
    s.validate().unwrap();
}

#[test]
fn figure_2_person_employee() {
    let mut s = figures::fig1();
    let d = project_named(
        &mut s,
        "Employee",
        &["SSN", "date_of_birth", "pay_rate"],
        &ProjectionOptions::default(),
    )
    .unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);
    let app = labels(&s, d.applicable());
    assert!(app.contains("age"));
    assert!(app.contains("promote"));
    assert!(!app.contains("income"));
    let render = s.render_hierarchy();
    for line in [
        "^Person [surrogate of Person] {SSN, date_of_birth}",
        "Person {name} <- ^Person(0)",
        "^Employee [surrogate of Employee] {pay_rate} <- ^Person(1)",
        "Employee {hrs_worked} <- ^Employee(0) Person(1)",
    ] {
        assert!(
            render.lines().any(|l| l == line),
            "missing hierarchy line `{line}` in:\n{render}"
        );
    }
}
