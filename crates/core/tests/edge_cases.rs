//! Edge cases of the derivation pipeline that the paper's examples never
//! exercise.

use std::collections::BTreeSet;
use td_core::{compute_applicability, project, project_named, unproject, ProjectionOptions};
use td_model::{BodyBuilder, CallArg, Expr, MethodKind, Schema, Specializer, ValueType};

fn opts() -> ProjectionOptions {
    ProjectionOptions::default()
}

/// Projecting a root type: no ancestors to factor, surrogate carries the
/// projected locals directly.
#[test]
fn projection_over_a_root_type() {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).unwrap();
    let x = s.add_attr("x", ValueType::INT, a).unwrap();
    let _y = s.add_attr("y", ValueType::INT, a).unwrap();
    s.add_accessors(x).unwrap();
    let d = project_named(&mut s, "A", &["x"], &opts()).unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);
    assert_eq!(d.factor_surrogates.len(), 1);
    assert_eq!(s.cumulative_attrs(d.derived), [x].into_iter().collect());
    // A keeps y locally, x lives on ^A.
    assert_eq!(s.type_(a).local_attrs.len(), 1);
}

/// A type with two unrelated roots: both branches are factored when both
/// carry projected attributes.
#[test]
fn projection_across_multiple_roots() {
    let mut s = Schema::new();
    let r1 = s.add_type("R1", &[]).unwrap();
    let r2 = s.add_type("R2", &[]).unwrap();
    let c = s.add_type("C", &[r1, r2]).unwrap();
    let x1 = s.add_attr("x1", ValueType::INT, r1).unwrap();
    let x2 = s.add_attr("x2", ValueType::INT, r2).unwrap();
    s.add_attr("c1", ValueType::INT, c).unwrap();
    let proj: BTreeSet<_> = [x1, x2].into_iter().collect();
    let d = project(&mut s, c, &proj, &opts()).unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);
    assert_eq!(d.factor_surrogates.len(), 3); // ^C ^R1 ^R2
    assert_eq!(s.cumulative_attrs(d.derived), proj);
    // The surrogate lattice mirrors the fork: ^C <= ^R1(1), ^R2(2).
    let supers: Vec<&str> = s
        .type_(d.derived)
        .super_ids()
        .map(|t| s.type_name(t))
        .collect();
    assert_eq!(supers, vec!["^R1", "^R2"]);
}

/// §4.1 case 2, isolated: a call with TWO source-derived arguments must
/// find a method applicable to the call *as written* — a method that only
/// matches after substituting the source at one position does not count.
#[test]
fn case_two_requires_all_combinations() {
    let mut s = Schema::new();
    let b = s.add_type("B", &[]).unwrap();
    let c = s.add_type("C", &[]).unwrap();
    // A <= B, C.
    let a = s.add_type("A", &[b, c]).unwrap();
    let x = s.add_attr("x", ValueType::INT, b).unwrap();
    let (get_x, _) = s.add_reader(x, b).unwrap();

    // n has one method n1(A, A) = {get_x($0)} — applicable to the call
    // n(A, A) but NOT to n(B, C).
    let n = s.add_gf("n", 2, None).unwrap();
    let mut bb = BodyBuilder::new();
    bb.call(get_x, vec![Expr::Param(0)]);
    let n1 = s
        .add_method(
            n,
            "n1",
            vec![Specializer::Type(a), Specializer::Type(a)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();

    // m1(B, C) = { n($0, $1) } — both arguments are source-derived, so
    // case 2 applies: candidates must be applicable to n(B, C). n1 is
    // not, so m1 dies even though n(Â, Â) would have a method.
    let m = s.add_gf("m", 2, None).unwrap();
    let mut bb = BodyBuilder::new();
    bb.call(n, vec![Expr::Param(0), Expr::Param(1)]);
    let m1 = s
        .add_method(
            m,
            "m1",
            vec![Specializer::Type(b), Specializer::Type(c)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();

    let proj: BTreeSet<_> = [x].into_iter().collect();
    let r = compute_applicability(&s, a, &proj, false).unwrap();
    assert!(!r.is_applicable(m1), "case 2 must reject m1");
    // n1 itself is applicable (its relevant call bottoms out in get_x).
    assert!(r.is_applicable(n1));
}

/// §4.1 case 1, isolated: with a single source-derived argument the
/// candidate set substitutes the source type, so a *more specific* method
/// unusable at the static type still rescues the call.
#[test]
fn case_one_substitutes_the_source() {
    let mut s = Schema::new();
    let b = s.add_type("B", &[]).unwrap();
    let a = s.add_type("A", &[b]).unwrap();
    let x = s.add_attr("x", ValueType::INT, a).unwrap();
    let (get_x, _) = s.add_reader(x, a).unwrap();

    // n1(A) reads projected state; there is NO method n(B).
    let n = s.add_gf("n", 1, None).unwrap();
    let mut bb = BodyBuilder::new();
    bb.call(get_x, vec![Expr::Param(0)]);
    s.add_method(
        n,
        "n1",
        vec![Specializer::Type(a)],
        MethodKind::General(bb.finish()),
        None,
    )
    .unwrap();

    // m1(B) = { n($0) }: statically, n(B) has no applicable method at
    // all; case 1 substitutes A and finds n1.
    let m = s.add_gf("m", 1, None).unwrap();
    let mut bb = BodyBuilder::new();
    bb.call(n, vec![Expr::Param(0)]);
    let m1 = s
        .add_method(
            m,
            "m1",
            vec![Specializer::Type(b)],
            MethodKind::General(bb.finish()),
            None,
        )
        .unwrap();

    let proj: BTreeSet<_> = [x].into_iter().collect();
    let r = compute_applicability(&s, a, &proj, false).unwrap();
    assert!(
        r.is_applicable(m1),
        "case 1 must substitute the source type"
    );
}

/// Writers follow the same accessor rule as readers.
#[test]
fn writer_applicability_follows_projection() {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).unwrap();
    let x = s.add_attr("x", ValueType::INT, a).unwrap();
    let y = s.add_attr("y", ValueType::INT, a).unwrap();
    s.add_accessors(x).unwrap();
    s.add_accessors(y).unwrap();
    let d = project_named(&mut s, "A", &["x"], &opts()).unwrap();
    let labels: Vec<&str> = d.applicable().iter().map(|&m| s.method_label(m)).collect();
    assert!(labels.contains(&"get_x"));
    assert!(labels.contains(&"set_x"));
    assert!(!labels.contains(&"get_y"));
    assert!(!labels.contains(&"set_y"));
    // set_x was factored with its prim position intact.
    let set_x = s.method_by_label("set_x").unwrap();
    assert!(matches!(
        s.method(set_x).specializers[1],
        Specializer::Prim(_)
    ));
    assert!(d.invariants_ok());
}

/// Three stacked derivations, then dropped outer-first, restore the
/// original schema exactly.
#[test]
fn three_deep_stack_and_unwind() {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).unwrap();
    for n in ["x", "y", "z"] {
        let attr = s.add_attr(n, ValueType::INT, a).unwrap();
        s.add_accessors(attr).unwrap();
    }
    let pristine_h = s.render_hierarchy();
    let pristine_m = s.render_methods();

    let d1 = project_named(&mut s, "A", &["x", "y"], &opts()).unwrap();
    let v1 = s.type_name(d1.derived).to_string();
    let d2 = project_named(&mut s, &v1, &["x"], &opts()).unwrap();
    let v2 = s.type_name(d2.derived).to_string();
    let d3 = project_named(&mut s, &v2, &["x"], &opts()).unwrap();
    assert!(d1.invariants_ok() && d2.invariants_ok() && d3.invariants_ok());
    let x = s.attr_id("x").unwrap();
    assert_eq!(s.cumulative_attrs(d3.derived), [x].into_iter().collect());

    unproject(&mut s, &d3).unwrap();
    unproject(&mut s, &d2).unwrap();
    unproject(&mut s, &d1).unwrap();
    assert_eq!(s.render_hierarchy(), pristine_h);
    assert_eq!(s.render_methods(), pristine_m);
    s.validate().unwrap();
}

/// A generic function whose methods specialize only on primitives never
/// enters the applicability universe.
#[test]
fn prim_only_methods_are_outside_the_universe() {
    let mut s = Schema::new();
    let a = s.add_type("A", &[]).unwrap();
    let x = s.add_attr("x", ValueType::INT, a).unwrap();
    s.add_reader(x, a).unwrap();
    let f = s.add_gf("f", 1, None).unwrap();
    let m = s
        .add_method(
            f,
            "f_prim",
            vec![Specializer::Prim(td_model::PrimType::Int)],
            MethodKind::General(Default::default()),
            None,
        )
        .unwrap();
    let proj: BTreeSet<_> = [x].into_iter().collect();
    let r = compute_applicability(&s, a, &proj, false).unwrap();
    assert!(!r.universe.contains(&m));
    let d = project(&mut s, a, &proj, &opts()).unwrap();
    assert!(d.invariants_ok());
    // The prim-only method keeps its signature.
    assert_eq!(
        s.method(m).specializers,
        vec![Specializer::Prim(td_model::PrimType::Int)]
    );
}

/// Projected attributes reachable through a diamond are factored once and
/// inherited once.
#[test]
fn diamond_projection_inherits_once() {
    let mut s = Schema::new();
    let top = s.add_type("Top", &[]).unwrap();
    let l = s.add_type("L", &[top]).unwrap();
    let r = s.add_type("R", &[top]).unwrap();
    let bottom = s.add_type("Bottom", &[l, r]).unwrap();
    let t = s.add_attr("t", ValueType::INT, top).unwrap();
    s.add_attr("l", ValueType::INT, l).unwrap();
    s.add_attr("r", ValueType::INT, r).unwrap();
    let proj: BTreeSet<_> = [t].into_iter().collect();
    let d = project(&mut s, bottom, &proj, &opts()).unwrap();
    assert!(d.invariants_ok(), "{:#?}", d.invariants);
    // ^Top exists once; both ^L and ^R inherit from it.
    let top_hat = s.type_id("^Top").unwrap();
    let l_hat = s.type_id("^L").unwrap();
    let r_hat = s.type_id("^R").unwrap();
    assert!(s.is_subtype(l_hat, top_hat));
    assert!(s.is_subtype(r_hat, top_hat));
    assert_eq!(s.cumulative_attrs(d.derived).len(), 1);
}

/// Projection lists are order-insensitive (they are sets).
#[test]
fn projection_is_a_set() {
    let mut s1 = td_workload::figures::fig1();
    let mut s2 = td_workload::figures::fig1();
    let d1 = project_named(&mut s1, "Employee", &["SSN", "pay_rate"], &opts()).unwrap();
    let d2 = project_named(&mut s2, "Employee", &["pay_rate", "SSN"], &opts()).unwrap();
    assert_eq!(s1.render_hierarchy(), s2.render_hierarchy());
    assert_eq!(d1.applicable().len(), d2.applicable().len());
}

/// Dispatch on the derived type selects among factored methods with the
/// same relative precedence as the originals had.
#[test]
fn derived_type_dispatch_mirrors_source_ranking() {
    let mut s = Schema::new();
    let p = s.add_type("P", &[]).unwrap();
    let e = s.add_type("E", &[p]).unwrap();
    let x = s.add_attr("x", ValueType::INT, p).unwrap();
    let (get_x, _) = s.add_reader(x, p).unwrap();
    let f = s.add_gf("f", 1, Some(ValueType::INT)).unwrap();
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::call(get_x, vec![Expr::Param(0)]));
    let f_p = s
        .add_method(
            f,
            "f_p",
            vec![Specializer::Type(p)],
            MethodKind::General(bb.finish()),
            Some(ValueType::INT),
        )
        .unwrap();
    let mut bb = BodyBuilder::new();
    bb.ret(Expr::call(get_x, vec![Expr::Param(0)]));
    let f_e = s
        .add_method(
            f,
            "f_e",
            vec![Specializer::Type(e)],
            MethodKind::General(bb.finish()),
            Some(ValueType::INT),
        )
        .unwrap();

    let proj: BTreeSet<_> = [x].into_iter().collect();
    let d = project(&mut s, e, &proj, &opts()).unwrap();
    assert!(d.invariants_ok());
    // Both survive; on the derived type the (factored) f_e outranks f_p,
    // mirroring the original E ranking.
    assert!(d.applicable().contains(&f_p) && d.applicable().contains(&f_e));
    let ranked = s.rank_applicable(f, &[CallArg::Object(d.derived)]).unwrap();
    assert_eq!(ranked, vec![f_e, f_p]);
    // And on the original E nothing changed.
    let ranked = s.rank_applicable(f, &[CallArg::Object(e)]).unwrap();
    assert_eq!(ranked, vec![f_e, f_p]);
}
