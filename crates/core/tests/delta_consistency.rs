//! Delta-invalidation equivalence suite.
//!
//! The dispatch cache no longer flushes wholesale on mutation: each edit
//! emits a `SchemaDelta` and only the dependency-closed dirty set is
//! evicted. That optimization is only sound if it is *invisible* — a
//! schema that kept its surviving warm entries across a mutation stream
//! must answer every derivation question byte-identically to one that
//! rebuilt from scratch.
//!
//! These tests replay seeded random mutation streams
//! ([`td_workload::apply_random_mutations`]) into two copies of a warm
//! random schema. The `delta` copy keeps whatever the closure let
//! survive; the `rebuilt` copy is forced through `clear_dispatch_cache`
//! (the old all-or-nothing path). Then every report — applicability
//! partitions under all three engines, full lint text, explain proofs,
//! and projection summaries — must match byte for byte, while the cache
//! counters prove the delta copy genuinely kept entries warm.

use std::collections::BTreeSet;

use td_core::{
    compute_applicability_fixpoint, compute_applicability_indexed, explain, lint, project, Engine,
    ProjectionOptions,
};
use td_model::{AttrId, Schema, TypeId};
use td_workload::{
    apply_random_mutations, deepest_type, random_projection, random_schema, GenParams,
};

/// Sample views: the deepest type plus every fifth live type, each with
/// a seeded ~60% projection.
fn sample_views(s: &Schema, seed: u64) -> Vec<(TypeId, BTreeSet<AttrId>)> {
    let mut views = Vec::new();
    let deep = deepest_type(s);
    views.push((deep, random_projection(s, deep, 0.6, seed)));
    for (i, t) in s.live_type_ids().enumerate() {
        if i % 5 == 0 && t != deep {
            views.push((t, random_projection(s, t, 0.6, seed ^ (i as u64))));
        }
    }
    views.retain(|(_, proj)| !proj.is_empty());
    views
}

/// Everything derivable about one view, rendered to stable text. Runs
/// the indexed engine (exercises the condensation index cache), the
/// fixpoint oracle, lint, an explain proof per applicable method, and a
/// projection (on a throwaway fork, since `project` grows the schema).
fn view_report(s: &Schema, source: TypeId, projection: &BTreeSet<AttrId>) -> String {
    let mut out = String::new();
    let indexed =
        compute_applicability_indexed(s, source, projection, false).expect("indexed applicability");
    let oracle =
        compute_applicability_fixpoint(s, source, projection).expect("fixpoint applicability");
    for app in [&indexed, &oracle] {
        out.push_str("applicable:");
        for &m in &app.applicable {
            out.push(' ');
            out.push_str(s.method_label(m));
        }
        out.push_str("\nnot:");
        for &m in &app.not_applicable {
            out.push(' ');
            out.push_str(s.method_label(m));
        }
        out.push('\n');
    }
    out.push_str(&lint(s, Some((source, projection))).render_text());
    for &m in indexed.applicable.iter().take(3) {
        if let Ok(proof) = explain(s, source, projection, m) {
            out.push_str(&proof.render(s));
        }
    }
    for engine in [Engine::Indexed, Engine::Stack, Engine::Fixpoint] {
        let opts = ProjectionOptions {
            engine,
            ..ProjectionOptions::default()
        };
        let mut fork = s.clone();
        match project(&mut fork, source, projection, &opts) {
            Ok(d) => {
                out.push_str(&d.summary(&fork));
                out.push('\n');
            }
            Err(e) => {
                out.push_str(&format!("project error: {e}\n"));
            }
        }
    }
    out
}

fn full_report(s: &Schema, seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&lint(s, None).render_text());
    for (source, projection) in sample_views(s, seed) {
        out.push_str(&format!("== view {} ==\n", s.type_name(source)));
        out.push_str(&view_report(s, source, &projection));
    }
    out
}

/// Warm every cache the report path touches, so the mutation stream has
/// something real to invalidate (or keep).
fn warm(s: &Schema, seed: u64) {
    for (source, projection) in sample_views(s, seed) {
        let _ = compute_applicability_indexed(s, source, &projection, false);
        let _ = lint(s, Some((source, &projection)));
    }
    let _ = lint(s, None);
}

fn replay_and_compare(schema_seed: u64, stream_seed: u64, steps: usize) {
    let params = GenParams {
        seed: schema_seed,
        ..GenParams::default()
    };
    let mut delta = random_schema(&params);
    warm(&delta, stream_seed);

    let log = apply_random_mutations(&mut delta, steps, stream_seed);

    // The rebuilt twin: same post-mutation schema, but every cache
    // dropped — the pre-delta invalidation behavior.
    let rebuilt = delta.clone();
    rebuilt.clear_dispatch_cache();

    let delta_report = full_report(&delta, stream_seed);
    let rebuilt_report = full_report(&rebuilt, stream_seed);
    assert_eq!(
        delta_report,
        rebuilt_report,
        "delta-invalidated caches diverged from a from-scratch rebuild\n\
         schema seed {schema_seed}, stream seed {stream_seed}\nstream:\n{}",
        log.join("\n")
    );
}

#[test]
fn mutation_streams_cannot_distinguish_delta_caches_from_a_rebuild() {
    for (schema_seed, stream_seed) in [(1, 101), (2, 202), (3, 303), (0xD0_0D, 404)] {
        replay_and_compare(schema_seed, stream_seed, 16);
    }
}

#[test]
fn long_stream_on_one_schema() {
    replay_and_compare(42, 4242, 48);
}

#[test]
fn survivors_outnumber_evictions_for_leaf_heavy_streams() {
    // Counters must prove entries actually survive: a warm schema hit
    // by additive edits keeps most of its cache.
    let params = GenParams {
        seed: 9,
        ..GenParams::default()
    };
    let s = random_schema(&params);
    warm(&s, 9);
    let mut s = s;
    apply_random_mutations(&mut s, 16, 909);
    // Force the lazy closure to run so the counters are current.
    let _ = full_report(&s, 9);
    let stats = s.dispatch_cache_stats();
    assert_eq!(
        stats.full_flushes, 0,
        "additive mutation streams must never trigger a full flush: {stats}"
    );
    assert!(
        stats.delta_survivals > 0,
        "a warm schema under additive edits must keep some entries: {stats}"
    );
    assert!(
        stats.delta_survivals >= stats.delta_evictions,
        "leaf-heavy streams should keep more than they evict: {stats}"
    );
}
