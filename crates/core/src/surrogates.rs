//! The surrogate registry shared by `FactorState`, `FactorMethods` and
//! `Augment`.
//!
//! §5: "A surrogate type is a type that assumes a part of the state or
//! behavior of the source type from which it is spun off." Each derivation
//! keeps one registry so that the §5.1 check "if the surrogate type T̂ for
//! T and A does not already exist" and the §6.4 check "if Ŝ does not
//! exist" consult the same mapping.

use std::collections::HashMap;
use td_model::{Schema, TypeId};

use crate::error::Result;

/// Which pass created a surrogate. `FactorMethods` only rewrites
/// specializers to surrogates created by `FactorState` (§6.1); the body
/// re-typing pass (§6.3) uses both kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurrogateKind {
    /// Created by `FactorState` — carries projected state.
    Factor,
    /// Created by `Augment` — empty-state, exists to keep re-typed method
    /// bodies type-correct.
    Augment,
}

/// Per-derivation mapping from source types to their surrogates.
#[derive(Debug, Default, Clone)]
pub struct SurrogateRegistry {
    map: HashMap<TypeId, (TypeId, SurrogateKind)>,
}

impl SurrogateRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The surrogate for `source`, regardless of which pass created it.
    pub fn surrogate(&self, source: TypeId) -> Option<TypeId> {
        self.map.get(&source).map(|&(t, _)| t)
    }

    /// The surrogate for `source` only if `FactorState` created it.
    pub fn factor_surrogate(&self, source: TypeId) -> Option<TypeId> {
        match self.map.get(&source) {
            Some(&(t, SurrogateKind::Factor)) => Some(t),
            _ => None,
        }
    }

    /// Returns the existing surrogate for `source` or creates one in
    /// `schema` (named `^<source>`, disambiguated if taken) recording the
    /// creating pass. The boolean is `true` when the surrogate was created
    /// by this call — §5.1 branches on exactly that ("if type T̂ was
    /// created in this call").
    pub fn get_or_create(
        &mut self,
        schema: &mut Schema,
        source: TypeId,
        kind: SurrogateKind,
    ) -> Result<(TypeId, bool)> {
        if let Some(&(t, _)) = self.map.get(&source) {
            return Ok((t, false));
        }
        let name = unique_surrogate_name(schema, schema.type_name(source));
        let hat = schema.add_surrogate(name, source)?;
        self.map.insert(source, (hat, kind));
        Ok((hat, true))
    }

    /// All `(source, surrogate)` pairs created by the given pass, sorted by
    /// source id for deterministic reporting.
    pub fn pairs(&self, kind: SurrogateKind) -> Vec<(TypeId, TypeId)> {
        let mut v: Vec<(TypeId, TypeId)> = self
            .map
            .iter()
            .filter(|(_, &(_, k))| k == kind)
            .map(|(&s, &(t, _))| (s, t))
            .collect();
        v.sort();
        v
    }

    /// All `(source, surrogate)` pairs from both passes, sorted.
    pub fn all_pairs(&self) -> Vec<(TypeId, TypeId)> {
        let mut v: Vec<(TypeId, TypeId)> = self.map.iter().map(|(&s, &(t, _))| (s, t)).collect();
        v.sort();
        v
    }

    /// Number of surrogates registered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no surrogate has been registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Picks `^base`, falling back to `^base#2`, `^base#3`, … when a previous
/// derivation already claimed the plain name.
fn unique_surrogate_name(schema: &Schema, base: &str) -> String {
    let plain = format!("^{base}");
    if schema.type_id(&plain).is_err() {
        return plain;
    }
    for i in 2.. {
        let candidate = format!("^{base}#{i}");
        if schema.type_id(&candidate).is_err() {
            return candidate;
        }
    }
    unreachable!("counter exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_is_idempotent() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let mut reg = SurrogateRegistry::new();
        let (hat, created) = reg.get_or_create(&mut s, a, SurrogateKind::Factor).unwrap();
        assert!(created);
        let (hat2, created2) = reg
            .get_or_create(&mut s, a, SurrogateKind::Augment)
            .unwrap();
        assert!(!created2);
        assert_eq!(hat, hat2);
        assert_eq!(s.type_name(hat), "^A");
        assert_eq!(reg.surrogate(a), Some(hat));
        // The kind recorded is the first creator's.
        assert_eq!(reg.factor_surrogate(a), Some(hat));
    }

    #[test]
    fn names_disambiguate_across_derivations() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let mut reg1 = SurrogateRegistry::new();
        let (h1, _) = reg1
            .get_or_create(&mut s, a, SurrogateKind::Factor)
            .unwrap();
        let mut reg2 = SurrogateRegistry::new();
        let (h2, _) = reg2
            .get_or_create(&mut s, a, SurrogateKind::Factor)
            .unwrap();
        assert_ne!(h1, h2);
        assert_eq!(s.type_name(h2), "^A#2");
    }

    #[test]
    fn pairs_filter_by_kind() {
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[]).unwrap();
        let mut reg = SurrogateRegistry::new();
        let (ha, _) = reg.get_or_create(&mut s, a, SurrogateKind::Factor).unwrap();
        let (hb, _) = reg
            .get_or_create(&mut s, b, SurrogateKind::Augment)
            .unwrap();
        assert_eq!(reg.pairs(SurrogateKind::Factor), vec![(a, ha)]);
        assert_eq!(reg.pairs(SurrogateKind::Augment), vec![(b, hb)]);
        assert_eq!(reg.all_pairs().len(), 2);
        assert_eq!(reg.factor_surrogate(b), None);
        assert_eq!(reg.surrogate(b), Some(hb));
    }
}
