//! `FactorState` — refactoring the hierarchy to host a derived type (§5).
//!
//! Creating `T̂ = Π_A(T)` splits every type `Q` through which `T̂` inherits
//! projected attributes into a surrogate `Q̂` (receiving the projected
//! attributes local to `Q`) plus the residual `Q`. `Q` becomes a direct
//! subtype of `Q̂` at **highest precedence**, so the combined `Q̂ + Q` pair
//! is observationally identical to the original `Q`. The surrogates are
//! wired to each other mirroring the original precedence annotations, and
//! the derived type is simply `T̂`, the surrogate of the source itself.
//!
//! This is a faithful transcription of the paper's §5.1 pseudocode; the
//! §5.2 worked example (Figure 4) is a golden test in `td-workload`.

use std::collections::BTreeSet;
use td_model::{AttrId, Schema, SuperLink, TypeId};

use crate::error::Result;
use crate::surrogates::{SurrogateKind, SurrogateRegistry};

/// What `FactorState` did: every attribute move, in execution order.
#[derive(Debug, Clone, Default)]
pub struct FactorStateOutcome {
    /// `(attribute, from, to)` — attributes moved from a source type to
    /// its surrogate.
    pub moved_attrs: Vec<(AttrId, TypeId, TypeId)>,
}

/// Runs `FactorState(projection, source, NULL, 0)`, creating the derived
/// type and the surrogate chain above it. Returns the derived type (the
/// surrogate of `source`).
pub fn factor_state(
    schema: &mut Schema,
    registry: &mut SurrogateRegistry,
    projection: &BTreeSet<AttrId>,
    source: TypeId,
    outcome: &mut FactorStateOutcome,
) -> Result<TypeId> {
    let list: Vec<AttrId> = projection.iter().copied().collect();
    factor_rec(schema, registry, &list, source, None, 0, outcome)
}

/// The recursive body of §5.1:
/// `FactorState(A: attributeList, T: type, ĥ: type, P: precedence)`.
fn factor_rec(
    schema: &mut Schema,
    registry: &mut SurrogateRegistry,
    attrs: &[AttrId],
    t: TypeId,
    h_hat: Option<TypeId>,
    p: i32,
    outcome: &mut FactorStateOutcome,
) -> Result<TypeId> {
    // "if the surrogate type T̂ for T and A does not already exist then
    //  create a new type T̂; make T̂ a supertype of T such that T̂ has
    //  highest precedence among the supertypes of T"
    let (t_hat, created) = registry.get_or_create(schema, t, SurrogateKind::Factor)?;
    if created {
        schema.add_super_highest(t, t_hat)?;
    }

    // "if ĥ ≠ NULL then make ĥ a subtype of T̂ with precedence P"
    if let Some(h) = h_hat {
        if !schema.type_(h).super_ids().any(|s| s == t_hat) {
            schema.add_super_with_prec(h, t_hat, p)?;
        }
    }

    // "if type T̂ was created in this call then …"
    if created {
        // "∀ a ∈ A such that a is a local attribute of T do move a to T̂"
        let locals: Vec<AttrId> = schema
            .type_(t)
            .local_attrs
            .iter()
            .copied()
            .filter(|a| attrs.contains(a))
            .collect();
        for a in locals {
            schema.move_attr(a, t_hat)?;
            outcome.moved_attrs.push((a, t, t_hat));
        }

        // "let S be the list of the direct supertypes of T, excluding T̂;
        //  ∀ s ∈ S in order of inheritance precedence do …"
        let supers: Vec<SuperLink> = schema
            .type_(t)
            .supers()
            .iter()
            .copied()
            .filter(|l| l.target != t_hat)
            .collect();
        for link in supers {
            // "let L be the list of attributes in A that are available at s"
            let l: Vec<AttrId> = attrs
                .iter()
                .copied()
                .filter(|&a| schema.attr_available_at(a, link.target))
                .collect();
            if !l.is_empty() {
                // "call FactorState(L, s, T̂, p)" with p the precedence of
                // s among the supertypes of T.
                factor_rec(
                    schema,
                    registry,
                    &l,
                    link.target,
                    Some(t_hat),
                    link.prec,
                    outcome,
                )?;
            }
        }
    }
    Ok(t_hat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_model::ValueType;

    /// The paper's Figure 1 schema: Employee <= Person with
    /// Person{SSN, name, date_of_birth}, Employee{pay_rate, hrs_worked}.
    fn fig1() -> (Schema, TypeId, TypeId) {
        let mut s = Schema::new();
        let person = s.add_type("Person", &[]).unwrap();
        let employee = s.add_type("Employee", &[person]).unwrap();
        for (n, t, owner) in [
            ("SSN", ValueType::INT, person),
            ("name", ValueType::STR, person),
            ("date_of_birth", ValueType::INT, person),
            ("pay_rate", ValueType::FLOAT, employee),
            ("hrs_worked", ValueType::FLOAT, employee),
        ] {
            let a = s.add_attr(n, t, owner).unwrap();
            s.add_accessors(a).unwrap();
        }
        (s, person, employee)
    }

    #[test]
    fn fig2_state_factorization() {
        // Π_{SSN, date_of_birth, pay_rate}(Employee)  — the §3.1 example.
        let (mut s, person, employee) = fig1();
        let proj: BTreeSet<AttrId> = ["SSN", "date_of_birth", "pay_rate"]
            .iter()
            .map(|n| s.attr_id(n).unwrap())
            .collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        let derived = factor_state(&mut s, &mut reg, &proj, employee, &mut out).unwrap();

        let e_hat = s.type_id("^Employee").unwrap();
        let p_hat = s.type_id("^Person").unwrap();
        assert_eq!(derived, e_hat);

        // ^Employee carries pay_rate; ^Person carries SSN + date_of_birth.
        let names = |t: TypeId| -> Vec<&str> {
            s.type_(t)
                .local_attrs
                .iter()
                .map(|&a| s.attr_name(a))
                .collect()
        };
        assert_eq!(names(e_hat), vec!["pay_rate"]);
        assert_eq!(names(p_hat), vec!["SSN", "date_of_birth"]);
        assert_eq!(names(person), vec!["name"]);
        assert_eq!(names(employee), vec!["hrs_worked"]);

        // Wiring: Employee <=(0) ^Employee; Person <=(0) ^Person;
        // ^Employee <=(1) ^Person. Person is NOT a supertype of ^Employee.
        assert_eq!(s.type_(employee).super_ids().next(), Some(e_hat));
        assert_eq!(s.type_(person).super_ids().next(), Some(p_hat));
        let e_hat_supers: Vec<(TypeId, i32)> = s
            .type_(e_hat)
            .supers()
            .iter()
            .map(|l| (l.target, l.prec))
            .collect();
        assert_eq!(e_hat_supers, vec![(p_hat, 1)]);
        assert!(!s.is_subtype(e_hat, person));

        // Cumulative state of the derived type is exactly the projection.
        assert_eq!(s.cumulative_attrs(e_hat), proj);
        // Original types keep their cumulative state.
        assert_eq!(s.cumulative_attrs(employee).len(), 5);
        assert_eq!(s.cumulative_attrs(person).len(), 3);
        s.validate().unwrap();

        // Attribute moves recorded in execution order.
        assert_eq!(out.moved_attrs.len(), 3);
        assert_eq!(out.moved_attrs[0].1, employee);
    }

    #[test]
    fn projection_of_only_local_attrs_touches_no_ancestor() {
        let (mut s, person, employee) = fig1();
        let proj: BTreeSet<AttrId> = [s.attr_id("pay_rate").unwrap()].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        factor_state(&mut s, &mut reg, &proj, employee, &mut out).unwrap();
        // Only ^Employee exists; Person untouched.
        assert!(s.type_id("^Employee").is_ok());
        assert!(s.type_id("^Person").is_err());
        assert_eq!(reg.len(), 1);
        assert_eq!(s.type_(person).super_ids().count(), 0);
        s.validate().unwrap();
    }

    #[test]
    fn projection_of_only_inherited_attrs_leaves_source_surrogate_empty() {
        let (mut s, _person, employee) = fig1();
        let proj: BTreeSet<AttrId> = [s.attr_id("SSN").unwrap()].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        let derived = factor_state(&mut s, &mut reg, &proj, employee, &mut out).unwrap();
        assert!(s.type_(derived).local_attrs.is_empty());
        let p_hat = s.type_id("^Person").unwrap();
        assert_eq!(s.cumulative_attrs(derived), proj);
        assert_eq!(s.type_(p_hat).local_attrs.len(), 1);
        s.validate().unwrap();
    }

    #[test]
    fn diamond_shares_one_surrogate() {
        // D <= B,C <= A with the projected attribute at A: both recursion
        // paths reach A, but only one ^A may exist.
        let mut s = Schema::new();
        let a = s.add_type("A", &[]).unwrap();
        let b = s.add_type("B", &[a]).unwrap();
        let c = s.add_type("C", &[a]).unwrap();
        let d = s.add_type("D", &[b, c]).unwrap();
        let x = s.add_attr("x", ValueType::INT, a).unwrap();
        let bx = s.add_attr("bx", ValueType::INT, b).unwrap();
        let cx = s.add_attr("cx", ValueType::INT, c).unwrap();
        let proj: BTreeSet<AttrId> = [x, bx, cx].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        let derived = factor_state(&mut s, &mut reg, &proj, d, &mut out).unwrap();
        assert_eq!(reg.len(), 4); // ^D ^B ^C ^A
        let a_hat = s.type_id("^A").unwrap();
        let b_hat = s.type_id("^B").unwrap();
        let c_hat = s.type_id("^C").unwrap();
        // Both ^B and ^C inherit from the single ^A.
        assert!(s.is_subtype(b_hat, a_hat));
        assert!(s.is_subtype(c_hat, a_hat));
        assert_eq!(s.cumulative_attrs(derived), proj);
        // x is inherited once by ^D despite the diamond.
        s.validate().unwrap();
    }

    #[test]
    fn second_projection_reuses_nothing_from_first() {
        let (mut s, _person, employee) = fig1();
        let proj: BTreeSet<AttrId> = [s.attr_id("SSN").unwrap()].into_iter().collect();
        let mut reg1 = SurrogateRegistry::new();
        let mut out = FactorStateOutcome::default();
        let d1 = factor_state(&mut s, &mut reg1, &proj, employee, &mut out).unwrap();
        let mut reg2 = SurrogateRegistry::new();
        let d2 = factor_state(&mut s, &mut reg2, &proj, employee, &mut out).unwrap();
        assert_ne!(d1, d2);
        assert_eq!(s.cumulative_attrs(d1), proj);
        assert_eq!(s.cumulative_attrs(d2), proj);
        s.validate().unwrap();
    }
}
