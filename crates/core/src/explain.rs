//! Explanations: *why* a method did or did not survive a projection.
//!
//! The paper argues that leaving method selection to the type definer is
//! error-prone (§1.1). The flip side is that an automatic inference must
//! be able to justify itself, or schema designers will not trust it. An
//! [`Explanation`] is a finite proof tree grounded in the fixpoint
//! semantics: a method fails either because it is an accessor for an
//! unprojected attribute, or because some relevant call has no surviving
//! candidate — and each candidate's failure is explained recursively.

use std::collections::{BTreeSet, HashSet};
use td_model::{AttrId, GfId, MethodId, Schema, TypeId};

use crate::applicability::call_candidates;
use crate::error::Result;
use crate::oracle::applicability_fixpoint;

/// A proof tree for one method's applicability verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Explanation {
    /// The method survives the projection.
    Applicable {
        /// The method.
        method: MethodId,
    },
    /// The method is not applicable to the source type at all, so the
    /// question does not arise.
    NotInUniverse {
        /// The method.
        method: MethodId,
        /// The projection source.
        source: TypeId,
    },
    /// An accessor whose attribute is outside the projection list.
    AccessorOutsideProjection {
        /// The accessor method.
        method: MethodId,
        /// The attribute it reads or writes.
        attr: AttrId,
    },
    /// A general method with a relevant call none of whose candidates
    /// survives; each candidate failure is explained.
    CallUnsatisfied {
        /// The failing method.
        method: MethodId,
        /// The called generic function.
        gf: GfId,
        /// Why each candidate fails (empty = the call has no candidate
        /// methods at all).
        candidates: Vec<Explanation>,
    },
    /// The method was already explained higher up this proof tree
    /// (cycles are cut here).
    ExplainedAbove {
        /// The method.
        method: MethodId,
    },
}

impl Explanation {
    /// The method this node explains.
    pub fn method(&self) -> MethodId {
        match self {
            Explanation::Applicable { method }
            | Explanation::NotInUniverse { method, .. }
            | Explanation::AccessorOutsideProjection { method, .. }
            | Explanation::CallUnsatisfied { method, .. }
            | Explanation::ExplainedAbove { method } => *method,
        }
    }

    /// True when the verdict is "applicable".
    pub fn is_applicable(&self) -> bool {
        matches!(self, Explanation::Applicable { .. })
    }

    /// Renders the proof tree as indented text.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        self.render_into(schema, 0, &mut out);
        out
    }

    fn render_into(&self, schema: &Schema, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        match self {
            Explanation::Applicable { method } => {
                let _ = writeln!(
                    out,
                    "{pad}{} is applicable",
                    schema.render_signature(*method)
                );
            }
            Explanation::NotInUniverse { method, source } => {
                let _ = writeln!(
                    out,
                    "{pad}{} is not applicable to the source type {} in the first place",
                    schema.render_signature(*method),
                    schema.type_name(*source)
                );
            }
            Explanation::AccessorOutsideProjection { method, attr } => {
                let _ = writeln!(
                    out,
                    "{pad}{} accesses attribute `{}`, which is not in the projection list",
                    schema.render_signature(*method),
                    schema.attr_name(*attr)
                );
            }
            Explanation::CallUnsatisfied {
                method,
                gf,
                candidates,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}{} calls `{}`, and no candidate method survives:",
                    schema.render_signature(*method),
                    schema.gf_name(*gf)
                );
                if candidates.is_empty() {
                    let _ = writeln!(out, "{pad}  (the call has no candidate methods at all)");
                }
                for c in candidates {
                    c.render_into(schema, depth + 1, out);
                }
            }
            Explanation::ExplainedAbove { method } => {
                let _ = writeln!(
                    out,
                    "{pad}{} — see above (recursive)",
                    schema.render_signature(*method)
                );
            }
        }
    }
}

/// Explains the applicability verdict of `method` for
/// `Π_projection(source)`. Runs the fixpoint oracle internally, so the
/// verdict agrees with [`crate::compute_applicability`].
pub fn explain(
    schema: &Schema,
    source: TypeId,
    projection: &BTreeSet<AttrId>,
    method: MethodId,
) -> Result<Explanation> {
    let alive = applicability_fixpoint(schema, source, projection)?;
    let mut visiting = HashSet::new();
    explain_rec(schema, source, method, &alive, &mut visiting)
}

fn explain_rec(
    schema: &Schema,
    source: TypeId,
    method: MethodId,
    alive: &BTreeSet<MethodId>,
    visiting: &mut HashSet<MethodId>,
) -> Result<Explanation> {
    if alive.contains(&method) {
        return Ok(Explanation::Applicable { method });
    }
    if !schema.method_applicable_to_type(method, source) {
        return Ok(Explanation::NotInUniverse { method, source });
    }
    if let Some(attr) = schema.method(method).kind.accessed_attr() {
        return Ok(Explanation::AccessorOutsideProjection { method, attr });
    }
    if !visiting.insert(method) {
        return Ok(Explanation::ExplainedAbove { method });
    }

    // Collect the relevant calls with no surviving candidate. Prefer one
    // with a candidate outside the current proof path: an explanation that
    // immediately re-enters the cycle ("y1 fails because x1 fails because
    // y1…") is true but vacuous, while a productive branch bottoms out in
    // concrete evidence (an unprojected attribute).
    let mut failing: Vec<(GfId, Vec<MethodId>)> = Vec::new();
    let mut scratch = Vec::new();
    for site in schema.call_sites(method, source)? {
        if site.source_positions.is_empty() {
            continue;
        }
        let (candidates, _) = call_candidates(schema, source, &site, &mut scratch);
        if !candidates.iter().any(|c| alive.contains(c)) {
            failing.push((site.gf, candidates));
        }
    }
    let chosen = failing
        .iter()
        .position(|(_, cands)| cands.iter().any(|c| !visiting.contains(c)))
        .unwrap_or(0);
    let (gf, candidates) = failing
        .into_iter()
        .nth(chosen)
        .unwrap_or_else(|| unreachable!("a dead non-accessor method must have a failing call"));
    let mut children = Vec::with_capacity(candidates.len());
    for c in candidates {
        children.push(explain_rec(schema, source, c, alive, visiting)?);
    }
    visiting.remove(&method);
    Ok(Explanation::CallUnsatisfied {
        method,
        gf,
        candidates: children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_workload::figures;

    fn fig3_setup() -> (Schema, TypeId, BTreeSet<AttrId>) {
        let s = figures::fig3();
        let a = s.type_id("A").unwrap();
        let proj = figures::FIG4_PROJECTION
            .iter()
            .map(|n| s.attr_id(n).unwrap())
            .collect();
        (s, a, proj)
    }

    #[test]
    fn applicable_methods_explain_trivially() {
        let (s, a, proj) = fig3_setup();
        let v1 = s.method_by_label("v1").unwrap();
        let e = explain(&s, a, &proj, v1).unwrap();
        assert!(e.is_applicable());
        assert!(e.render(&s).contains("v1(A, C) is applicable"));
    }

    #[test]
    fn accessor_failure_names_the_attribute() {
        let (s, a, proj) = fig3_setup();
        let get_a1 = s.method_by_label("get_a1").unwrap();
        let e = explain(&s, a, &proj, get_a1).unwrap();
        assert_eq!(
            e,
            Explanation::AccessorOutsideProjection {
                method: get_a1,
                attr: s.attr_id("a1").unwrap()
            }
        );
        assert!(e.render(&s).contains("`a1`"));
    }

    #[test]
    fn call_failure_explains_each_candidate() {
        let (s, a, proj) = fig3_setup();
        // v2(B,C) = {get_b1(B); u(C)} fails because get_b1's attribute is
        // not projected.
        let v2 = s.method_by_label("v2").unwrap();
        let e = explain(&s, a, &proj, v2).unwrap();
        let Explanation::CallUnsatisfied { gf, candidates, .. } = &e else {
            panic!("expected CallUnsatisfied, got {e:?}");
        };
        assert_eq!(s.gf_name(*gf), "get_b1");
        assert_eq!(candidates.len(), 1);
        assert!(matches!(
            candidates[0],
            Explanation::AccessorOutsideProjection { .. }
        ));
        let text = e.render(&s);
        assert!(text.contains("v2(B, C) calls `get_b1`"));
        assert!(text.contains("`b1`"));
    }

    #[test]
    fn recursive_failure_is_cut() {
        let (s, a, proj) = fig3_setup();
        // y1 fails because x1 fails because v(B,A) fails because v2 fails
        // on get_b1; x(A,B) inside y1 leads back to x1.
        let y1 = s.method_by_label("y1").unwrap();
        let e = explain(&s, a, &proj, y1).unwrap();
        let text = e.render(&s);
        assert!(text.contains("y1(A, B) calls `x`"));
        assert!(text.contains("x1(A, B) calls `v`"));
        assert!(text.contains("`b1`"), "chain bottoms out at b1:\n{text}");
    }

    #[test]
    fn unrelated_method_not_in_universe() {
        let (mut s, a, proj) = fig3_setup();
        let u = s.add_type("Unrelated", &[]).unwrap();
        let f = s.add_gf("f_unrelated", 1, None).unwrap();
        let m = s
            .add_method(
                f,
                "f_u",
                vec![td_model::Specializer::Type(u)],
                td_model::MethodKind::General(Default::default()),
                None,
            )
            .unwrap();
        let e = explain(&s, a, &proj, m).unwrap();
        assert!(matches!(e, Explanation::NotInUniverse { .. }));
    }

    #[test]
    fn verdicts_agree_with_compute_applicability() {
        let (s, a, proj) = fig3_setup();
        let r = crate::compute_applicability(&s, a, &proj, false).unwrap();
        for &m in &r.universe {
            let e = explain(&s, a, &proj, m).unwrap();
            assert_eq!(
                e.is_applicable(),
                r.is_applicable(m),
                "{}",
                s.method_label(m)
            );
        }
    }
}
