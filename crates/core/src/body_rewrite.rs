//! Method-body processing (§6.3, §6.4): computing `Y`/`Z` and re-typing
//! variables and result types.
//!
//! After `FactorMethods` converts signatures to surrogates, declarations
//! inside applicable method bodies may become inconsistent ("if we change
//! the signature of `z1` to `z1(Ĉ)`, we introduce a type error in `g ← c`
//! if `Ĉ` is not a subtype of `Ĝ`"). The fix (paper §6.3–6.4):
//!
//! 1. let `X` = types with a `FactorState` surrogate, `F` = applicable
//!    methods;
//! 2. compute `Y` = types transitively assigned a value of an `X` type by
//!    a method in `F` (definition-use flow analysis) and `Z = Y − X`;
//! 3. run [`crate::augment::augment`] so every `Z` type gets a surrogate
//!    wired consistently into the lattice;
//! 4. re-type, in each applicable method, the local variables in the
//!    reachability set of the converted parameters — and the method's
//!    result type when a returned value flows from a converted parameter.

use std::collections::{BTreeSet, HashMap};
use td_model::{MethodId, Schema, TypeId, ValueType, VarId};

use crate::error::{CoreError, Result};
use crate::surrogates::SurrogateRegistry;

/// The flow analysis of §6.4: given the applicable methods `F` (with their
/// *pre-factorization* assignment edges — collect these before rewriting
/// signatures) and `X`, computes `(Y, Z)`.
pub fn compute_y_and_z(
    edges: &[(TypeId, TypeId)],
    x: &BTreeSet<TypeId>,
) -> (BTreeSet<TypeId>, BTreeSet<TypeId>) {
    // U ∈ Y when some edge (U, V) has V ∈ X ∪ Y — iterate to fixpoint.
    let mut y: BTreeSet<TypeId> = BTreeSet::new();
    loop {
        let mut changed = false;
        for &(target, value) in edges {
            if !y.contains(&target) && (x.contains(&value) || y.contains(&value)) {
                y.insert(target);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let z: BTreeSet<TypeId> = y.difference(x).copied().collect();
    (y, z)
}

/// Collects the §6.4 definition-use edges over the applicable methods.
/// Must run *before* `factor_methods` so the static types are the
/// original ones.
pub fn collect_flow_edges(schema: &Schema, applicable: &[MethodId]) -> Vec<(TypeId, TypeId)> {
    let mut edges = Vec::new();
    for &m in applicable {
        edges.extend(schema.assignment_edges(m));
    }
    edges
}

/// One re-typed local: `(method, var, old type, new type)`.
pub type LocalRetype = (MethodId, VarId, TypeId, TypeId);
/// One re-typed method result: `(method, old type, new type)`.
pub type ResultRetype = (MethodId, TypeId, TypeId);

/// What the §6.3 pass changed.
#[derive(Debug, Clone, Default)]
pub struct RetypeOutcome {
    /// Local-variable declaration changes.
    pub locals: Vec<LocalRetype>,
    /// Method result-type changes.
    pub results: Vec<ResultRetype>,
}

/// Re-types local variables (and result types) of the applicable methods.
/// `converted` maps each rewritten method to the argument positions whose
/// specializers were converted to surrogates.
///
/// Requires `augment` to have run: every object-typed local in a converted
/// parameter's reachability set must already have a surrogate, otherwise
/// [`CoreError::MissingSurrogate`] is returned.
pub fn retype_bodies(
    schema: &mut Schema,
    registry: &SurrogateRegistry,
    converted: &HashMap<MethodId, Vec<usize>>,
) -> Result<RetypeOutcome> {
    let mut outcome = RetypeOutcome::default();
    let mut methods: Vec<&MethodId> = converted.keys().collect();
    methods.sort();
    for &m in methods {
        let positions = &converted[&m];
        if positions.is_empty() {
            continue;
        }
        // Locals in the reachability set of the converted parameters.
        for v in schema.locals_reached_by_params(m, positions) {
            let old_ty = schema
                .method(m)
                .body()
                .and_then(|b| b.locals.get(v.index()))
                .map(|l| l.ty);
            let Some(ValueType::Object(u)) = old_ty else {
                continue; // primitive locals need no re-typing
            };
            let Some(hat) = registry.surrogate(u) else {
                return Err(CoreError::MissingSurrogate(u));
            };
            if hat == u {
                continue;
            }
            if let Some(body) = schema.method_mut(m).body_mut() {
                body.locals[v.index()].ty = ValueType::Object(hat);
            }
            outcome.locals.push((m, v, u, hat));
        }
        // "The result type of the method is processed in the same way."
        if schema.returns_tainted(m, positions) {
            if let Some(ValueType::Object(u)) = schema.method(m).result {
                let Some(hat) = registry.surrogate(u) else {
                    return Err(CoreError::MissingSurrogate(u));
                };
                if hat != u {
                    schema.method_mut(m).result = Some(ValueType::Object(hat));
                    outcome.results.push((m, u, hat));
                }
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::augment;
    use crate::factor_methods::{converted_positions, factor_methods};
    use crate::factor_state::{factor_state, FactorStateOutcome};
    use td_model::{AttrId, BodyBuilder, Expr, MethodKind, Specializer};

    #[test]
    fn y_and_z_fixpoint_is_transitive() {
        let t = |i| TypeId(i);
        // Edges: Y1 <- X0; Y2 <- Y1; unrelated 9 <- 8.
        let edges = vec![(t(1), t(0)), (t(2), t(1)), (t(9), t(8))];
        let x: BTreeSet<TypeId> = [t(0)].into_iter().collect();
        let (y, z) = compute_y_and_z(&edges, &x);
        assert_eq!(y, [t(1), t(2)].into_iter().collect());
        assert_eq!(z, [t(1), t(2)].into_iter().collect());
        // A target already in X never lands in Z.
        let edges = vec![(t(0), t(0))];
        let (_, z) = compute_y_and_z(&edges, &x);
        assert!(z.is_empty());
    }

    /// The paper's §6.3 scenario in miniature:
    ///   G <- C <- B (chain), attribute x at C;
    ///   z1(c: C) = { g: G; g <- c; return g }  with result type G.
    /// Projection over B of {x}: FactorState creates ^B and ^C; the body
    /// of z1 forces Z = {G}, Augment creates ^G, and re-typing turns the
    /// local g and the result into ^G.
    #[test]
    fn end_to_end_body_rewrite() {
        let mut s = Schema::new();
        let g_ty = s.add_type("G", &[]).unwrap();
        let c_ty = s.add_type("C", &[g_ty]).unwrap();
        let b_ty = s.add_type("B", &[c_ty]).unwrap();
        let x = s.add_attr("x", ValueType::INT, c_ty).unwrap();
        let z_gf = s.add_gf("z", 1, Some(ValueType::Object(g_ty))).unwrap();
        let mut bb = BodyBuilder::new();
        let g_var = bb.local("g", ValueType::Object(g_ty));
        bb.assign(g_var, Expr::Param(0));
        bb.ret(Expr::Var(g_var));
        let z1 = s
            .add_method(
                z_gf,
                "z1",
                vec![Specializer::Type(c_ty)],
                MethodKind::General(bb.finish()),
                Some(ValueType::Object(g_ty)),
            )
            .unwrap();
        s.validate().unwrap();

        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut fs_out = FactorStateOutcome::default();
        factor_state(&mut s, &mut reg, &proj, b_ty, &mut fs_out).unwrap();
        assert!(reg.surrogate(g_ty).is_none());

        // Flow edges collected before factoring signatures.
        let edges = collect_flow_edges(&s, &[z1]);
        let x_set: BTreeSet<TypeId> = reg
            .pairs(crate::surrogates::SurrogateKind::Factor)
            .into_iter()
            .map(|(src, _)| src)
            .collect();
        let (_, z_set) = compute_y_and_z(&edges, &x_set);
        assert_eq!(z_set, [g_ty].into_iter().collect());

        augment(&mut s, &mut reg, b_ty, &z_set).unwrap();
        let changes = factor_methods(&mut s, &reg, b_ty, &[z1]);
        let mut converted = HashMap::new();
        for (m, old, _) in &changes {
            converted.insert(*m, converted_positions(&s, &reg, b_ty, old));
        }
        let out = retype_bodies(&mut s, &reg, &converted).unwrap();

        let g_hat = reg.surrogate(g_ty).unwrap();
        assert_eq!(out.locals.len(), 1);
        assert_eq!(out.locals[0], (z1, VarId(0), g_ty, g_hat));
        assert_eq!(out.results, vec![(z1, g_ty, g_hat)]);
        // The rewritten schema typechecks: ^C <= ^G makes `g <- c` legal.
        s.validate().unwrap();
        let c_hat = reg.surrogate(c_ty).unwrap();
        assert!(s.is_subtype(c_hat, g_hat));
    }

    #[test]
    fn missing_surrogate_is_reported() {
        // Same scenario but skip augment: re-typing must fail loudly.
        let mut s = Schema::new();
        let g_ty = s.add_type("G", &[]).unwrap();
        let c_ty = s.add_type("C", &[g_ty]).unwrap();
        let x = s.add_attr("x", ValueType::INT, c_ty).unwrap();
        let z_gf = s.add_gf("z", 1, None).unwrap();
        let mut bb = BodyBuilder::new();
        let g_var = bb.local("g", ValueType::Object(g_ty));
        bb.assign(g_var, Expr::Param(0));
        let z1 = s
            .add_method(
                z_gf,
                "z1",
                vec![Specializer::Type(c_ty)],
                MethodKind::General(bb.finish()),
                None,
            )
            .unwrap();
        let proj: BTreeSet<AttrId> = [x].into_iter().collect();
        let mut reg = SurrogateRegistry::new();
        let mut fs_out = FactorStateOutcome::default();
        factor_state(&mut s, &mut reg, &proj, c_ty, &mut fs_out).unwrap();
        let changes = factor_methods(&mut s, &reg, c_ty, &[z1]);
        let mut converted = HashMap::new();
        for (m, old, _) in &changes {
            converted.insert(*m, converted_positions(&s, &reg, c_ty, old));
        }
        let err = retype_bodies(&mut s, &reg, &converted).unwrap_err();
        assert_eq!(err, CoreError::MissingSurrogate(g_ty));
    }
}
